//! Property tests for the dataflow lattices and the workspace fixpoint.
//!
//! The taint engine's soundness rests on two algebraic facts: the
//! `Bound`/`Taint` join is a real lattice join (monotone, idempotent,
//! commutative, associative), and the argument-taint fixpoint terminates
//! within its iteration budget on any call graph — including cyclic ones —
//! because every sweep only moves values up a finite-height lattice.

use distrust_lint::dataflow::{Bound, Dataflow, Taint};
use distrust_lint::scan::SourceFile;
use proptest::prelude::*;

/// Phase 1 and phase 2 each sweep at most `MAX_ITERS = 12` times.
const MAX_TOTAL_SWEEPS: usize = 24;

fn bound(tag: u8, cap: u64) -> Bound {
    match tag % 4 {
        0 => Bound::Const(cap as u128),
        1 => Bound::Mem,
        2 => Bound::Input,
        _ => Bound::Top,
    }
}

fn taint(params: u64, tag: u8, cap: u64, hop: u64) -> Taint {
    Taint {
        params,
        chain: (!hop.is_multiple_of(3)).then(|| vec![format!("hop-{}", hop % 7)]),
        bound: bound(tag, cap),
    }
}

/// A synthetic workspace of `n` functions spread over two crates, with a
/// seed-derived (often cyclic) call graph, every function threading its
/// parameter into its callees and one allocation sink.
fn synthetic_workspace(n: usize, seed: u64) -> Vec<SourceFile> {
    let mut crates: Vec<String> = vec![String::new(), String::new()];
    for i in 0..n {
        let krate = i % 2;
        let mut calls = String::new();
        for k in 0..(seed as usize % 3) + 1 {
            let j = (i
                .wrapping_mul(7)
                .wrapping_add(seed as usize)
                .wrapping_add(k * 11))
                % n;
            let path = if j % 2 == krate {
                format!("f{j}")
            } else if j.is_multiple_of(2) {
                format!("distrust_alpha::graph::f{j}")
            } else {
                format!("distrust_beta::graph::f{j}")
            };
            calls.push_str(&format!("{path}(x); "));
        }
        crates[krate].push_str(&format!(
            "pub fn f{i}(x: usize) {{ {calls}let v: Vec<u64> = Vec::with_capacity(x); keep(v); }}\n"
        ));
    }
    // One root feeds a wire-announced length into the graph.
    crates[0].push_str(
        "pub fn decode_root(input: &mut &[u8]) { let n = decode_len(input).unwrap_or(0); f0(n); }\n",
    );
    vec![
        SourceFile::parse("crates/alpha/src/graph.rs".into(), &crates[0]),
        SourceFile::parse("crates/beta/src/graph.rs".into(), &crates[1]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bound_join_is_a_lattice_join(
        a_tag in 0u8..4, a_cap in any::<u64>(),
        b_tag in 0u8..4, b_cap in any::<u64>(),
        c_tag in 0u8..4, c_cap in any::<u64>(),
    ) {
        let (a, b, c) = (bound(a_tag, a_cap), bound(b_tag, b_cap), bound(c_tag, c_cap));
        // Upper bound and monotone: the join never loses either side.
        prop_assert!(a.join(b) >= a && a.join(b) >= b);
        // Idempotent, commutative, associative.
        prop_assert_eq!(a.join(a), a);
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        // Least upper bound: no element strictly between the larger input
        // and the join (the lattice is a chain, so join is max).
        prop_assert_eq!(a.join(b), a.max(b));
    }

    #[test]
    fn taint_merge_is_monotone_and_idempotent(
        a_params in any::<u64>(), a_tag in 0u8..4, a_cap in any::<u64>(), a_hop in any::<u64>(),
        b_params in any::<u64>(), b_tag in 0u8..4, b_cap in any::<u64>(), b_hop in any::<u64>(),
    ) {
        let a = taint(a_params, a_tag, a_cap, a_hop);
        let b = taint(b_params, b_tag, b_cap, b_hop);
        let mut joined = a.clone();
        joined.merge(&b);
        // No information loss: both param sets survive, the bound only
        // goes up, and a chain survives whenever either side had one.
        prop_assert_eq!(joined.params & a.params, a.params);
        prop_assert_eq!(joined.params & b.params, b.params);
        prop_assert!(joined.bound >= a.bound && joined.bound >= b.bound);
        prop_assert_eq!(joined.chain.is_some(), a.chain.is_some() || b.chain.is_some());
        // Idempotent: merging the same value again changes nothing, which
        // is what lets the fixpoint detect convergence.
        let mut again = joined.clone();
        again.merge(&b);
        prop_assert_eq!(&again, &joined);
        again.merge(&a);
        prop_assert_eq!(&again, &joined);
        // Commutative: order of discovery cannot change the result.
        let mut flipped = b.clone();
        flipped.merge(&a);
        prop_assert_eq!(&flipped, &joined);
    }

    #[test]
    fn argument_taint_fixpoint_terminates_on_arbitrary_graphs(
        n in 1usize..=64, seed in any::<u64>(),
    ) {
        let files = synthetic_workspace(n, seed);
        let flow = Dataflow::build(&files);
        // Terminates inside the iteration budget even on cyclic graphs...
        prop_assert!(flow.fixpoint_iters <= MAX_TOTAL_SWEEPS, "{}", flow.fixpoint_iters);
        // ...and lands on a deterministic fixpoint: rebuilding from the
        // same sources reproduces every site and cap gap exactly.
        let again = Dataflow::build(&files);
        prop_assert_eq!(&again.sites, &flow.sites);
        prop_assert_eq!(&again.cap_gaps, &flow.cap_gaps);
        prop_assert_eq!(again.fixpoint_iters, flow.fixpoint_iters);
    }
}
