//! Direct (non-TEE) service hosting for trust domain 0.
//!
//! Figure 2: "Trust domain 0 is run by the application owner without any
//! secure hardware." It runs the same framework code, but clients reach it
//! over a single socket — no enclave proxy hop — and its attestation
//! response is [`crate::protocol::Response::Unattested`].

use distrust_tee::host::EnclaveService;
use distrust_wire::frame::{read_frame, write_frame};
use parking_lot::Mutex;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running single-socket service host.
pub struct DirectHost {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl DirectHost {
    /// Spawns the service on an ephemeral loopback port.
    pub fn spawn<S: EnclaveService>(service: S) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::new(Mutex::new(service));
        let stop_a = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("direct-host-{addr}"))
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_a.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut conn) = conn else { break };
                    let _ = conn.set_nodelay(true);
                    let service = Arc::clone(&service);
                    let stop_c = Arc::clone(&stop_a);
                    let _ = std::thread::Builder::new()
                        .name("direct-host-conn".to_string())
                        .spawn(move || loop {
                            if stop_c.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(request) = read_frame(&mut conn) else {
                                break;
                            };
                            let response = service.lock().handle(request);
                            if write_frame(&mut conn, &response).is_err() {
                                break;
                            }
                        });
                }
            })?;
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// Address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Ok(mut s) = TcpStream::connect(self.addr) {
            let _ = s.write_all(&[0]);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DirectHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrust_tee::host::EnclaveClient;

    #[test]
    fn single_socket_round_trip() {
        let mut host = DirectHost::spawn(|req: Vec<u8>| {
            let mut r = req;
            r.push(0xaa);
            r
        })
        .unwrap();
        let mut client = EnclaveClient::connect(host.addr()).unwrap();
        assert_eq!(client.exchange(b"hi").unwrap(), vec![b'h', b'i', 0xaa]);
        host.shutdown();
    }

    #[test]
    fn sequential_state() {
        let mut n = 0u8;
        let mut host = DirectHost::spawn(move |_req: Vec<u8>| {
            n = n.wrapping_add(1);
            vec![n]
        })
        .unwrap();
        let mut client = EnclaveClient::connect(host.addr()).unwrap();
        assert_eq!(client.exchange(b"").unwrap(), vec![1]);
        assert_eq!(client.exchange(b"").unwrap(), vec![2]);
        host.shutdown();
    }
}
