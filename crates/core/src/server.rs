//! Direct (non-TEE) service hosting for trust domain 0.
//!
//! Figure 2: "Trust domain 0 is run by the application owner without any
//! secure hardware." It runs the same framework code, but clients reach it
//! over a single socket — no enclave proxy hop — and its attestation
//! response is [`crate::protocol::Response::Unattested`].
//!
//! Since ISSUE 2 the host serves that socket through the wire crate's
//! readiness event loop ([`EventLoopRpcServer`] in raw-frame mode) instead
//! of spawning one blocking thread per connection: a fixed pool of reactor
//! threads multiplexes every client, so a domain can hold thousands of
//! concurrent connections open. The wire format is unchanged — plain
//! length-prefixed frames, errors encoded inside the service's own response
//! messages — so existing clients (e.g.
//! [`EnclaveClient`](distrust_tee::host::EnclaveClient)) work as before.

use distrust_tee::host::EnclaveService;
use distrust_wire::reactor::FrameService;
use distrust_wire::rpc::EventLoopRpcServer;
use distrust_wire::sync::HealthyMutex;
use std::net::SocketAddr;
use std::sync::Arc;

/// Reactor threads per direct host. A deployment runs one direct host next
/// to several enclave hosts on the same machine; two threads keep it
/// responsive without oversubscribing small boxes.
const REACTOR_THREADS: usize = 2;

/// A running single-socket service host.
pub struct DirectHost {
    inner: EventLoopRpcServer,
}

impl DirectHost {
    /// Spawns the service on an ephemeral loopback port. The service runs
    /// behind a mutex: one request at a time, in whatever order the
    /// reactor pool completes frames — the same serialization the old
    /// thread-per-connection host provided.
    pub fn spawn<S: EnclaveService>(service: S) -> std::io::Result<Self> {
        let service = HealthyMutex::new(service);
        let frames: FrameService =
            Arc::new(move |request: &[u8]| service.lock_healthy().handle(request.to_vec()));
        Ok(Self {
            inner: EventLoopRpcServer::spawn_frames(frames, REACTOR_THREADS)?,
        })
    }

    /// Address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Stops accepting, closes every connection, and joins all serving
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrust_tee::host::EnclaveClient;

    #[test]
    fn single_socket_round_trip() {
        let mut host = DirectHost::spawn(|req: Vec<u8>| {
            let mut r = req;
            r.push(0xaa);
            r
        })
        .unwrap();
        let mut client = EnclaveClient::connect(host.addr()).unwrap();
        assert_eq!(client.exchange(b"hi").unwrap(), vec![b'h', b'i', 0xaa]);
        host.shutdown();
    }

    #[test]
    fn sequential_state() {
        let mut n = 0u8;
        let mut host = DirectHost::spawn(move |_req: Vec<u8>| {
            n = n.wrapping_add(1);
            vec![n]
        })
        .unwrap();
        let mut client = EnclaveClient::connect(host.addr()).unwrap();
        assert_eq!(client.exchange(b"").unwrap(), vec![1]);
        assert_eq!(client.exchange(b"").unwrap(), vec![2]);
        host.shutdown();
    }

    #[test]
    fn many_clients_share_the_fixed_pool() {
        let mut host = DirectHost::spawn(|req: Vec<u8>| req).unwrap();
        let addr = host.addr();
        // Many more connections than reactor threads, alive concurrently.
        let mut clients: Vec<EnclaveClient> = (0..40)
            .map(|_| EnclaveClient::connect(addr).unwrap())
            .collect();
        for (i, c) in clients.iter_mut().enumerate() {
            let msg = vec![i as u8; 16];
            assert_eq!(c.exchange(&msg).unwrap(), msg);
        }
        host.shutdown();
    }

    #[test]
    fn shutdown_unblocks_idle_clients() {
        let mut host = DirectHost::spawn(|req: Vec<u8>| req).unwrap();
        let mut client = EnclaveClient::connect(host.addr()).unwrap();
        assert_eq!(client.exchange(b"x").unwrap(), b"x");
        host.shutdown();
        assert!(client.exchange(b"y").is_err());
    }
}
