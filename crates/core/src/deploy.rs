//! Deployment orchestration: "a developer can set up a distributed-trust
//! application without expensive, cross-organization coordination" (§2.1).
//!
//! [`Deployment::launch`] performs the paper's entire bootstrap in one
//! call: provision heterogeneous simulated TEEs (round-robin across the
//! three vendors, §3.2), seal the framework + developer key into each,
//! start trust domain 0 natively (no secure hardware, single socket) and
//! domains 1..n behind enclave proxies (two sockets), and install the
//! initial signed release through the same update path every later release
//! uses — so version 1 is in the append-only logs like any other version.

use crate::abi::AppHost;
use crate::client::{DeploymentClient, DeploymentDescriptor, DomainInfo};
use crate::framework::{
    framework_measurement, EnclaveFramework, FrameworkConfig, FrameworkService,
};
use crate::manifest::SignedRelease;
use crate::server::DirectHost;
use distrust_crypto::drbg::HmacDrbg;
use distrust_crypto::schnorr::SigningKey;
use distrust_log::checkpoint::log_id;
use distrust_log::store::{DurableOptions, StorageConfig, StoreError};
use distrust_sandbox::{Limits, Module};
use distrust_tee::host::EnclaveHost;
use distrust_tee::vendor::{Vendor, VendorKind, VendorRoots};
use std::path::Path;

/// The application a deployment runs: module, name, and one host-function
/// provider per trust domain (domain-specific state such as key shares
/// lives inside these).
pub struct AppSpec {
    /// Application name (pins the deployment).
    pub name: String,
    /// Version-1 module.
    pub module: Module,
    /// Release notes for version 1.
    pub notes: String,
    /// Per-domain host imports; `hosts.len()` defines `n`.
    pub hosts: Vec<Box<dyn AppHost>>,
    /// Sandbox limits applied to every instance.
    pub limits: Limits,
}

enum RunningHost {
    Direct(DirectHost),
    Tee(EnclaveHost),
}

impl RunningHost {
    fn shutdown(&mut self) {
        match self {
            RunningHost::Direct(h) => h.shutdown(),
            RunningHost::Tee(h) => h.shutdown(),
        }
    }
}

/// A live deployment: servers for all `n` trust domains plus everything a
/// client needs to reach them.
pub struct Deployment {
    /// Client-facing description of the deployment.
    pub descriptor: DeploymentDescriptor,
    /// The developer's release-signing key (held by "the developer"; tests
    /// use it to push updates, attackers in tests try to live without it).
    pub developer: SigningKey,
    /// The simulated vendors, exposed so security tests can inject
    /// vendor-level compromises.
    pub vendors: Vec<Vendor>,
    /// Digest of the version-1 module (what `audit` should agree on).
    pub initial_app_digest: [u8; 32],
    hosts: Vec<RunningHost>,
}

/// Errors during launch.
#[derive(Debug)]
pub enum DeployError {
    /// Fewer than one domain requested.
    NoDomains,
    /// Socket setup failed.
    Io(std::io::Error),
    /// The initial release was rejected by a framework (bug in the app
    /// module — surfaced immediately rather than at first client call).
    InitialRelease(String),
    /// A domain's durable log failed to open or recover — corrupt beyond
    /// repair, signed history outrunning the recovered log, or plain I/O.
    Storage(StoreError),
}

impl core::fmt::Display for DeployError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NoDomains => write!(f, "deployment needs at least one domain"),
            Self::Io(e) => write!(f, "i/o error during launch: {e}"),
            Self::InitialRelease(e) => write!(f, "initial release rejected: {e}"),
            Self::Storage(e) => write!(f, "domain log storage failed: {e}"),
        }
    }
}

impl From<StoreError> for DeployError {
    fn from(e: StoreError) -> Self {
        Self::Storage(e)
    }
}

impl std::error::Error for DeployError {}

impl From<std::io::Error> for DeployError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl Deployment {
    /// Bootstraps the full deployment. `seed` makes the whole topology
    /// reproducible (vendor roots, device keys, developer key). The
    /// append-only logs use the legacy wire-compatible 1-shard layout;
    /// see [`Deployment::launch_sharded`] for multi-shard logs.
    pub fn launch(spec: AppSpec, seed: &[u8]) -> Result<Self, DeployError> {
        Self::launch_sharded(spec, seed, 1)
    }

    /// [`Deployment::launch`] with `log_shards` shards per domain log
    /// (`0`/`1` = the byte-compatible single-tree layout). Multi-shard
    /// domains sign shard-head commitments and serve sharded audit
    /// bundles; clients handle both transparently.
    pub fn launch_sharded(
        spec: AppSpec,
        seed: &[u8],
        log_shards: u32,
    ) -> Result<Self, DeployError> {
        Self::launch_inner(spec, seed, log_shards, None)
    }

    /// [`Deployment::launch_sharded`] with durable per-domain logs under
    /// `data_dir` (one `domain-<i>/` subdirectory each). On a fresh
    /// directory this behaves exactly like an ephemeral launch; on a
    /// directory left by a previous launch each domain **recovers** its
    /// log and signed history and resumes where it crashed — the restart
    /// serves the same checkpoints, so auditing clients holding the
    /// pre-crash head see ordinary growth, never equivocation. The
    /// version-1 install is skipped for domains that already activated it
    /// (their logs prove it); note the sandboxed app *instance* is not
    /// persisted (TEEs cannot migrate app state, §4.1), so a resumed
    /// domain serves log/audit traffic immediately but needs the next
    /// signed release before serving app calls again.
    pub fn launch_durable(
        spec: AppSpec,
        seed: &[u8],
        log_shards: u32,
        data_dir: &Path,
    ) -> Result<Self, DeployError> {
        Self::launch_inner(spec, seed, log_shards, Some(data_dir))
    }

    fn launch_inner(
        spec: AppSpec,
        seed: &[u8],
        log_shards: u32,
        data_dir: Option<&Path>,
    ) -> Result<Self, DeployError> {
        let n = spec.hosts.len();
        if n == 0 {
            return Err(DeployError::NoDomains);
        }
        let developer = SigningKey::derive(seed, b"distrust/developer-key");
        let developer_pub = developer.verifying_key();
        let measurement = framework_measurement(&developer_pub, &spec.name);
        let deployment_id =
            distrust_crypto::sha256_many(&[b"deployment", seed, spec.name.as_bytes()]);

        // One simulated vendor per ecosystem; domains 1..n round-robin.
        let vendors: Vec<Vendor> = VendorKind::ALL
            .iter()
            .map(|k| Vendor::new(*k, seed))
            .collect();
        let vendor_roots = VendorRoots::from_vendors(&vendors);

        let mut rng = HmacDrbg::new(seed, b"distrust/deploy-rng");
        let mut hosts = Vec::with_capacity(n);
        let mut domain_infos = Vec::with_capacity(n);
        let mut resumed = Vec::with_capacity(n);

        for (index, app_host) in spec.hosts.into_iter().enumerate() {
            let index = index as u32;
            let lid = log_id(&deployment_id, index);
            let storage = match data_dir {
                Some(dir) => {
                    StorageConfig::Durable(DurableOptions::new(dir.join(format!("domain-{index}"))))
                }
                None => StorageConfig::Ephemeral,
            };
            if index == 0 {
                // The developer's own domain: no secure hardware.
                let checkpoint_key = SigningKey::derive(seed, b"domain-0-checkpoint");
                let framework = EnclaveFramework::open(
                    FrameworkConfig {
                        domain_index: index,
                        app_name: spec.name.clone(),
                        developer_key: developer_pub,
                        log_id: lid,
                        limits: spec.limits,
                        log_shards,
                        storage,
                    },
                    None,
                    checkpoint_key,
                    app_host,
                )?;
                resumed.push(framework.current_version() >= 1);
                let host = DirectHost::spawn(FrameworkService::new(framework))?;
                domain_infos.push(DomainInfo {
                    index,
                    addr: host.addr(),
                    vendor: None,
                    checkpoint_key: SigningKey::derive(seed, b"domain-0-checkpoint")
                        .verifying_key(),
                });
                hosts.push(RunningHost::Direct(host));
            } else {
                let vendor = &vendors[(index as usize - 1) % vendors.len()];
                let device = vendor.provision_device(&mut rng);
                let enclave = device.launch(measurement);
                let checkpoint_key = enclave.derive_signing_key(b"checkpoint");
                let checkpoint_pub = checkpoint_key.verifying_key();
                let framework = EnclaveFramework::open(
                    FrameworkConfig {
                        domain_index: index,
                        app_name: spec.name.clone(),
                        developer_key: developer_pub,
                        log_id: lid,
                        limits: spec.limits,
                        log_shards,
                        storage,
                    },
                    Some(enclave),
                    checkpoint_key,
                    app_host,
                )?;
                resumed.push(framework.current_version() >= 1);
                let host = EnclaveHost::spawn(FrameworkService::new(framework))?;
                domain_infos.push(DomainInfo {
                    index,
                    addr: host.addr(),
                    vendor: Some(vendor.kind()),
                    checkpoint_key: checkpoint_pub,
                });
                hosts.push(RunningHost::Tee(host));
            }
        }

        let descriptor = DeploymentDescriptor {
            app_name: spec.name.clone(),
            developer_key: developer_pub,
            vendor_roots,
            domains: domain_infos,
        };

        // Install version 1 through the ordinary signed-update path —
        // unless every domain already has it in its recovered log (a pure
        // restart): re-pushing would only collect StaleVersion rejections.
        let release = SignedRelease::create(&spec.name, 1, &spec.notes, &spec.module, &developer);
        let initial_app_digest = release.digest();
        if !resumed.iter().all(|&r| r) {
            let mut client = DeploymentClient::new(
                descriptor.clone(),
                Box::new(HmacDrbg::new(seed, b"distrust/deploy-client")),
            );
            // Results arrive in domain order; a resumed domain rejecting
            // the replayed version 1 as stale is correct behavior, not a
            // launch failure.
            for (result, &was_resumed) in client.push_update(&release).into_iter().zip(&resumed) {
                if !was_resumed {
                    result.map_err(|e| DeployError::InitialRelease(e.to_string()))?;
                }
            }
        }

        Ok(Self {
            descriptor,
            developer,
            vendors,
            initial_app_digest,
            hosts,
        })
    }

    /// Number of trust domains.
    pub fn domain_count(&self) -> usize {
        self.hosts.len()
    }

    /// Builds a fresh client for this deployment.
    pub fn client(&self, seed: &[u8]) -> DeploymentClient {
        DeploymentClient::new(
            self.descriptor.clone(),
            Box::new(HmacDrbg::new(seed, b"distrust/client-rng")),
        )
    }

    /// Signs a follow-up release as the developer.
    pub fn sign_release(&self, version: u64, notes: &str, module: &Module) -> SignedRelease {
        SignedRelease::create(
            &self.descriptor.app_name,
            version,
            notes,
            module,
            &self.developer,
        )
    }

    /// Signs a **final** release: once applied, every domain permanently
    /// refuses further updates (§3.3 lockdown).
    pub fn sign_final_release(&self, version: u64, notes: &str, module: &Module) -> SignedRelease {
        SignedRelease::create_final(
            &self.descriptor.app_name,
            version,
            notes,
            module,
            &self.developer,
        )
    }

    /// Stops one domain's server (fault-injection for partial-failure
    /// tests and benches: the deployment keeps serving from the others).
    pub fn shutdown_domain(&mut self, index: usize) {
        if let Some(host) = self.hosts.get_mut(index) {
            host.shutdown();
        }
    }

    /// Stops all domain servers.
    pub fn shutdown(&mut self) {
        for host in &mut self.hosts {
            host.shutdown();
        }
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        self.shutdown();
    }
}
