//! Release manifests and developer-signed releases.
//!
//! §4.1: "We also need to ensure that the TEE only runs updates from the
//! application developer. We can do this easily by sealing on to the TEE
//! not just the framework, but also a public key. Then each subsequent
//! update needs to be accompanied by a signature that verifies under the
//! original public key."
//!
//! A [`ReleaseManifest`] names a version and commits to the exact module
//! bytes via digest; a [`SignedRelease`] carries the manifest, the code,
//! and the developer's Schnorr signature over the manifest.

use distrust_crypto::schnorr::{SchnorrSignature, SigningKey, VerifyingKey};
use distrust_crypto::sha256::Digest;
use distrust_sandbox::Module;
use distrust_wire::codec::{Decode, DecodeError, Encode};
use distrust_wire::wire_struct;

/// Domain tag for release signatures.
const RELEASE_DST: &[u8] = b"distrust/release/v1";

/// Metadata describing one application release.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReleaseManifest {
    /// Application name (stable across versions).
    pub app_name: String,
    /// Monotonically increasing version.
    pub version: u64,
    /// Digest of the module bytes ([`Module::digest`]).
    pub code_digest: [u8; 32],
    /// Human-readable release notes (what auditors read first).
    pub notes: String,
    /// §3.3: "for highly sensitive applications, a developer might
    /// consider disabling her ability to push code updates to defend
    /// against future compromise." When `true`, this release permanently
    /// locks the deployment: every framework rejects all further updates,
    /// even correctly signed ones.
    pub locks_updates: bool,
}

wire_struct!(ReleaseManifest {
    app_name: String,
    version: u64,
    code_digest: [u8; 32],
    notes: String,
    locks_updates: bool,
});

impl ReleaseManifest {
    /// The exact bytes the developer signs.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut out = RELEASE_DST.to_vec();
        self.encode(&mut out);
        out
    }

    /// The log leaf recorded for this release: a compact, canonical
    /// commitment to (name, version, digest) that every trust domain logs
    /// identically.
    pub fn log_leaf(&self) -> Vec<u8> {
        let mut out = b"distrust/logleaf/v1".to_vec();
        self.app_name.encode(&mut out);
        self.version.encode(&mut out);
        self.code_digest.encode(&mut out);
        out
    }
}

/// A manifest plus the module bytes plus the developer's signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedRelease {
    /// The signed metadata.
    pub manifest: ReleaseManifest,
    /// Canonical module bytes (decode with [`Module::from_wire`]).
    pub module_bytes: Vec<u8>,
    /// Developer signature over [`ReleaseManifest::signing_bytes`].
    pub signature: SchnorrSignature,
}

impl Encode for SignedRelease {
    fn encode(&self, out: &mut Vec<u8>) {
        self.manifest.encode(out);
        self.module_bytes.encode(out);
        self.signature.to_bytes().encode(out);
    }
}

impl Decode for SignedRelease {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let manifest = ReleaseManifest::decode(input)?;
        let module_bytes = Vec::<u8>::decode(input)?;
        let sig = <[u8; 80]>::decode(input)?;
        Ok(Self {
            manifest,
            module_bytes,
            signature: SchnorrSignature::from_bytes(&sig)
                .ok_or(DecodeError::Invalid("release signature"))?,
        })
    }
}

/// Why a release was rejected by the framework.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReleaseError {
    /// Signature does not verify under the sealed developer key.
    BadSignature,
    /// Module bytes do not hash to the manifest's digest.
    DigestMismatch,
    /// Module bytes are not a decodable module.
    MalformedModule,
    /// Module failed static validation.
    InvalidModule(String),
    /// Version must strictly increase.
    StaleVersion {
        /// Currently active version.
        current: u64,
        /// Version offered.
        offered: u64,
    },
    /// Application name differs from the deployed application.
    WrongApp {
        /// Name the deployment is pinned to.
        expected: String,
        /// Name in the offered manifest.
        got: String,
    },
    /// A prior release locked the deployment (§3.3): updates are
    /// permanently disabled.
    DeploymentLocked,
    /// The append-only log (or its durable store) refused the append —
    /// shard routing inconsistency, storage I/O failure, or a fsync that
    /// could not complete. Surfaced as a rejection rather than a panic so
    /// one bad update cannot take the serving path down; nothing was
    /// activated.
    LogAppend(String),
    /// The update was logged and activated, but persisting its signed
    /// artifacts (epoch checkpoint, notice) failed — the domain should be
    /// restarted before serving further updates.
    Persist(String),
}

impl core::fmt::Display for ReleaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadSignature => write!(f, "developer signature invalid"),
            Self::DigestMismatch => write!(f, "module bytes do not match manifest digest"),
            Self::MalformedModule => write!(f, "module bytes undecodable"),
            Self::InvalidModule(e) => write!(f, "module validation failed: {e}"),
            Self::StaleVersion { current, offered } => {
                write!(f, "stale version: current {current}, offered {offered}")
            }
            Self::WrongApp { expected, got } => {
                write!(f, "wrong application: expected {expected:?}, got {got:?}")
            }
            Self::DeploymentLocked => {
                write!(f, "deployment is locked: updates permanently disabled")
            }
            Self::LogAppend(e) => {
                write!(f, "release log refused the append: {e}")
            }
            Self::Persist(e) => {
                write!(
                    f,
                    "release activated but signed artifacts not persisted: {e}"
                )
            }
        }
    }
}

impl std::error::Error for ReleaseError {}

impl SignedRelease {
    /// Builds and signs a release from a module.
    pub fn create(
        app_name: &str,
        version: u64,
        notes: &str,
        module: &Module,
        developer: &SigningKey,
    ) -> Self {
        Self::create_with_lock(app_name, version, notes, module, developer, false)
    }

    /// Builds and signs a **final** release: after any framework applies
    /// it, the deployment is locked and no further updates are accepted
    /// (§3.3's defense against future developer compromise).
    pub fn create_final(
        app_name: &str,
        version: u64,
        notes: &str,
        module: &Module,
        developer: &SigningKey,
    ) -> Self {
        Self::create_with_lock(app_name, version, notes, module, developer, true)
    }

    fn create_with_lock(
        app_name: &str,
        version: u64,
        notes: &str,
        module: &Module,
        developer: &SigningKey,
        locks_updates: bool,
    ) -> Self {
        let module_bytes = module.to_wire();
        let manifest = ReleaseManifest {
            app_name: app_name.to_string(),
            version,
            code_digest: module.digest(),
            notes: notes.to_string(),
            locks_updates,
        };
        let signature = developer.sign(&manifest.signing_bytes());
        Self {
            manifest,
            module_bytes,
            signature,
        }
    }

    /// Full verification against the sealed developer key; returns the
    /// decoded, validated module on success.
    pub fn verify(&self, developer: &VerifyingKey) -> Result<Module, ReleaseError> {
        if !developer.verify(&self.manifest.signing_bytes(), &self.signature) {
            return Err(ReleaseError::BadSignature);
        }
        let module =
            Module::from_wire(&self.module_bytes).map_err(|_| ReleaseError::MalformedModule)?;
        if module.digest() != self.manifest.code_digest {
            return Err(ReleaseError::DigestMismatch);
        }
        module
            .validate()
            .map_err(|e| ReleaseError::InvalidModule(e.to_string()))?;
        Ok(module)
    }

    /// The code digest this release commits to.
    pub fn digest(&self) -> Digest {
        self.manifest.code_digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrust_sandbox::guests::counter_module;

    fn dev_key() -> SigningKey {
        SigningKey::derive(b"manifest tests", b"developer")
    }

    #[test]
    fn create_verify_round_trip() {
        let dev = dev_key();
        let module = counter_module(1);
        let release = SignedRelease::create("counter", 1, "initial", &module, &dev);
        let verified = release.verify(&dev.verifying_key()).unwrap();
        assert_eq!(verified, module);
    }

    #[test]
    fn wire_round_trip() {
        let dev = dev_key();
        let release = SignedRelease::create("counter", 2, "v2", &counter_module(2), &dev);
        let decoded = SignedRelease::from_wire(&release.to_wire()).unwrap();
        assert_eq!(decoded, release);
        assert!(decoded.verify(&dev.verifying_key()).is_ok());
    }

    #[test]
    fn unsigned_developer_rejected() {
        let dev = dev_key();
        let mallory = SigningKey::derive(b"manifest tests", b"mallory");
        let release = SignedRelease::create("counter", 1, "evil", &counter_module(1), &mallory);
        assert_eq!(
            release.verify(&dev.verifying_key()),
            Err(ReleaseError::BadSignature)
        );
    }

    #[test]
    fn swapped_code_detected() {
        // Attacker keeps the signed manifest but substitutes module bytes.
        let dev = dev_key();
        let mut release = SignedRelease::create("counter", 1, "v1", &counter_module(1), &dev);
        release.module_bytes = counter_module(99).to_wire();
        assert_eq!(
            release.verify(&dev.verifying_key()),
            Err(ReleaseError::DigestMismatch)
        );
    }

    #[test]
    fn tampered_manifest_detected() {
        let dev = dev_key();
        let mut release = SignedRelease::create("counter", 1, "v1", &counter_module(1), &dev);
        release.manifest.version = 2;
        assert_eq!(
            release.verify(&dev.verifying_key()),
            Err(ReleaseError::BadSignature)
        );
    }

    #[test]
    fn malformed_module_detected() {
        let dev = dev_key();
        let module = counter_module(1);
        let mut release = SignedRelease::create("counter", 1, "v1", &module, &dev);
        // Truncate the module bytes but fix up the digest + signature so
        // only decodability fails.
        release.module_bytes.truncate(10);
        release.manifest.code_digest =
            distrust_crypto::sha256_many(&[b"distrust/module/v1", &release.module_bytes]);
        release.signature = dev.sign(&release.manifest.signing_bytes());
        assert_eq!(
            release.verify(&dev.verifying_key()),
            Err(ReleaseError::MalformedModule)
        );
    }

    #[test]
    fn log_leaf_is_version_specific() {
        let dev = dev_key();
        let r1 = SignedRelease::create("counter", 1, "v1", &counter_module(1), &dev);
        let r2 = SignedRelease::create("counter", 2, "v2", &counter_module(2), &dev);
        assert_ne!(r1.manifest.log_leaf(), r2.manifest.log_leaf());
        // Leaf does not depend on mutable notes.
        let r1b = SignedRelease::create("counter", 1, "different notes", &counter_module(1), &dev);
        assert_eq!(r1.manifest.log_leaf(), r1b.manifest.log_leaf());
    }
}
