//! The application-independent enclave framework — the paper's core design
//! (§4.1).
//!
//! "Instead of sealing the developer's code directly on to the enclave, we
//! instead seal an application-independent framework on to the TEE. This
//! application-independent framework accepts application code as input and
//! executes it."
//!
//! Responsibilities, in the order the paper derives them:
//!
//! 1. **Run application code in a sandbox** so updates cannot escape and
//!    tamper with the framework ([`crate::abi`], `distrust-sandbox`).
//! 2. **Accept only developer-signed updates**, verified against the
//!    public key sealed at initialization ([`crate::manifest`]).
//! 3. **Record every activated code digest in an append-only log** and
//!    make update notices available *before* the new code serves its
//!    first request (`distrust-log`).
//! 4. **Attest**: answer client challenges with a quote binding the
//!    client's nonce, the current log head, and the running app digest.

use crate::abi::{app_call, import_names, AppHost};
use crate::manifest::{ReleaseError, ReleaseManifest, SignedRelease};
use crate::protocol::{
    AttestationBinding, AuditBundle, BundleAttestation, DomainStatus, Request, Response,
    ShardAuditBundle, UpdateNotice,
};
use distrust_crypto::schnorr::{SigningKey, VerifyingKey};
use distrust_crypto::sha256::Digest;
use distrust_gossip::envelope::{GossipEnvelope, GossipHead};
use distrust_gossip::evidence::EvidenceBundle;
use distrust_log::batch::{CheckpointBundle, ProofBundle};
use distrust_log::checkpoint::{CheckpointBody, SignedCheckpoint};
use distrust_log::shard::{ShardBundle, ShardEpoch, ShardSnapshot, ShardedLog};
use distrust_log::store::{open_store, LogStore, StorageConfig, StoreError};
use distrust_sandbox::{Instance, Limits};
use distrust_tee::enclave::Enclave;
use distrust_wire::codec::{Decode, Encode};
use std::collections::HashMap;
use std::sync::Arc;

/// Meta-log record kinds — the framework's durable signed artifacts,
/// persisted through [`ShardedLog::append_meta`] and replayed on boot so a
/// restarted domain *reuses* its pre-crash signatures instead of minting
/// fresh ones (re-signing the same sizes would make an honest restart look
/// like equivocation to a client holding the pre-crash head).
const META_GENESIS: u8 = 1;
/// An epoch: `SignedCheckpoint ‖ ShardSnapshot`, appended at update time.
const META_EPOCH: u8 = 2;
/// An [`UpdateNotice`], appended (before its epoch record) at update time.
const META_NOTICE: u8 = 3;

/// Computes the framework measurement: the value a TEE attests when it
/// loads this framework sealed with a particular developer key. Everything
/// that defines the trusted framework identity goes in here.
pub fn framework_measurement(developer_key: &VerifyingKey, app_name: &str) -> Digest {
    distrust_crypto::sha256_many(&[
        b"distrust/framework-measurement/v2",
        &developer_key.to_bytes(),
        app_name.as_bytes(),
    ])
}

/// Static configuration sealed into the framework at initialization.
pub struct FrameworkConfig {
    /// This domain's index in the deployment.
    pub domain_index: u32,
    /// The application this deployment is pinned to.
    pub app_name: String,
    /// The developer's update-signing public key (§4.1: sealed alongside
    /// the framework).
    pub developer_key: VerifyingKey,
    /// Log identifier for checkpoints.
    pub log_id: [u8; 32],
    /// Sandbox execution limits applied to every application instance.
    pub limits: Limits,
    /// Shards of the append-only log (appends route by the releasing
    /// app's id). `1` (or `0`, normalized to `1`) keeps the legacy
    /// single-tree layout — checkpoints, proofs, and audit bundles stay
    /// byte-compatible with pre-shard deployments. With more shards,
    /// checkpoints sign the top-level shard-head commitment and audits
    /// are served as [`Response::ShardAuditBundle`]. Note that a
    /// framework is pinned to one app, so *its own* appends all route to
    /// that app's shard — multi-shard configs lay the commitment/audit
    /// groundwork (and are what multi-app or key-range routing will
    /// spread load across), but today's parallel-append win lives at the
    /// `ShardedLog` layer, not in a single-app framework.
    pub log_shards: u32,
    /// Where the log lives. [`StorageConfig::Ephemeral`] keeps everything
    /// in memory (tests, legacy behavior); [`StorageConfig::Durable`]
    /// persists segments + signed artifacts so a restart resumes the
    /// identical signed history.
    pub storage: StorageConfig,
}

struct RunningApp {
    instance: Instance,
    import_names: Vec<String>,
    manifest: ReleaseManifest,
}

/// Upper bound on checkpoints per [`AuditBundle`]; a client further behind
/// than this gets one direct consistency step from its verified size to
/// the earliest included checkpoint.
const MAX_BUNDLE_CHECKPOINTS: usize = 64;

/// Shared per-epoch audit artifacts, amortised across every auditing
/// client: one [`CheckpointBundle`] per distinct `verified_size`, rebuilt
/// only when the log grows. With this cache a `BatchAudit` performs **no
/// signing and no proof construction** in steady state — serving ten
/// thousand auditors costs ten thousand hash-map lookups, not ten thousand
/// Schnorr signatures.
#[derive(Default)]
struct AuditCache {
    /// Log size the cached bundles describe; any other size invalidates.
    epoch: u64,
    /// Signed size-0 checkpoint for audits of a still-empty log.
    genesis: Option<SignedCheckpoint>,
    /// Bundles keyed by the client-reported verified size (1-shard logs).
    bundles: HashMap<u64, CheckpointBundle>,
    /// Sharded bundles keyed the same way (multi-shard logs).
    shard_bundles: HashMap<u64, ShardBundle>,
    hits: u64,
    misses: u64,
}

/// Most relayed peer heads the gossip board retains.
const MAX_BOARD_HEADS: usize = 64;
/// Most relayed evidence bundles the gossip board retains.
const MAX_BOARD_EVIDENCE: usize = 64;

/// The domain's gossip bulletin board: peer checkpoints and evidence that
/// clients left behind for other clients to pick up.
///
/// Everything here is stored **unverified** — the framework holds no
/// other domain's checkpoint key, so it cannot tell a real peer head from
/// a fabricated one. That is fine: the board is a rendezvous, not an
/// authority. Every client verifies relayed heads and evidence against
/// its own pinned keys on ingest, so the worst a poisoned board costs is
/// wasted bytes. Bounds are hard caps with oldest-first eviction for
/// heads and insert-refusal for evidence, so a flooder cannot grow the
/// domain's memory.
#[derive(Default)]
struct GossipBoard {
    /// Relayed peer heads, oldest first, deduplicated exactly.
    heads: Vec<GossipHead>,
    /// Relayed evidence bundles, deduplicated by content hash.
    evidence: Vec<EvidenceBundle>,
    evidence_seen: std::collections::HashSet<Digest>,
}

impl GossipBoard {
    /// Merges a client's envelope into the board. `own_domain` filters
    /// heads claiming to come from this domain itself — clients get those
    /// first-hand, and relaying them would only launder forgeries.
    fn ingest(&mut self, envelope: GossipEnvelope, own_domain: u32) {
        for head in envelope.heads {
            if head.domain == own_domain || self.heads.contains(&head) {
                continue;
            }
            if self.heads.len() >= MAX_BOARD_HEADS {
                self.heads.remove(0);
            }
            self.heads.push(head);
        }
        for bundle in envelope.evidence {
            if self.evidence.len() >= MAX_BOARD_EVIDENCE {
                break;
            }
            if self.evidence_seen.insert(bundle.dedup_key()) {
                self.evidence.push(bundle);
            }
        }
    }
}

/// One trust domain's framework state.
pub struct EnclaveFramework {
    config: FrameworkConfig,
    /// `Some` on TEE-backed domains, `None` on trust domain 0 (Figure 2:
    /// the developer's own domain runs without secure hardware).
    enclave: Option<Enclave>,
    /// Key signing log checkpoints. On TEE domains this is derived inside
    /// the enclave from the sealing secret; on domain 0 it is a plain host
    /// key. Clients pin the corresponding public keys at deployment.
    checkpoint_key: SigningKey,
    /// The code-digest log: Merkle shards (appends routed by app id) under
    /// a top-level shard-head commitment. One shard reproduces the legacy
    /// single-tree wire format bit for bit.
    log: ShardedLog,
    /// Update notices, one per activated release.
    notices: Vec<UpdateNotice>,
    /// One signed checkpoint per log append ("epoch"), signed at update
    /// time so audits are served from cache instead of signing per client.
    epoch_checkpoints: Vec<SignedCheckpoint>,
    /// The per-shard snapshot behind each epoch checkpoint, parallel to
    /// `epoch_checkpoints` — what sharded audit bundles serve and what
    /// maps a client's verified total size back to per-shard baselines.
    epoch_snapshots: Vec<ShardSnapshot>,
    /// Shared proof/bundle cache for [`Request::BatchAudit`].
    audit_cache: AuditCache,
    app: Option<RunningApp>,
    app_host: Box<dyn AppHost>,
    logical_time: u64,
    /// §3.3 lockdown: set when a release with `locks_updates` activates;
    /// permanently rejects further updates.
    locked: bool,
    /// Highest version seen in *recovered* notices. Current TEEs cannot
    /// migrate app state across restarts, so the app instance itself is
    /// not persisted — but version monotonicity must survive the restart
    /// or a replayed old release would be re-accepted.
    recovered_version: u64,
    /// Bulletin board of peer gossip this domain relays between clients.
    /// Deliberately not persisted: gossip is epidemic state, rebuilt by
    /// the next exchange, and a crash wiping it costs only freshness.
    gossip: GossipBoard,
}

impl EnclaveFramework {
    /// Opens a framework over the configured storage, recovering any
    /// persisted log and signed history. `enclave` is `None` for trust
    /// domain 0. With [`StorageConfig::Ephemeral`] this is infallible in
    /// practice and equivalent to the pre-durability constructor.
    pub fn open(
        config: FrameworkConfig,
        enclave: Option<Enclave>,
        checkpoint_key: SigningKey,
        app_host: Box<dyn AppHost>,
    ) -> Result<Self, StoreError> {
        let shards = config.log_shards.max(1) as usize;
        let store = open_store(&config.storage, shards)?;
        Self::open_with_store(config, enclave, checkpoint_key, app_host, store)
    }

    /// [`Self::open`] with an explicit store — the injection point for
    /// restart tests that share one [`distrust_log::store::MemStore`]
    /// across framework lifetimes.
    ///
    /// Recovery rebuilds the Merkle shards from persisted leaves, then
    /// replays the meta log: the genesis checkpoint, every epoch's signed
    /// checkpoint + shard snapshot, and every update notice are *reused*,
    /// not re-signed. Boot refuses to proceed when the signed history
    /// outruns the recovered log ([`StoreError::LostSignedHistory`] — a
    /// fsync hole or deleted segment) or diverges from it (`Corrupt`) —
    /// serving in either state would manufacture equivocation evidence
    /// against our own key.
    pub fn open_with_store(
        config: FrameworkConfig,
        enclave: Option<Enclave>,
        checkpoint_key: SigningKey,
        app_host: Box<dyn AppHost>,
        store: Arc<dyn LogStore>,
    ) -> Result<Self, StoreError> {
        let shards = config.log_shards.max(1) as usize;
        let (log, meta) = ShardedLog::with_store(shards, store)?;
        let mut genesis = None;
        let mut notices: Vec<UpdateNotice> = Vec::new();
        let mut epoch_checkpoints: Vec<SignedCheckpoint> = Vec::new();
        let mut epoch_snapshots: Vec<ShardSnapshot> = Vec::new();
        let mut logical_time = 0u64;
        for record in &meta {
            match record.kind {
                META_GENESIS => {
                    let cp = SignedCheckpoint::from_wire(&record.payload)
                        .map_err(|_| StoreError::Corrupt("meta genesis record"))?;
                    logical_time = logical_time.max(cp.body.logical_time);
                    genesis = Some(cp);
                }
                META_EPOCH => {
                    let mut input = record.payload.as_slice();
                    let cp = SignedCheckpoint::decode(&mut input)
                        .map_err(|_| StoreError::Corrupt("meta epoch checkpoint"))?;
                    let snapshot = ShardSnapshot::decode(&mut input)
                        .map_err(|_| StoreError::Corrupt("meta epoch snapshot"))?;
                    if !input.is_empty() {
                        return Err(StoreError::Corrupt("meta epoch trailing bytes"));
                    }
                    if snapshot.shard_count() != shards {
                        return Err(StoreError::ShardCountMismatch {
                            store: snapshot.shard_count(),
                            configured: shards,
                        });
                    }
                    logical_time = logical_time.max(cp.body.logical_time);
                    epoch_checkpoints.push(cp);
                    epoch_snapshots.push(snapshot);
                }
                META_NOTICE => {
                    let notice = UpdateNotice::from_wire(&record.payload)
                        .map_err(|_| StoreError::Corrupt("meta notice record"))?;
                    logical_time = logical_time.max(notice.logical_time);
                    notices.push(notice);
                }
                _ => return Err(StoreError::Corrupt("unknown meta record kind")),
            }
        }
        // Boot guards: the recovered log must carry every size the signed
        // history committed to, and match it bit for bit at the head.
        let snapshot = log.snapshot();
        if let Some(last) = epoch_checkpoints.last() {
            if last.body.size > snapshot.total() {
                return Err(StoreError::LostSignedHistory {
                    signed: last.body.size,
                    recovered: snapshot.total(),
                });
            }
            if last.body.size == snapshot.total() && last.body.head != snapshot.commitment() {
                return Err(StoreError::Corrupt(
                    "recovered log diverges from signed head",
                ));
            }
        }
        let locked = notices.iter().any(|n| n.manifest.locks_updates);
        let recovered_version = notices
            .iter()
            .map(|n| n.manifest.version)
            .max()
            .unwrap_or(0);
        Ok(Self {
            config,
            enclave,
            checkpoint_key,
            log,
            notices,
            epoch_checkpoints,
            epoch_snapshots,
            audit_cache: AuditCache {
                genesis,
                ..AuditCache::default()
            },
            app: None,
            app_host,
            logical_time,
            locked,
            recovered_version,
            gossip: GossipBoard::default(),
        })
    }

    /// True once a final release has locked this deployment.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Highest version this domain has accepted — from the running app or
    /// from recovered update notices (the instance itself does not
    /// survive a restart; the version floor must).
    pub fn current_version(&self) -> u64 {
        self.app
            .as_ref()
            .map(|a| a.manifest.version)
            .unwrap_or(0)
            .max(self.recovered_version)
    }

    /// Whether this domain has secure hardware.
    pub fn is_attested(&self) -> bool {
        self.enclave.is_some()
    }

    /// Current domain status snapshot.
    pub fn status(&self) -> DomainStatus {
        let (app_digest, app_version) = match &self.app {
            Some(app) => (app.manifest.code_digest, app.manifest.version),
            None => ([0u8; 32], 0),
        };
        let snapshot = self.log.snapshot();
        DomainStatus {
            domain_index: self.config.domain_index,
            app_digest,
            app_version,
            log_size: snapshot.total(),
            log_head: snapshot.commitment(),
            framework_measurement: framework_measurement(
                &self.config.developer_key,
                &self.config.app_name,
            ),
        }
    }

    /// Applies a signed release following the §4.1 ordering: verify the
    /// developer signature, append the digest to the append-only log,
    /// record the client-visible update notice, and only then activate the
    /// new code.
    pub fn apply_update(&mut self, release: &SignedRelease) -> Result<DomainStatus, ReleaseError> {
        if self.locked {
            return Err(ReleaseError::DeploymentLocked);
        }
        let module = release.verify(&self.config.developer_key)?;
        if release.manifest.app_name != self.config.app_name {
            return Err(ReleaseError::WrongApp {
                expected: self.config.app_name.clone(),
                got: release.manifest.app_name.clone(),
            });
        }
        // The floor is the max of the running version and the recovered
        // one: the app instance does not survive a restart, but version
        // monotonicity must, or a replayed old release would re-activate.
        let current = self.current_version();
        if release.manifest.version <= current {
            return Err(ReleaseError::StaleVersion {
                current,
                offered: release.manifest.version,
            });
        }
        // Instantiate first: a module that cannot even instantiate is
        // rejected without touching the log.
        let instance = Instance::new(module.clone(), self.config.limits)
            .map_err(|t| ReleaseError::InvalidModule(t.to_string()))?;
        // 1. Log the digest (the permanent record), routed to the shard
        //    the releasing app's id hashes to (shard 0 on 1-shard logs).
        let shard = self.log.shard_for(release.manifest.app_name.as_bytes());
        let log_index = self
            .log
            .append(shard, &release.manifest.log_leaf())
            .map_err(|e| ReleaseError::LogAppend(e.to_string()))?;
        // 2. Record the notice — visible to clients before the new code
        //    serves any request (we hold the domain lock throughout).
        self.logical_time += 1;
        let notice = UpdateNotice {
            manifest: release.manifest.clone(),
            log_index,
            logical_time: self.logical_time,
        };
        self.notices.push(notice.clone());
        // Sign this epoch's checkpoint once, here — every BatchAudit until
        // the next update is served from it without touching the key. The
        // checkpoint signs the shard-head commitment (= the single tree's
        // root on 1-shard logs) over the epoch's shard snapshot. The log
        // is fsynced FIRST: a signed head must never outrun durable
        // history, or a crash between signing and syncing would turn this
        // honest domain's restart into equivocation evidence.
        self.log
            .sync()
            .map_err(|e| ReleaseError::LogAppend(e.to_string()))?;
        self.logical_time += 1;
        let snapshot = self.log.snapshot();
        let checkpoint = SignedCheckpoint::sign(
            CheckpointBody {
                log_id: self.config.log_id,
                size: snapshot.total(),
                head: snapshot.commitment(),
                logical_time: self.logical_time,
            },
            &self.checkpoint_key,
        );
        // Persist the signed artifacts (notice first — an epoch record
        // implies its notice): a restart reuses these instead of minting
        // fresh signatures for the same sizes.
        let mut epoch_wire = Vec::new();
        checkpoint.encode(&mut epoch_wire);
        snapshot.encode(&mut epoch_wire);
        self.log
            .append_meta(META_NOTICE, &notice.to_wire())
            .and_then(|()| self.log.append_meta(META_EPOCH, &epoch_wire))
            .map_err(|e| ReleaseError::Persist(e.to_string()))?;
        self.epoch_checkpoints.push(checkpoint);
        self.epoch_snapshots.push(snapshot);
        self.audit_cache.bundles.clear();
        self.audit_cache.shard_bundles.clear();
        // 3. Activate (and lock, if this is a final release).
        self.app = Some(RunningApp {
            import_names: import_names(&module),
            instance,
            manifest: release.manifest.clone(),
        });
        if release.manifest.locks_updates {
            self.locked = true;
        }
        Ok(self.status())
    }

    /// Signs a checkpoint of the current log (the shard-head commitment;
    /// on a 1-shard log, byte-identical to the legacy single-tree form).
    /// Syncs the store first — sign-before-durable would let a crash
    /// fabricate equivocation evidence against this domain's own key.
    pub fn checkpoint(&mut self) -> Result<SignedCheckpoint, StoreError> {
        self.log.sync()?;
        self.logical_time += 1;
        let snapshot = self.log.snapshot();
        Ok(SignedCheckpoint::sign(
            CheckpointBody {
                log_id: self.config.log_id,
                size: snapshot.total(),
                head: snapshot.commitment(),
                logical_time: self.logical_time,
            },
            &self.checkpoint_key,
        ))
    }

    /// `(hits, misses)` of the shared audit-bundle cache — how many
    /// `BatchAudit` requests were served without signing or proving.
    pub fn audit_cache_stats(&self) -> (u64, u64) {
        (self.audit_cache.hits, self.audit_cache.misses)
    }

    /// Ensures the audit cache describes the current log size, clearing
    /// stale bundles, and returns `(cache_key, current_size)` for
    /// `verified_size`: anything at or past the head needs only the
    /// latest checkpoint, so those collapse onto one slot.
    fn audit_cache_key(&mut self, verified_size: u64) -> (u64, u64) {
        let current = self.log.total_len();
        if self.audit_cache.epoch != current {
            self.audit_cache.bundles.clear();
            self.audit_cache.shard_bundles.clear();
            self.audit_cache.epoch = current;
        }
        (verified_size.min(current), current)
    }

    /// Signs (once) and returns the size-0 checkpoint served while the
    /// log is still empty.
    fn genesis_checkpoint(&mut self) -> SignedCheckpoint {
        if let Some(genesis) = &self.audit_cache.genesis {
            return genesis.clone();
        }
        self.logical_time += 1;
        let signed = SignedCheckpoint::sign(
            CheckpointBody {
                log_id: self.config.log_id,
                size: 0,
                head: self.log.commitment(),
                logical_time: self.logical_time,
            },
            &self.checkpoint_key,
        );
        // Best-effort persistence: a restart that loses this record just
        // signs another size-0 checkpoint over the same (empty) head —
        // identical body except logical_time, which cannot read as
        // equivocation. Updates, by contrast, persist-or-fail.
        let _ = self.log.append_meta(META_GENESIS, &signed.to_wire());
        self.audit_cache.genesis = Some(signed.clone());
        signed
    }

    /// Serves the checkpoint/proof half of a batched audit from the shared
    /// per-epoch cache, building (and caching) it on first demand
    /// (1-shard logs: the legacy byte-compatible bundle).
    fn audit_bundle(&mut self, verified_size: u64) -> CheckpointBundle {
        let (key, current) = self.audit_cache_key(verified_size);
        if let Some(bundle) = self.audit_cache.bundles.get(&key) {
            self.audit_cache.hits += 1;
            return bundle.clone();
        }
        self.audit_cache.misses += 1;
        let bundle = self.build_audit_bundle(key, current);
        self.audit_cache.bundles.insert(key, bundle.clone());
        bundle
    }

    fn build_audit_bundle(&mut self, verified_size: u64, current: u64) -> CheckpointBundle {
        let empty = ProofBundle::default();
        if self.epoch_checkpoints.is_empty() {
            // Nothing installed yet: serve a (cached) signed view of the
            // empty log.
            return CheckpointBundle {
                checkpoints: vec![self.genesis_checkpoint()],
                proof: empty,
            };
        }
        if verified_size >= current {
            // Client already at the head: the latest checkpoint alone.
            // (The `last()` is guarded by the emptiness check above; the
            // if-let keeps this path panic-free regardless.)
            if let Some(latest) = self.epoch_checkpoints.last() {
                return CheckpointBundle {
                    checkpoints: vec![latest.clone()],
                    proof: empty,
                };
            }
        }
        let mut checkpoints: Vec<SignedCheckpoint> = self
            .epoch_checkpoints
            .iter()
            .filter(|cp| cp.body.size > verified_size)
            .cloned()
            .collect();
        if checkpoints.len() > MAX_BUNDLE_CHECKPOINTS {
            checkpoints.drain(..checkpoints.len() - MAX_BUNDLE_CHECKPOINTS);
        }
        // Proof chain: verified prefix (when provable, i.e. non-empty)
        // through every included checkpoint size.
        let mut sizes: Vec<usize> = Vec::with_capacity(checkpoints.len() + 1);
        if verified_size >= 1 {
            sizes.push(verified_size as usize);
        }
        sizes.extend(checkpoints.iter().map(|cp| cp.body.size as usize));
        let proof = self
            .log
            .lock_shard(0)
            .prove_consistency_range(&sizes)
            .unwrap_or_default();
        CheckpointBundle { checkpoints, proof }
    }

    /// The multi-shard counterpart of [`Self::audit_bundle`]: epoch shard
    /// snapshots plus per-shard consistency runs from the client's
    /// verified epoch, served from the same per-epoch cache.
    fn shard_audit_bundle(&mut self, verified_size: u64) -> ShardBundle {
        let (key, _) = self.audit_cache_key(verified_size);
        if let Some(bundle) = self.audit_cache.shard_bundles.get(&key) {
            self.audit_cache.hits += 1;
            return bundle.clone();
        }
        self.audit_cache.misses += 1;
        let bundle = self.build_shard_audit_bundle(key);
        self.audit_cache.shard_bundles.insert(key, bundle.clone());
        bundle
    }

    fn build_shard_audit_bundle(&mut self, verified_size: u64) -> ShardBundle {
        let shard_count = self.log.shard_count();
        // Empty runs are always provable; a `None` here can only mean a
        // baseline/shard-count mismatch, answered with the empty bundle
        // (which verifies nothing) rather than a panic.
        let empty_runs = |log: &ShardedLog| {
            log.prove_shard_runs(&vec![0; shard_count], &[])
                .unwrap_or_default()
        };
        if self.epoch_checkpoints.is_empty() {
            let checkpoint = self.genesis_checkpoint();
            return ShardBundle {
                epochs: vec![ShardEpoch {
                    checkpoint,
                    shards: self.log.snapshot(),
                }],
                proof: empty_runs(&self.log),
            };
        }
        // The client's verified total maps back to the epoch it verified
        // (clients only ever verify signed epoch checkpoints); its shard
        // sizes are the proof baseline. An unknown total gets the
        // from-scratch baseline — the client's own per-shard cache decides
        // what it accepts.
        let baseline_epoch = self
            .epoch_snapshots
            .iter()
            .position(|s| s.total() == verified_size);
        let baseline: Vec<u64> = baseline_epoch
            .map(|i| self.epoch_snapshots[i].sizes.clone())
            .unwrap_or_else(|| vec![0; shard_count]);
        let mut included: Vec<usize> = (0..self.epoch_checkpoints.len())
            .filter(|&i| self.epoch_checkpoints[i].body.size > verified_size)
            .collect();
        if included.is_empty() {
            // Client already at the head: the latest epoch alone, no runs.
            let last = self.epoch_checkpoints.len() - 1;
            return ShardBundle {
                epochs: vec![ShardEpoch {
                    checkpoint: self.epoch_checkpoints[last].clone(),
                    shards: self.epoch_snapshots[last].clone(),
                }],
                proof: empty_runs(&self.log),
            };
        }
        if included.len() > MAX_BUNDLE_CHECKPOINTS {
            included.drain(..included.len() - MAX_BUNDLE_CHECKPOINTS);
        }
        let snapshots: Vec<&ShardSnapshot> =
            included.iter().map(|&i| &self.epoch_snapshots[i]).collect();
        let proof = self
            .log
            .prove_shard_runs(&baseline, &snapshots)
            .unwrap_or_else(|| empty_runs(&self.log));
        // Lead with the client's verified epoch itself (when it names
        // one): a verifier that trusts the `(size, head)` but has never
        // seen its per-shard decomposition — a client whose last round
        // fell back to the per-step path, say — re-learns the baseline
        // from this epoch (the binding is checked against the signed
        // head) and can then walk the runs. Costs one skipped-signature
        // checkpoint for everyone else.
        let mut epochs = Vec::with_capacity(included.len() + 1);
        if let Some(b) = baseline_epoch {
            epochs.push(ShardEpoch {
                checkpoint: self.epoch_checkpoints[b].clone(),
                shards: self.epoch_snapshots[b].clone(),
            });
        }
        epochs.extend(included.iter().map(|&i| ShardEpoch {
            checkpoint: self.epoch_checkpoints[i].clone(),
            shards: self.epoch_snapshots[i].clone(),
        }));
        ShardBundle { epochs, proof }
    }

    /// Handles one protocol request.
    pub fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Attest { nonce } => {
                let binding = AttestationBinding {
                    nonce,
                    status: self.status(),
                };
                match &self.enclave {
                    Some(enclave) => Response::Quote(Box::new(enclave.quote(&binding.to_wire()))),
                    None => Response::Unattested(binding.status),
                }
            }
            Request::GetStatus => Response::Status(self.status()),
            Request::AppCall { method, payload } => match &mut self.app {
                None => Response::AppError("no application installed".into()),
                Some(app) => match app_call(
                    &mut app.instance,
                    &app.import_names,
                    self.app_host.as_mut(),
                    method,
                    &payload,
                ) {
                    Ok(payload) => Response::AppResult { payload },
                    Err(e) => Response::AppError(e.to_string()),
                },
            },
            Request::Update { release } => match self.apply_update(&release) {
                Ok(status) => Response::UpdateAck {
                    log_size: status.log_size,
                    digest: status.app_digest,
                },
                Err(e) => Response::UpdateRejected(e.to_string()),
            },
            Request::GetCheckpoint => match self.checkpoint() {
                Ok(cp) => Response::Checkpoint(cp),
                Err(e) => Response::Error(format!("checkpoint unavailable: {e}")),
            },
            Request::GetConsistency { old_size } => {
                // Top-level consistency proofs exist only for the 1-shard
                // (single-tree) layout; a sharded commitment is not
                // append-only and is audited per shard via `BatchAudit`.
                if self.log.shard_count() != 1 {
                    return Response::Error(
                        "sharded log has no top-level consistency proof; audit via BatchAudit"
                            .into(),
                    );
                }
                let current = self.log.total_len();
                match self.log.prove_shard_consistency(0, old_size, current) {
                    Some(proof) => Response::Consistency(proof),
                    None => Response::Error(format!(
                        "no consistency proof from {old_size} to {current}"
                    )),
                }
            }
            Request::GetLogEntries { from } => {
                // The multi-shard flattening (shards concatenated in
                // shard order) is NOT append-only — an append to a lower
                // shard inserts mid-sequence — so incremental polling
                // with a remembered offset would silently skip entries.
                // Full dumps are fine; incremental reads are per-shard
                // ([`Request::GetShardEntries`], append-only within a
                // shard). On 1-shard logs the legacy semantics hold
                // exactly.
                if self.log.shard_count() != 1 && from != 0 {
                    return Response::Error(
                        "sharded log: incremental reads are per-shard; use GetShardEntries \
                         (GetLogEntries supports only from=0 on multi-shard logs)"
                            .into(),
                    );
                }
                match self.log.all_entries_from(from) {
                    Some(leaves) => Response::LogEntries(leaves),
                    None => Response::Error("log range out of bounds".into()),
                }
            }
            Request::GetShardEntries { shard, from } => {
                if shard as usize >= self.log.shard_count() {
                    return Response::Error(format!(
                        "no shard {shard} (log has {})",
                        self.log.shard_count()
                    ));
                }
                match self.log.entries_from(shard, from) {
                    Some(leaves) => Response::LogEntries(leaves),
                    None => Response::Error("shard range out of bounds".into()),
                }
            }
            Request::GetNotices { since } => Response::Notices(
                self.notices
                    .iter()
                    .filter(|n| n.log_index >= since)
                    .cloned()
                    .collect(),
            ),
            Request::BatchAudit {
                request_id,
                nonce,
                verified_size,
            } => {
                let binding = AttestationBinding {
                    nonce,
                    status: self.status(),
                };
                let attestation = match &self.enclave {
                    Some(enclave) => {
                        BundleAttestation::Quote(Box::new(enclave.quote(&binding.to_wire())))
                    }
                    None => BundleAttestation::Unattested(binding.status),
                };
                // 1-shard logs answer with the legacy byte-compatible
                // bundle; multi-shard logs with the sharded one. The
                // request is the same either way — clients discover the
                // layout from the response tag.
                if self.log.shard_count() == 1 {
                    let bundle = self.audit_bundle(verified_size);
                    Response::AuditBundle(Box::new(AuditBundle {
                        request_id,
                        attestation,
                        bundle,
                    }))
                } else {
                    let bundle = self.shard_audit_bundle(verified_size);
                    Response::ShardAuditBundle(Box::new(ShardAuditBundle {
                        request_id,
                        attestation,
                        bundle,
                    }))
                }
            }
            Request::Gossip { envelope } => {
                let own_domain = self.config.domain_index;
                self.gossip.ingest(envelope, own_domain);
                // Reply with our own signed head first (reusing the cached
                // epoch/genesis signature — gossip must not mint fresh
                // signatures, or every exchange would move the log head),
                // then everything clients have left on the board.
                let own = self
                    .epoch_checkpoints
                    .last()
                    .cloned()
                    .unwrap_or_else(|| self.genesis_checkpoint());
                let mut heads = Vec::with_capacity(1 + self.gossip.heads.len());
                heads.push(GossipHead {
                    domain: own_domain,
                    checkpoint: own,
                });
                heads.extend(self.gossip.heads.iter().cloned());
                Response::Gossip {
                    envelope: GossipEnvelope {
                        heads,
                        evidence: self.gossip.evidence.clone(),
                    },
                }
            }
            // Domains never cosign their own heads — a quorum of one
            // interested party is not a quorum. Only witness relays
            // ([`crate::witness`]) answer with `Some`.
            Request::WitnessHead => Response::WitnessHead { cosigned: None },
        }
    }
}

/// Adapts the framework to the byte-in/byte-out service interface used by
/// both hosting modes (TEE proxy and direct).
pub struct FrameworkService {
    framework: EnclaveFramework,
}

impl FrameworkService {
    /// Wraps a framework.
    pub fn new(framework: EnclaveFramework) -> Self {
        Self { framework }
    }

    /// Access to the wrapped framework (tests, in-process deployments).
    pub fn framework_mut(&mut self) -> &mut EnclaveFramework {
        &mut self.framework
    }
}

impl distrust_tee::host::EnclaveService for FrameworkService {
    fn handle(&mut self, request: Vec<u8>) -> Vec<u8> {
        let response = match Request::from_wire(&request) {
            Ok(req) => self.framework.handle(req),
            Err(e) => Response::Error(format!("malformed request: {e}")),
        };
        response.to_wire()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::NoImports;
    use distrust_sandbox::guests::{counter_module, hostile_module};

    fn dev() -> SigningKey {
        SigningKey::derive(b"framework tests", b"developer")
    }

    fn fresh_framework() -> EnclaveFramework {
        let developer = dev();
        EnclaveFramework::open(
            FrameworkConfig {
                domain_index: 0,
                app_name: "counter".into(),
                developer_key: developer.verifying_key(),
                log_id: [7; 32],
                limits: Limits::default(),
                log_shards: 1,
                storage: StorageConfig::Ephemeral,
            },
            None,
            SigningKey::derive(b"framework tests", b"checkpoint"),
            Box::new(NoImports),
        )
        .unwrap()
    }

    fn release(version: u64) -> SignedRelease {
        SignedRelease::create(
            "counter",
            version,
            "notes",
            &counter_module(version),
            &dev(),
        )
    }

    #[test]
    fn install_and_call() {
        let mut fw = fresh_framework();
        let status = fw.apply_update(&release(1)).unwrap();
        assert_eq!(status.app_version, 1);
        assert_eq!(status.log_size, 1);
        // The counter app speaks raw exports, not the ABI `handle`; an
        // ABI call must fail gracefully, not crash the framework.
        let resp = fw.handle(Request::AppCall {
            method: 0,
            payload: vec![],
        });
        assert!(matches!(resp, Response::AppError(_)));
        // Framework is still alive.
        assert!(matches!(fw.handle(Request::GetStatus), Response::Status(_)));
    }

    #[test]
    fn update_ordering_log_then_notice_then_activate() {
        let mut fw = fresh_framework();
        fw.apply_update(&release(1)).unwrap();
        fw.apply_update(&release(2)).unwrap();
        let status = fw.status();
        assert_eq!(status.app_version, 2);
        assert_eq!(status.log_size, 2);
        // Notices exist for both versions and reference the right leaves.
        match fw.handle(Request::GetNotices { since: 0 }) {
            Response::Notices(n) => {
                assert_eq!(n.len(), 2);
                assert_eq!(n[0].manifest.version, 1);
                assert_eq!(n[0].log_index, 0);
                assert_eq!(n[1].manifest.version, 2);
                assert_eq!(n[1].log_index, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unsigned_update_rejected_and_not_logged() {
        let mut fw = fresh_framework();
        fw.apply_update(&release(1)).unwrap();
        let mallory = SigningKey::derive(b"framework tests", b"mallory");
        let evil = SignedRelease::create("counter", 2, "evil", &counter_module(2), &mallory);
        let resp = fw.handle(Request::Update { release: evil });
        assert!(matches!(resp, Response::UpdateRejected(_)));
        // The log did not grow — rejected updates leave no trace of
        // activation (nothing ran).
        assert_eq!(fw.status().log_size, 1);
        assert_eq!(fw.status().app_version, 1);
    }

    #[test]
    fn stale_and_replayed_versions_rejected() {
        let mut fw = fresh_framework();
        fw.apply_update(&release(1)).unwrap();
        fw.apply_update(&release(2)).unwrap();
        assert!(matches!(
            fw.apply_update(&release(2)),
            Err(ReleaseError::StaleVersion { .. })
        ));
        assert!(matches!(
            fw.apply_update(&release(1)),
            Err(ReleaseError::StaleVersion { .. })
        ));
    }

    #[test]
    fn wrong_app_name_rejected() {
        let mut fw = fresh_framework();
        let other = SignedRelease::create("other-app", 1, "", &counter_module(1), &dev());
        assert!(matches!(
            fw.apply_update(&other),
            Err(ReleaseError::WrongApp { .. })
        ));
    }

    #[test]
    fn hostile_update_is_activated_but_contained() {
        // A signed-but-malicious module DOES get activated (the framework
        // cannot judge semantics — §3.3 non-goals) but cannot escape the
        // sandbox: its traps surface as AppErrors and the framework state
        // (including the log) stays intact.
        let mut fw = fresh_framework();
        fw.apply_update(&release(1)).unwrap();
        let evil = SignedRelease::create("counter", 2, "totally benign", &hostile_module(), &dev());
        fw.apply_update(&evil).unwrap();
        let resp = fw.handle(Request::AppCall {
            method: 0,
            payload: vec![],
        });
        assert!(matches!(resp, Response::AppError(_)));
        // The evidence trail survives: both digests in the log.
        assert_eq!(fw.status().log_size, 2);
        match fw.handle(Request::GetLogEntries { from: 0 }) {
            Response::LogEntries(leaves) => assert_eq!(leaves.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn checkpoints_sign_current_log() {
        let mut fw = fresh_framework();
        fw.apply_update(&release(1)).unwrap();
        let cp = fw.checkpoint().unwrap();
        assert_eq!(cp.body.size, 1);
        assert_eq!(cp.body.head, fw.status().log_head);
        let key = SigningKey::derive(b"framework tests", b"checkpoint").verifying_key();
        assert!(cp.verify(&key));
        // Logical time advances.
        let cp2 = fw.checkpoint().unwrap();
        assert!(cp2.body.logical_time > cp.body.logical_time);
    }

    #[test]
    fn consistency_proofs_served() {
        let mut fw = fresh_framework();
        fw.apply_update(&release(1)).unwrap();
        let head1 = fw.status().log_head;
        fw.apply_update(&release(2)).unwrap();
        let head2 = fw.status().log_head;
        match fw.handle(Request::GetConsistency { old_size: 1 }) {
            Response::Consistency(p) => assert!(p.verify(&head1, &head2)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            fw.handle(Request::GetConsistency { old_size: 5 }),
            Response::Error(_)
        ));
    }

    #[test]
    fn attest_binds_nonce_and_status_unattested_domain() {
        let mut fw = fresh_framework();
        fw.apply_update(&release(1)).unwrap();
        match fw.handle(Request::Attest { nonce: [9; 32] }) {
            Response::Unattested(status) => {
                assert_eq!(status.app_version, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn app_state_reset_on_update_is_documented_behaviour() {
        // Current TEEs cannot migrate state across code changes (§4.1);
        // our framework matches: each release starts a fresh instance.
        let mut fw = fresh_framework();
        fw.apply_update(&release(1)).unwrap();
        fw.apply_update(&release(2)).unwrap();
        let status = fw.status();
        assert_eq!(status.app_version, 2);
    }

    fn checkpoint_vk() -> VerifyingKey {
        SigningKey::derive(b"framework tests", b"checkpoint").verifying_key()
    }

    #[test]
    fn batch_audit_served_from_shared_cache() {
        let mut fw = fresh_framework();
        fw.apply_update(&release(1)).unwrap();
        fw.apply_update(&release(2)).unwrap();
        for i in 0..5u64 {
            match fw.handle(Request::BatchAudit {
                request_id: i,
                nonce: [i as u8; 32],
                verified_size: 0,
            }) {
                Response::AuditBundle(b) => {
                    assert_eq!(b.request_id, i, "request id echoed");
                    assert_eq!(b.bundle.checkpoints.len(), 2, "one checkpoint per epoch");
                    assert!(b
                        .bundle
                        .checkpoints
                        .iter()
                        .all(|cp| cp.verify(&checkpoint_vk())));
                    let last = b.bundle.checkpoints.last().unwrap();
                    assert_eq!(last.body.size, 2);
                    assert_eq!(last.body.head, fw.status().log_head);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Five identical audits: one bundle build, four cache hits — and
        // zero fresh signatures (the epoch checkpoints were signed at
        // update time).
        let (hits, misses) = fw.audit_cache_stats();
        assert_eq!((hits, misses), (4, 1));
    }

    #[test]
    fn batch_audit_bundles_verify_with_the_auditor() {
        use distrust_log::auditor::Auditor;
        let mut fw = fresh_framework();
        fw.apply_update(&release(1)).unwrap();
        let mut auditor = Auditor::new(vec![checkpoint_vk()]);
        let bundle = match fw.handle(Request::BatchAudit {
            request_id: 1,
            nonce: [1; 32],
            verified_size: 0,
        }) {
            Response::AuditBundle(b) => b.bundle,
            other => panic!("unexpected {other:?}"),
        };
        assert!(auditor.observe_bundle(0, &bundle).is_consistent());
        assert_eq!(auditor.latest(0).unwrap().body.size, 1);

        // Growth: the next bundle links the verified prefix to the head.
        fw.apply_update(&release(2)).unwrap();
        fw.apply_update(&release(3)).unwrap();
        let bundle = match fw.handle(Request::BatchAudit {
            request_id: 2,
            nonce: [2; 32],
            verified_size: 1,
        }) {
            Response::AuditBundle(b) => b.bundle,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(bundle.checkpoints.len(), 2, "sizes 2 and 3");
        assert_eq!(bundle.proof.len(), 2, "steps 1→2 and 2→3");
        assert!(auditor.observe_bundle(0, &bundle).is_consistent());
        assert_eq!(auditor.latest(0).unwrap().body.size, 3);

        // Steady state: same bundle again — nothing verified, all skipped.
        let before = auditor.prefix_cache(0).unwrap().signatures_verified();
        let bundle = match fw.handle(Request::BatchAudit {
            request_id: 3,
            nonce: [3; 32],
            verified_size: 3,
        }) {
            Response::AuditBundle(b) => b.bundle,
            other => panic!("unexpected {other:?}"),
        };
        assert!(auditor.observe_bundle(0, &bundle).is_consistent());
        let cache = auditor.prefix_cache(0).unwrap();
        assert_eq!(
            cache.signatures_verified(),
            before,
            "unchanged log must not cost a signature verification"
        );
    }

    #[test]
    fn batch_audit_on_empty_log_serves_genesis() {
        use distrust_log::auditor::Auditor;
        let mut fw = fresh_framework();
        let mut auditor = Auditor::new(vec![checkpoint_vk()]);
        let bundle = match fw.handle(Request::BatchAudit {
            request_id: 7,
            nonce: [7; 32],
            verified_size: 0,
        }) {
            Response::AuditBundle(b) => b.bundle,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(bundle.checkpoints.len(), 1);
        assert_eq!(bundle.checkpoints[0].body.size, 0);
        assert!(auditor.observe_bundle(0, &bundle).is_consistent());
        // First install: growth from the empty log is vacuously
        // consistent.
        fw.apply_update(&release(1)).unwrap();
        let bundle = match fw.handle(Request::BatchAudit {
            request_id: 8,
            nonce: [8; 32],
            verified_size: 0,
        }) {
            Response::AuditBundle(b) => b.bundle,
            other => panic!("unexpected {other:?}"),
        };
        assert!(auditor.observe_bundle(0, &bundle).is_consistent());
        assert_eq!(auditor.latest(0).unwrap().body.size, 1);
    }

    #[test]
    fn service_round_trips_bytes() {
        use distrust_tee::host::EnclaveService;
        let mut svc = FrameworkService::new(fresh_framework());
        let resp_bytes = svc.handle(Request::GetStatus.to_wire());
        assert!(matches!(
            Response::from_wire(&resp_bytes),
            Ok(Response::Status(_))
        ));
        // Garbage in, error frame out.
        let resp_bytes = svc.handle(vec![0xff, 0xfe]);
        assert!(matches!(
            Response::from_wire(&resp_bytes),
            Ok(Response::Error(_))
        ));
    }
}
