//! Witness relays: one socket that answers for the whole deployment.
//!
//! The paper's checkpoint-gossip story assumes clients with the time and
//! connectivity to audit every trust domain. A *relay* serves the clients
//! that have neither: it holds the witness quorum's latest cosigned head
//! vector ([`CosignedHeads`]) and hands it out over a single
//! request/response exchange — one aggregated-signature verification on
//! the client covers all `n` domains. The relay also participates in the
//! gossip mesh ([`GossipNode`]), so transferable misbehavior evidence it
//! has collected rides along to every thin client that asks.
//!
//! A relay is *untrusted for safety*: it serves bytes that carry their own
//! cryptographic weight (an aggregated BLS signature, domain-signed
//! checkpoints, conflicting-signature evidence). A lying relay can
//! withhold news — a liveness attack the client bounds with its staleness
//! policy — but cannot forge a head vector the quorum never signed.

use crate::client::ClientError;
use crate::protocol::{Request, Response};
use crate::server::DirectHost;
use distrust_crypto::schnorr::VerifyingKey;
use distrust_gossip::envelope::GossipEnvelope;
use distrust_gossip::mesh::GossipNode;
use distrust_gossip::witness::CosignedHeads;
use distrust_tee::host::EnclaveClient;
use distrust_wire::codec::{Decode, Encode};
use distrust_wire::sync::HealthyMutex;
use std::net::SocketAddr;
use std::sync::Arc;

/// Shared state behind the relay's service closure.
struct RelayState {
    /// The freshest cosigned head vector installed so far.
    cosigned: Option<CosignedHeads>,
    /// Gossip-mesh participation: verified heads and evidence.
    node: GossipNode,
}

/// A running witness relay on an ephemeral loopback port.
///
/// Serves exactly two requests — [`Request::WitnessHead`] and
/// [`Request::Gossip`] — and answers everything else (including
/// undecodable frames) with [`Response::Error`], the same shape a
/// pre-gossip domain gives, so probing clients degrade identically.
pub struct WitnessRelay {
    host: DirectHost,
    state: Arc<HealthyMutex<RelayState>>,
}

impl WitnessRelay {
    /// Spawns a relay for a deployment whose per-domain checkpoint keys
    /// are `keys` (index = domain). The relay starts with no cosigned
    /// head; [`WitnessRelay::install`] publishes one.
    pub fn spawn(keys: Vec<VerifyingKey>) -> std::io::Result<Self> {
        let state = Arc::new(HealthyMutex::new(RelayState {
            cosigned: None,
            node: GossipNode::new(keys),
        }));
        let shared = Arc::clone(&state);
        let host = DirectHost::spawn(move |request: Vec<u8>| handle(&shared, &request).to_wire())?;
        Ok(Self { host, state })
    }

    /// Address thin clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.host.addr()
    }

    /// Publishes a fresh cosigned head vector. The relay does not verify
    /// it — it cannot, without knowing which quorum key each client
    /// trusts — and does not need to: clients verify on receipt.
    pub fn install(&self, cosigned: CosignedHeads) {
        self.state.lock_healthy().cosigned = Some(cosigned);
    }

    /// Feeds an envelope into the relay's gossip node directly (the
    /// local path an operator-side auditor uses; remote peers use
    /// [`Request::Gossip`]).
    pub fn ingest(&self, envelope: &GossipEnvelope) {
        self.state.lock_healthy().node.ingest(envelope);
    }

    /// Domains the relay holds verified equivocation evidence against.
    pub fn convicted_domains(&self) -> Vec<u32> {
        self.state.lock_healthy().node.convicted_domains()
    }

    /// Stops serving. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.host.shutdown();
    }
}

/// One relay request, decoded, dispatched, answered.
fn handle(state: &HealthyMutex<RelayState>, request: &[u8]) -> Response {
    let request = match Request::from_wire(request) {
        Ok(request) => request,
        Err(e) => return Response::Error(format!("malformed request: {e}")),
    };
    // One lock acquisition for the whole dispatch: requests are short
    // and taking the guard once keeps the lock discipline trivial.
    let mut state = state.lock_healthy();
    match request {
        Request::WitnessHead => Response::WitnessHead {
            cosigned: state.cosigned.clone(),
        },
        Request::Gossip { envelope } => {
            state.node.ingest(&envelope);
            Response::Gossip {
                envelope: state.node.envelope(),
            }
        }
        other => Response::Error(format!(
            "relay serves only gossip and witness-head requests, got {other:?}"
        )),
    }
}

/// Fetches the relay's current cosigned head vector over one exchange.
/// `Ok(None)` means the relay is up but has no head installed yet.
pub fn fetch_witness_head(addr: SocketAddr) -> Result<Option<CosignedHeads>, ClientError> {
    let response = exchange(addr, &Request::WitnessHead)?;
    match response {
        Response::WitnessHead { cosigned } => Ok(cosigned),
        Response::Error(e) => Err(ClientError::App(e)),
        other => Err(ClientError::Unexpected(format!(
            "expected WitnessHead response, got {other:?}"
        ))),
    }
}

/// One gossip exchange with a relay (or any gossip-capable peer): offers
/// `envelope`, returns whatever the peer knows. The caller verifies the
/// reply's contents against its own pinned keys before acting on them.
pub fn exchange_gossip(
    addr: SocketAddr,
    envelope: &GossipEnvelope,
) -> Result<GossipEnvelope, ClientError> {
    let response = exchange(
        addr,
        &Request::Gossip {
            envelope: envelope.clone(),
        },
    )?;
    match response {
        Response::Gossip { envelope } => Ok(envelope),
        Response::Error(e) => Err(ClientError::App(e)),
        other => Err(ClientError::Unexpected(format!(
            "expected Gossip response, got {other:?}"
        ))),
    }
}

fn exchange(addr: SocketAddr, request: &Request) -> Result<Response, ClientError> {
    let mut client = EnclaveClient::connect(addr).map_err(ClientError::Io)?;
    let raw = client
        .exchange(&request.to_wire())
        .map_err(ClientError::Io)?;
    Response::from_wire(&raw).map_err(ClientError::Decode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrust_crypto::drbg::HmacDrbg;
    use distrust_crypto::schnorr::SigningKey;
    use distrust_crypto::threshold;
    use distrust_gossip::envelope::GossipHead;
    use distrust_gossip::witness::cosign_signing_bytes;
    use distrust_log::checkpoint::{log_id, CheckpointBody, SignedCheckpoint};

    fn domain_key(domain: u32) -> SigningKey {
        SigningKey::derive(b"relay-tests", &domain.to_le_bytes())
    }

    fn checkpoint(domain: u32, head: u8, size: u64) -> SignedCheckpoint {
        SignedCheckpoint::sign(
            CheckpointBody {
                log_id: log_id(b"relay-tests", domain),
                size,
                head: [head; 32],
                logical_time: size,
            },
            &domain_key(domain),
        )
    }

    fn spawn_relay(domains: u32) -> WitnessRelay {
        let keys = (0..domains)
            .map(|d| domain_key(d).verifying_key())
            .collect();
        WitnessRelay::spawn(keys).unwrap()
    }

    #[test]
    fn serves_installed_cosigned_head() {
        let mut relay = spawn_relay(2);
        assert_eq!(fetch_witness_head(relay.addr()).unwrap(), None);

        let mut rng = HmacDrbg::new(b"relay-tests", b"quorum");
        let keys = threshold::generate(1, 1, &mut rng).unwrap();
        let heads = vec![checkpoint(0, 0x11, 1).body, checkpoint(1, 0x22, 2).body];
        let partial = threshold::partial_sign(&keys.shares[0], &cosign_signing_bytes(&heads));
        let cosigned = CosignedHeads {
            heads,
            signature: partial.value,
        };
        relay.install(cosigned.clone());

        let fetched = fetch_witness_head(relay.addr()).unwrap().unwrap();
        assert_eq!(fetched, cosigned);
        assert!(fetched.verify(&keys.public_key));
        relay.shutdown();
    }

    #[test]
    fn gossip_exchange_spreads_heads() {
        let mut relay = spawn_relay(2);
        let offer = GossipEnvelope {
            heads: vec![GossipHead {
                domain: 1,
                checkpoint: checkpoint(1, 0x33, 5),
            }],
            evidence: Vec::new(),
        };
        // The relay merges the offer first, so even the offering exchange
        // sees its own head reflected in the reply.
        let reply = exchange_gossip(relay.addr(), &offer).unwrap();
        assert_eq!(reply.heads.len(), 1);
        // A later empty exchange still sees the head the first delivered.
        let reply = exchange_gossip(relay.addr(), &GossipEnvelope::empty()).unwrap();
        assert_eq!(reply.heads.len(), 1);
        assert_eq!(reply.heads[0].domain, 1);
        relay.shutdown();
    }

    #[test]
    fn refuses_non_gossip_requests_and_garbage() {
        let mut relay = spawn_relay(1);
        let mut client = EnclaveClient::connect(relay.addr()).unwrap();
        let raw = client
            .exchange(&Request::Attest { nonce: [0u8; 32] }.to_wire())
            .unwrap();
        assert!(matches!(
            Response::from_wire(&raw).unwrap(),
            Response::Error(_)
        ));
        let raw = client.exchange(&[0xff, 0xee]).unwrap();
        match Response::from_wire(&raw).unwrap() {
            Response::Error(e) => assert!(e.starts_with("malformed request")),
            other => panic!("expected error, got {other:?}"),
        }
        relay.shutdown();
    }
}
