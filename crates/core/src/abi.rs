//! The framework ↔ application ABI.
//!
//! The framework is application-independent (§4.1): it runs *any* module
//! that speaks this calling convention, the moral equivalent of the
//! Wasm-module interface the paper's prototype uses under Node.js.
//!
//! Convention:
//! * The framework writes the request payload into guest memory at
//!   [`INBOX_ADDR`] (at most [`INBOX_MAX`] bytes).
//! * It invokes the exported function `handle` with
//!   `(method_id, INBOX_ADDR, payload_len)`.
//! * The guest writes its response at [`OUTBOX_ADDR`] and returns the
//!   response length (at most [`OUTBOX_MAX`]).
//! * Host imports are resolved **by name** against the [`AppHost`] the
//!   trust domain was configured with; unknown imports fail at
//!   instantiation, not at call time.

use distrust_sandbox::vm::{Host, Memory};
use distrust_sandbox::{Instance, Module};

/// Guest address where request payloads are written.
pub const INBOX_ADDR: u64 = 4096;
/// Maximum request payload.
pub const INBOX_MAX: usize = 16 * 1024;
/// Guest address where the guest writes responses.
pub const OUTBOX_ADDR: u64 = 20480;
/// Maximum response payload.
pub const OUTBOX_MAX: usize = 16 * 1024;
/// The export every application must provide.
pub const HANDLE_EXPORT: &str = "handle";

/// Host functions an application may import, dispatched by name.
///
/// Implementations are per-trust-domain (they may close over the enclave's
/// sealed state, e.g. a threshold key share).
pub trait AppHost: Send + 'static {
    /// Invokes the import `name` with `args`; may read/write guest memory.
    fn call(&mut self, name: &str, args: &[u64], memory: &mut Memory) -> Result<Vec<u64>, String>;
}

/// An [`AppHost`] with no imports.
pub struct NoImports;

impl AppHost for NoImports {
    fn call(
        &mut self,
        name: &str,
        _args: &[u64],
        _memory: &mut Memory,
    ) -> Result<Vec<u64>, String> {
        Err(format!(
            "application imported unknown host function {name:?}"
        ))
    }
}

/// Adapts an [`AppHost`] (name-addressed) to the sandbox [`Host`]
/// (index-addressed) using the module's import table.
pub struct HostAdapter<'a> {
    import_names: &'a [String],
    app_host: &'a mut dyn AppHost,
}

impl<'a> HostAdapter<'a> {
    /// Builds the adapter from a module's import table.
    pub fn new(import_names: &'a [String], app_host: &'a mut dyn AppHost) -> Self {
        Self {
            import_names,
            app_host,
        }
    }
}

impl Host for HostAdapter<'_> {
    fn call(&mut self, index: u16, args: &[u64], memory: &mut Memory) -> Result<Vec<u64>, String> {
        let name = self
            .import_names
            .get(index as usize)
            .ok_or_else(|| format!("import index {index} out of range"))?;
        self.app_host.call(name, args, memory)
    }
}

/// Extracts the import names of a module (cached by the framework when the
/// app is instantiated).
pub fn import_names(module: &Module) -> Vec<String> {
    module.imports.iter().map(|i| i.name.clone()).collect()
}

/// Errors from an application call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppCallError {
    /// Request exceeded [`INBOX_MAX`].
    RequestTooLarge(usize),
    /// The module lacks the `handle` export or it trapped.
    Trap(String),
    /// The guest returned a response length beyond [`OUTBOX_MAX`].
    ResponseTooLarge(u64),
    /// The guest returned no value.
    NoResponse,
}

impl core::fmt::Display for AppCallError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::RequestTooLarge(n) => write!(f, "request of {n} bytes exceeds inbox"),
            Self::Trap(t) => write!(f, "application trapped: {t}"),
            Self::ResponseTooLarge(n) => write!(f, "response of {n} bytes exceeds outbox"),
            Self::NoResponse => write!(f, "application returned no value"),
        }
    }
}

impl std::error::Error for AppCallError {}

/// Performs one application call following the ABI.
pub fn app_call(
    instance: &mut Instance,
    import_names: &[String],
    app_host: &mut dyn AppHost,
    method_id: u64,
    payload: &[u8],
) -> Result<Vec<u8>, AppCallError> {
    if payload.len() > INBOX_MAX {
        return Err(AppCallError::RequestTooLarge(payload.len()));
    }
    instance
        .memory
        .write(INBOX_ADDR, payload)
        .map_err(|t| AppCallError::Trap(t.to_string()))?;
    let mut host = HostAdapter::new(import_names, app_host);
    let ret = instance
        .invoke(
            HANDLE_EXPORT,
            &[method_id, INBOX_ADDR, payload.len() as u64],
            &mut host,
        )
        .map_err(|t| AppCallError::Trap(t.to_string()))?;
    let out_len = ret.ok_or(AppCallError::NoResponse)?;
    if out_len as usize > OUTBOX_MAX {
        return Err(AppCallError::ResponseTooLarge(out_len));
    }
    let bytes = instance
        .memory
        .read(OUTBOX_ADDR, out_len)
        .map_err(|t| AppCallError::Trap(t.to_string()))?;
    Ok(bytes.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrust_sandbox::{FuncBuilder, Instr, Limits, ModuleBuilder};

    /// An echo app: copies the inbox to the outbox.
    fn echo_module() -> Module {
        let mut mb = ModuleBuilder::new(1, 1);
        // handle(method, addr, len) -> len ; copy byte-by-byte
        let mut f = FuncBuilder::new(3, 1, 1);
        // local 3 = i
        f.constant(0).lset(3);
        f.label("loop")
            .lget(3)
            .lget(2)
            .op(Instr::GeU)
            .jnz("done")
            // outbox[i] = inbox[addr + i]
            .constant(OUTBOX_ADDR)
            .lget(3)
            .add()
            .lget(1)
            .lget(3)
            .add()
            .load8(0)
            .store8(0)
            .lget(3)
            .constant(1)
            .add()
            .lset(3)
            .jmp("loop")
            .label("done")
            .lget(2)
            .ret();
        let idx = mb.function(f.build().unwrap());
        mb.export(HANDLE_EXPORT, idx);
        mb.build()
    }

    /// An app that calls a host import and returns its result as one byte.
    fn hostcall_module() -> Module {
        let mut mb = ModuleBuilder::new(1, 1);
        let imp = mb.import("env.magic", 1, 1);
        let mut f = FuncBuilder::new(3, 0, 1);
        f.lget(0) // method id
            .host(imp)
            .constant(OUTBOX_ADDR)
            .op(Instr::Swap)
            .store8(0)
            .constant(1)
            .ret();
        let idx = mb.function(f.build().unwrap());
        mb.export(HANDLE_EXPORT, idx);
        mb.build()
    }

    #[test]
    fn echo_round_trip() {
        let module = echo_module();
        let names = import_names(&module);
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        let mut host = NoImports;
        let out = app_call(&mut inst, &names, &mut host, 0, b"hello app").unwrap();
        assert_eq!(out, b"hello app");
        // Empty payload.
        let out = app_call(&mut inst, &names, &mut host, 0, b"").unwrap();
        assert_eq!(out, b"");
    }

    #[test]
    fn oversized_request_rejected() {
        let module = echo_module();
        let names = import_names(&module);
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        let big = vec![0u8; INBOX_MAX + 1];
        assert!(matches!(
            app_call(&mut inst, &names, &mut NoImports, 0, &big),
            Err(AppCallError::RequestTooLarge(_))
        ));
    }

    #[test]
    fn host_dispatch_by_name() {
        struct Magic;
        impl AppHost for Magic {
            fn call(
                &mut self,
                name: &str,
                args: &[u64],
                _m: &mut Memory,
            ) -> Result<Vec<u64>, String> {
                assert_eq!(name, "env.magic");
                Ok(vec![args[0] * 2])
            }
        }
        let module = hostcall_module();
        let names = import_names(&module);
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        let out = app_call(&mut inst, &names, &mut Magic, 21, b"").unwrap();
        assert_eq!(out, vec![42u8]);
    }

    #[test]
    fn missing_handle_export_is_trap() {
        let mut mb = ModuleBuilder::new(1, 1);
        let mut f = FuncBuilder::new(0, 0, 0);
        f.ret();
        let idx = mb.function(f.build().unwrap());
        mb.export("not_handle", idx);
        let module = mb.build();
        let names = import_names(&module);
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        assert!(matches!(
            app_call(&mut inst, &names, &mut NoImports, 0, b""),
            Err(AppCallError::Trap(_))
        ));
    }

    #[test]
    fn lying_response_length_rejected() {
        // handle returns an absurd outbox length.
        let mut mb = ModuleBuilder::new(1, 1);
        let mut f = FuncBuilder::new(3, 0, 1);
        f.constant(u64::MAX / 2).ret();
        let idx = mb.function(f.build().unwrap());
        mb.export(HANDLE_EXPORT, idx);
        let module = mb.build();
        let names = import_names(&module);
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        assert!(matches!(
            app_call(&mut inst, &names, &mut NoImports, 0, b""),
            Err(AppCallError::ResponseTooLarge(_))
        ));
    }
}
