//! # distrust-core
//!
//! The `distrust` framework — a Rust reproduction of the system proposed in
//! *Reflections on trusting distributed trust* (HotNets '22): publicly
//! auditable bootstrapping of distributed-trust deployments from two
//! application-independent building blocks, secure hardware and an
//! append-only log.
//!
//! ## The design in one paragraph
//!
//! A developer seals an application-independent framework (plus her update
//! public key) into a TEE in each of `n` trust domains; trust domain 0 is
//! her own machine with no secure hardware. The framework accepts
//! developer-signed application releases, runs them inside a sandbox they
//! cannot escape, appends every activated code digest to an append-only
//! log, and makes update notices available before new code serves its
//! first request. Clients audit by challenging each domain for an
//! attestation quote that binds a fresh nonce, the running app digest, and
//! the log head; verifying signed log checkpoints and consistency proofs;
//! and cross-checking digest histories across all domains. If at least `t`
//! domains run the published code honestly, the application's
//! distributed-trust guarantees hold; any divergence is detected and —
//! for equivocation — yields a transferable cryptographic proof.
//!
//! ## Crate map
//!
//! * [`manifest`] — developer-signed releases.
//! * [`abi`] — the framework ↔ application calling convention.
//! * [`protocol`] — client ↔ trust-domain messages.
//! * [`framework`] — the application-independent framework (§4.1).
//! * [`server`] — direct hosting for trust domain 0.
//! * [`client`] — the client/auditor library (§3.3 guarantees).
//! * [`session`] — trust-gated, pipelined multi-domain fan-out sessions.
//! * [`deploy`] — one-call bootstrap of a full deployment.

pub mod abi;
pub mod client;
pub mod deploy;
pub mod framework;
pub mod manifest;
pub mod protocol;
pub mod server;
pub mod session;
pub mod witness;

pub use abi::{app_call, AppCallError, AppHost, NoImports};
pub use client::{AuditReport, ClientError, DeploymentClient, DeploymentDescriptor, DomainInfo};
pub use deploy::{AppSpec, DeployError, Deployment};
pub use framework::{framework_measurement, EnclaveFramework, FrameworkConfig, FrameworkService};
pub use manifest::{ReleaseError, ReleaseManifest, SignedRelease};
pub use protocol::{DomainStatus, Request, Response, UpdateNotice};
pub use server::DirectHost;
pub use session::{
    DomainOutcome, FanoutCall, FanoutPayloads, FanoutReport, QuorumPolicy, Session, TrustPolicy,
    WitnessedTrust,
};
pub use witness::WitnessRelay;
