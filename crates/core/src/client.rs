//! The client/auditor library — the paper's user-side guarantee (§3.3):
//! "For each of the n trust domains, the client can obtain a digest of the
//! code that is currently running and a history of digests corresponding
//! to code that ran previously. The client can check that the digests
//! match across all n trust domains."

use crate::framework::framework_measurement;
use crate::protocol::{AttestationBinding, DomainStatus, Request, Response, UpdateNotice};
use distrust_crypto::schnorr::VerifyingKey;
use distrust_crypto::sha256::Digest;
use distrust_log::auditor::{AuditOutcome, Auditor, Misbehavior};
use distrust_tee::host::EnclaveClient;
use distrust_tee::vendor::{VendorKind, VendorRoots};
use distrust_wire::codec::{Decode, Encode};
use rand::RngCore;
use std::net::SocketAddr;

/// What a client needs to know about one trust domain.
#[derive(Clone, Debug)]
pub struct DomainInfo {
    /// Domain index (0 = the developer's unattested domain).
    pub index: u32,
    /// Where to connect.
    pub addr: SocketAddr,
    /// Expected secure-hardware vendor; `None` for trust domain 0.
    pub vendor: Option<VendorKind>,
    /// Pinned checkpoint-signing key.
    pub checkpoint_key: VerifyingKey,
}

/// Everything a client needs to audit and use a deployment. Distributed
/// out of band (the paper's open-source publication channel).
#[derive(Clone, Debug)]
pub struct DeploymentDescriptor {
    /// Application name.
    pub app_name: String,
    /// Developer's release-signing public key.
    pub developer_key: VerifyingKey,
    /// Pinned vendor attestation roots.
    pub vendor_roots: VendorRoots,
    /// The trust domains, index-ordered (0 first).
    pub domains: Vec<DomainInfo>,
}

impl DeploymentDescriptor {
    /// The framework measurement every TEE-backed domain must attest.
    pub fn expected_measurement(&self) -> Digest {
        framework_measurement(&self.developer_key, &self.app_name)
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Could not decode the response.
    Decode(distrust_wire::DecodeError),
    /// The domain answered, but not with the expected variant.
    Unexpected(String),
    /// The domain reported an application error.
    App(String),
    /// The domain rejected an update.
    UpdateRejected(String),
    /// Unknown domain index.
    NoSuchDomain(u32),
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Decode(e) => write!(f, "decode error: {e}"),
            Self::Unexpected(what) => write!(f, "unexpected response: {what}"),
            Self::App(e) => write!(f, "application error: {e}"),
            Self::UpdateRejected(e) => write!(f, "update rejected: {e}"),
            Self::NoSuchDomain(i) => write!(f, "no such domain {i}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Per-domain audit result.
#[derive(Debug)]
pub struct DomainAudit {
    /// Domain index.
    pub index: u32,
    /// `true` when a TEE quote verified end-to-end; trust domain 0 is
    /// always `false` (it has no hardware to verify).
    pub attested: bool,
    /// The (possibly attested) status snapshot.
    pub status: Option<DomainStatus>,
    /// Why the audit of this domain failed, if it did.
    pub failure: Option<String>,
}

/// The outcome of one full audit round.
#[derive(Debug)]
pub struct AuditReport {
    /// Per-domain details, index-ordered.
    pub domains: Vec<DomainAudit>,
    /// All domains report the same running app digest.
    pub digests_agree: bool,
    /// Evidence of log misbehavior collected this round.
    pub misbehavior: Vec<Misbehavior>,
    /// The agreed app digest (when `digests_agree`).
    pub app_digest: Option<Digest>,
}

impl AuditReport {
    /// The paper's acceptance criterion: every domain passed its per-domain
    /// checks, all digests agree, and no misbehavior evidence was found.
    pub fn is_clean(&self) -> bool {
        self.domains
            .iter()
            .all(|d| d.failure.is_none() && d.status.is_some())
            && self.digests_agree
            && self.misbehavior.is_empty()
    }
}

/// A stateful client for one deployment: connects to all domains, audits,
/// calls the application, and pushes updates (when it is the developer).
pub struct DeploymentClient {
    descriptor: DeploymentDescriptor,
    connections: Vec<Option<EnclaveClient>>,
    auditor: Auditor,
    rng: Box<dyn RngCore + Send>,
}

impl DeploymentClient {
    /// Creates a client; connections are opened lazily.
    pub fn new(descriptor: DeploymentDescriptor, rng: Box<dyn RngCore + Send>) -> Self {
        let auditor = Auditor::new(
            descriptor
                .domains
                .iter()
                .map(|d| d.checkpoint_key)
                .collect(),
        );
        let n = descriptor.domains.len();
        Self {
            descriptor,
            connections: (0..n).map(|_| None).collect(),
            auditor,
            rng,
        }
    }

    /// The deployment descriptor.
    pub fn descriptor(&self) -> &DeploymentDescriptor {
        &self.descriptor
    }

    /// Sends one request to one domain.
    pub fn exchange(&mut self, domain: u32, request: &Request) -> Result<Response, ClientError> {
        let idx = domain as usize;
        let info = self
            .descriptor
            .domains
            .get(idx)
            .ok_or(ClientError::NoSuchDomain(domain))?
            .clone();
        if self.connections[idx].is_none() {
            self.connections[idx] = Some(EnclaveClient::connect(info.addr)?);
        }
        let conn = self.connections[idx].as_mut().expect("just connected");
        let bytes = match conn.exchange(&request.to_wire()) {
            Ok(b) => b,
            Err(e) => {
                // Drop the broken connection so the next call reconnects.
                self.connections[idx] = None;
                return Err(ClientError::Io(e));
            }
        };
        Response::from_wire(&bytes).map_err(ClientError::Decode)
    }

    /// Calls the application on one domain.
    pub fn call(
        &mut self,
        domain: u32,
        method: u64,
        payload: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        match self.exchange(
            domain,
            &Request::AppCall {
                method,
                payload: payload.to_vec(),
            },
        )? {
            Response::AppResult { payload } => Ok(payload),
            Response::AppError(e) => Err(ClientError::App(e)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Pushes a signed release to every domain (the developer's update
    /// flow, Figure 2 left). Returns per-domain results.
    pub fn push_update(
        &mut self,
        release: &crate::manifest::SignedRelease,
    ) -> Vec<Result<(u64, Digest), ClientError>> {
        (0..self.descriptor.domains.len() as u32)
            .map(|d| {
                match self.exchange(
                    d,
                    &Request::Update {
                        release: release.clone(),
                    },
                )? {
                    Response::UpdateAck { log_size, digest } => Ok((log_size, digest)),
                    Response::UpdateRejected(e) => Err(ClientError::UpdateRejected(e)),
                    other => Err(ClientError::Unexpected(format!("{other:?}"))),
                }
            })
            .collect()
    }

    /// Fetches update notices from a domain.
    pub fn notices(&mut self, domain: u32, since: u64) -> Result<Vec<UpdateNotice>, ClientError> {
        match self.exchange(domain, &Request::GetNotices { since })? {
            Response::Notices(n) => Ok(n),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches raw log leaves from a domain.
    pub fn log_entries(&mut self, domain: u32, from: u64) -> Result<Vec<Vec<u8>>, ClientError> {
        match self.exchange(domain, &Request::GetLogEntries { from })? {
            Response::LogEntries(entries) => Ok(entries),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Exports this client's latest verified checkpoints for gossiping to
    /// other clients (split-view detection, CT-style).
    pub fn gossip_payload(&self) -> Vec<(u32, distrust_log::SignedCheckpoint)> {
        self.auditor.gossip_payload()
    }

    /// Ingests checkpoints relayed by another client. Returns any
    /// misbehavior evidence discovered — in particular, an
    /// [`distrust_log::Misbehavior::Equivocation`] when a domain showed
    /// this client and the peer conflicting histories.
    pub fn ingest_gossip(
        &mut self,
        payload: &[(u32, distrust_log::SignedCheckpoint)],
    ) -> Vec<Misbehavior> {
        let mut found = Vec::new();
        for (domain, cp) in payload {
            if let AuditOutcome::Misbehavior(m) = self.auditor.ingest_gossip(*domain, cp.clone()) {
                found.push(*m);
            }
        }
        found
    }

    /// Performs a full audit round across all domains:
    ///
    /// 1. challenge each domain with a fresh nonce; verify TEE quotes
    ///    end-to-end (cert chain → vendor root, evidence, measurement,
    ///    nonce echo);
    /// 2. fetch a signed checkpoint from each domain and require it to
    ///    match the attested log head, plus a consistency proof against
    ///    the previously verified checkpoint;
    /// 3. cross-check digest histories across all domains.
    ///
    /// `expected_app` pins the digest of the published code, when the
    /// client has computed it from source (§3.3's "the developer
    /// open-sources her code").
    pub fn audit(&mut self, expected_app: Option<&Digest>) -> AuditReport {
        let expected_measurement = self.descriptor.expected_measurement();
        let n = self.descriptor.domains.len() as u32;
        let mut domains = Vec::with_capacity(n as usize);
        let mut misbehavior = Vec::new();

        for d in 0..n {
            let info = self.descriptor.domains[d as usize].clone();
            let mut audit = DomainAudit {
                index: d,
                attested: false,
                status: None,
                failure: None,
            };
            let mut nonce = [0u8; 32];
            self.rng.fill_bytes(&mut nonce);

            // Step 1: attestation challenge.
            match self.exchange(d, &Request::Attest { nonce }) {
                Ok(Response::Quote(quote)) => {
                    if info.vendor.is_none() {
                        audit.failure = Some("domain 0 unexpectedly returned a quote".to_string());
                    } else if info.vendor != Some(quote.document.vendor) {
                        audit.failure = Some(format!(
                            "vendor mismatch: pinned {:?}, quoted {:?}",
                            info.vendor, quote.document.vendor
                        ));
                    } else if let Err(e) = quote.verify(
                        &self.descriptor.vendor_roots,
                        Some(&expected_measurement),
                        None,
                    ) {
                        audit.failure = Some(format!("quote verification failed: {e}"));
                    } else {
                        match AttestationBinding::from_wire(&quote.document.user_data) {
                            Ok(binding) if binding.nonce == nonce => {
                                audit.attested = true;
                                audit.status = Some(binding.status);
                            }
                            Ok(_) => {
                                audit.failure = Some("stale quote: nonce mismatch".to_string());
                            }
                            Err(e) => {
                                audit.failure = Some(format!("malformed attestation binding: {e}"));
                            }
                        }
                    }
                }
                Ok(Response::Unattested(status)) => {
                    if info.vendor.is_some() {
                        audit.failure = Some("TEE-backed domain refused to attest".to_string());
                    } else {
                        audit.status = Some(status);
                    }
                }
                Ok(other) => {
                    audit.failure = Some(format!("unexpected attest response: {other:?}"));
                }
                Err(e) => {
                    audit.failure = Some(format!("attest failed: {e}"));
                }
            }

            // Step 2: checkpoint + consistency.
            if let Some(status) = audit.status.clone() {
                match self.exchange(d, &Request::GetCheckpoint) {
                    Ok(Response::Checkpoint(cp)) => {
                        // Feed the auditor first: a correctly signed
                        // checkpoint is evidence regardless of whether it
                        // matches the claimed status — this is what turns
                        // equivocation into a transferable proof.
                        let prior = self.auditor.latest(d).cloned();
                        let proof = match prior {
                            Some(p) if p.body.size < cp.body.size => {
                                match self.exchange(
                                    d,
                                    &Request::GetConsistency {
                                        old_size: p.body.size,
                                    },
                                ) {
                                    Ok(Response::Consistency(proof)) => Some(proof),
                                    _ => None,
                                }
                            }
                            _ => None,
                        };
                        let matches_status =
                            cp.body.size == status.log_size && cp.body.head == status.log_head;
                        match self.auditor.observe(d, cp, proof.as_ref()) {
                            AuditOutcome::Consistent => {
                                if !matches_status {
                                    audit.failure = Some(
                                        "checkpoint disagrees with attested status".to_string(),
                                    );
                                }
                            }
                            AuditOutcome::Misbehavior(m) => {
                                audit.failure = Some(format!("log misbehavior: {m:?}"));
                                misbehavior.push(*m);
                            }
                        }
                    }
                    Ok(other) => {
                        audit.failure = Some(format!("unexpected checkpoint response: {other:?}"));
                    }
                    Err(e) => {
                        audit.failure = Some(format!("checkpoint fetch failed: {e}"));
                    }
                }
            }
            domains.push(audit);
        }

        // Step 3: cross-domain digest comparison.
        if let AuditOutcome::Misbehavior(m) = self.auditor.cross_check() {
            misbehavior.push(*m);
        }
        let digests: Vec<Digest> = domains
            .iter()
            .filter_map(|d| d.status.as_ref().map(|s| s.app_digest))
            .collect();
        let mut digests_agree =
            digests.len() == domains.len() && distrust_log::digests_match(&digests);
        if let (true, Some(expected)) = (digests_agree, expected_app) {
            if digests.first() != Some(expected) {
                digests_agree = false;
            }
        }
        let app_digest = if digests_agree {
            digests.first().copied()
        } else {
            None
        };

        AuditReport {
            domains,
            digests_agree,
            misbehavior,
            app_digest,
        }
    }
}
