//! The client/auditor library — the paper's user-side guarantee (§3.3):
//! "For each of the n trust domains, the client can obtain a digest of the
//! code that is currently running and a history of digests corresponding
//! to code that ran previously. The client can check that the digests
//! match across all n trust domains."

use crate::framework::framework_measurement;
use crate::protocol::{
    AttestationBinding, AuditBundle, BundleAttestation, DomainStatus, Request, Response,
    ShardAuditBundle, UpdateNotice,
};
use distrust_crypto::schnorr::VerifyingKey;
use distrust_crypto::sha256::Digest;
use distrust_gossip::envelope::{GossipEnvelope, GossipHead};
use distrust_gossip::evidence::{EvidenceBundle, EvidencePool};
use distrust_log::auditor::{AuditOutcome, Auditor, Misbehavior};
use distrust_tee::vendor::{VendorKind, VendorRoots};
use distrust_wire::codec::{Decode, Encode};
use distrust_wire::pipeline::PipelinedClient;
use distrust_wire::transport::TcpTransport;
use rand::RngCore;
use std::net::SocketAddr;

/// A connection carrying more abandoned-but-undrained responses than this
/// is reset instead of reused: the straggling server behind it owes so
/// many answers that a fresh connection is cheaper than draining them.
const MAX_ABANDONED_PER_CONN: u64 = 32;

/// What a client needs to know about one trust domain.
#[derive(Clone, Debug)]
pub struct DomainInfo {
    /// Domain index (0 = the developer's unattested domain).
    pub index: u32,
    /// Where to connect.
    pub addr: SocketAddr,
    /// Expected secure-hardware vendor; `None` for trust domain 0.
    pub vendor: Option<VendorKind>,
    /// Pinned checkpoint-signing key.
    pub checkpoint_key: VerifyingKey,
}

/// Everything a client needs to audit and use a deployment. Distributed
/// out of band (the paper's open-source publication channel).
#[derive(Clone, Debug)]
pub struct DeploymentDescriptor {
    /// Application name.
    pub app_name: String,
    /// Developer's release-signing public key.
    pub developer_key: VerifyingKey,
    /// Pinned vendor attestation roots.
    pub vendor_roots: VendorRoots,
    /// The trust domains, index-ordered (0 first).
    pub domains: Vec<DomainInfo>,
}

impl DeploymentDescriptor {
    /// The framework measurement every TEE-backed domain must attest.
    pub fn expected_measurement(&self) -> Digest {
        framework_measurement(&self.developer_key, &self.app_name)
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (typically: the domain could not be reached at
    /// all — connect refused, no route).
    Io(std::io::Error),
    /// An *established* pipelined connection to the domain was lost
    /// (disconnect, framing violation). Distinct from [`Self::App`]: the
    /// domain did not answer this request, and any other requests that
    /// were in flight on the same connection are gone with it. The client
    /// reconnects on the next use.
    ConnectionLost(distrust_wire::TransportError),
    /// Could not decode the response.
    Decode(distrust_wire::DecodeError),
    /// The domain answered, but not with the expected variant.
    Unexpected(String),
    /// The domain reported an application error.
    App(String),
    /// The domain rejected an update.
    UpdateRejected(String),
    /// Unknown domain index.
    NoSuchDomain(u32),
    /// The session's trust policy refuses this domain (it failed the most
    /// recent audit, or never passed one).
    Untrusted {
        /// The refused domain.
        domain: u32,
        /// Why the trust policy refuses it.
        reason: String,
    },
    /// The trust-gating audit failed outright: no usable domain survived
    /// it, or misbehavior evidence was collected. App calls are refused
    /// until an audit passes.
    AuditFailed(String),
    /// A fan-out finished without satisfying its quorum policy.
    QuorumNotMet {
        /// Domains that satisfied the policy's success criterion.
        satisfied: usize,
        /// Domains the policy required.
        required: usize,
    },
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::ConnectionLost(e) => write!(f, "connection lost: {e}"),
            Self::Decode(e) => write!(f, "decode error: {e}"),
            Self::Unexpected(what) => write!(f, "unexpected response: {what}"),
            Self::App(e) => write!(f, "application error: {e}"),
            Self::UpdateRejected(e) => write!(f, "update rejected: {e}"),
            Self::NoSuchDomain(i) => write!(f, "no such domain {i}"),
            Self::Untrusted { domain, reason } => {
                write!(f, "domain {domain} refused by trust policy: {reason}")
            }
            Self::AuditFailed(why) => write!(f, "trust-gating audit failed: {why}"),
            Self::QuorumNotMet {
                satisfied,
                required,
            } => write!(
                f,
                "quorum not met: {satisfied} of {required} required domains answered"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<distrust_wire::TransportError> for ClientError {
    fn from(e: distrust_wire::TransportError) -> Self {
        Self::ConnectionLost(e)
    }
}

/// Per-domain audit result.
#[derive(Debug)]
pub struct DomainAudit {
    /// Domain index.
    pub index: u32,
    /// `true` when a TEE quote verified end-to-end; trust domain 0 is
    /// always `false` (it has no hardware to verify).
    pub attested: bool,
    /// The (possibly attested) status snapshot.
    pub status: Option<DomainStatus>,
    /// Why the audit of this domain failed, if it did.
    pub failure: Option<String>,
    /// `true` when this domain answered the single-round-trip
    /// [`Request::BatchAudit`]; `false` when the client fell back to the
    /// legacy per-step sequence.
    pub batched: bool,
}

/// How the client's audits have been served, cumulatively: domains that
/// answered the batched single-round-trip request vs. domains that forced
/// the legacy per-step fallback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditStats {
    /// Domain audits completed through [`Request::BatchAudit`].
    pub batched_domains: u64,
    /// Domain audits that fell back to the per-step path.
    pub fallback_domains: u64,
}

/// What one domain answered a pipelined `BatchAudit` with.
enum BatchAuditAnswer {
    /// The legacy single-tree bundle (1-shard logs; byte-compatible with
    /// pre-shard servers).
    Legacy(Box<AuditBundle>),
    /// The sharded bundle (multi-shard logs).
    Sharded(Box<ShardAuditBundle>),
    /// No bundle at all — fall back to the per-step audit.
    Fallback,
}

/// The outcome of one full audit round.
#[derive(Debug)]
pub struct AuditReport {
    /// Per-domain details, index-ordered.
    pub domains: Vec<DomainAudit>,
    /// All domains report the same running app digest.
    pub digests_agree: bool,
    /// Evidence of log misbehavior collected this round.
    pub misbehavior: Vec<Misbehavior>,
    /// The agreed app digest (when `digests_agree`).
    pub app_digest: Option<Digest>,
}

impl AuditReport {
    /// The paper's acceptance criterion: every domain passed its per-domain
    /// checks, all digests agree, and no misbehavior evidence was found.
    pub fn is_clean(&self) -> bool {
        self.domains
            .iter()
            .all(|d| d.failure.is_none() && d.status.is_some())
            && self.digests_agree
            && self.misbehavior.is_empty()
    }
}

/// A stateful client for one deployment: connects to all domains, audits,
/// calls the application, and pushes updates (when it is the developer).
///
/// Audits are batched by default: one pipelined [`Request::BatchAudit`]
/// frame per domain over a persistent connection returns attestation,
/// checkpoints, and a range consistency proof in a single round-trip, and
/// the auditor's verified-prefix cache skips everything it has already
/// checked. Domains that do not understand the batched request (old
/// servers answer it with an error) transparently fall back to the legacy
/// `Attest`/`GetCheckpoint`/`GetConsistency` sequence; [`AuditStats`]
/// records which path served each domain.
pub struct DeploymentClient {
    descriptor: DeploymentDescriptor,
    connections: Vec<Option<PipelinedClient<TcpTransport>>>,
    /// Per-domain: did the server answer `BatchAudit` with a bundle? Set
    /// to `false` on the first fallback so later audits skip the wasted
    /// probe round-trip; reset to `true` whenever a fresh connection is
    /// opened (the server may have been upgraded).
    batch_capable: Vec<bool>,
    /// Per-domain: did the server answer [`Request::Gossip`] with an
    /// envelope? Same probe-once/reset-on-reconnect discipline as
    /// `batch_capable`.
    gossip_capable: Vec<bool>,
    auditor: Auditor,
    /// Transferable misbehavior evidence this client holds — produced by
    /// its own auditor or verified after arriving through gossip. Once a
    /// domain is convicted here, every subsequent audit reports it as
    /// failed: evidence does not expire with the round that found it.
    evidence: EvidencePool,
    rng: Box<dyn RngCore + Send>,
    stats: AuditStats,
}

impl DeploymentClient {
    /// Creates a client; connections are opened lazily.
    pub fn new(descriptor: DeploymentDescriptor, rng: Box<dyn RngCore + Send>) -> Self {
        let auditor = Auditor::new(
            descriptor
                .domains
                .iter()
                .map(|d| d.checkpoint_key)
                .collect(),
        );
        let n = descriptor.domains.len();
        Self {
            descriptor,
            connections: (0..n).map(|_| None).collect(),
            batch_capable: vec![true; n],
            gossip_capable: vec![true; n],
            auditor,
            evidence: EvidencePool::new(),
            rng,
            stats: AuditStats::default(),
        }
    }

    /// The deployment descriptor.
    pub fn descriptor(&self) -> &DeploymentDescriptor {
        &self.descriptor
    }

    /// Cumulative batched-vs-fallback audit accounting.
    pub fn audit_stats(&self) -> AuditStats {
        self.stats
    }

    /// The auditor's verified-prefix cache for one domain: highest
    /// verified (total and per-shard) sizes plus performed/skipped
    /// verification counters — what tests and benches use to prove audit
    /// amortisation is real.
    pub fn auditor_prefix_cache(&self, domain: u32) -> Option<&distrust_log::VerifiedPrefixCache> {
        self.auditor.prefix_cache(domain)
    }

    /// The persistent connection to `domain`, opened on first use.
    fn connection(
        &mut self,
        domain: u32,
    ) -> Result<&mut PipelinedClient<TcpTransport>, ClientError> {
        let idx = domain as usize;
        let info = self
            .descriptor
            .domains
            .get(idx)
            .ok_or(ClientError::NoSuchDomain(domain))?;
        if self.connections[idx].is_none() {
            let transport = TcpTransport::connect(info.addr)?;
            self.connections[idx] = Some(PipelinedClient::new(transport));
            // A fresh connection may be talking to an upgraded server:
            // re-probe the batched audit and gossip once.
            self.batch_capable[idx] = true;
            self.gossip_capable[idx] = true;
        }
        Ok(self.connections[idx].as_mut().expect("just connected"))
    }

    /// Sends one already-encoded request frame to one domain without
    /// waiting for the response — the building block of pipelined fan-out.
    /// On failure the connection is dropped (reopened on next use) and any
    /// responses still in flight on it are lost.
    pub(crate) fn send_raw(&mut self, domain: u32, wire: &[u8]) -> Result<(), ClientError> {
        let idx = domain as usize;
        // A connection drowning in abandoned responses (a repeatedly
        // outpaced straggler) is cheaper to replace than to drain.
        if self.connections.get(idx).is_some_and(|c| {
            c.as_ref()
                .is_some_and(|c| c.abandoned_pending() > MAX_ABANDONED_PER_CONN)
        }) {
            self.connections[idx] = None;
        }
        match self.connection(domain)?.send(wire) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.connections[idx] = None;
                Err(ClientError::ConnectionLost(e))
            }
        }
    }

    /// Receives the next response frame from `domain` (blocking), after
    /// draining any responses the caller previously abandoned.
    pub(crate) fn recv_raw(&mut self, domain: u32) -> Result<Response, ClientError> {
        let idx = domain as usize;
        let conn = self.connections[idx]
            .as_mut()
            .ok_or(ClientError::NoSuchDomain(domain))?;
        match conn.recv_next() {
            Ok(frame) => Response::from_wire(&frame).map_err(ClientError::Decode),
            Err(e) => {
                self.connections[idx] = None;
                Err(ClientError::ConnectionLost(e))
            }
        }
    }

    /// Like [`Self::recv_raw`] but waits at most `timeout`; `Ok(None)`
    /// means no complete response arrived in time (partial bytes are
    /// retained by the transport — nothing desynchronises).
    pub(crate) fn try_recv_raw(
        &mut self,
        domain: u32,
        timeout: std::time::Duration,
    ) -> Result<Option<Response>, ClientError> {
        let idx = domain as usize;
        let conn = self.connections[idx]
            .as_mut()
            .ok_or(ClientError::NoSuchDomain(domain))?;
        match conn.recv_next_timeout(timeout) {
            Ok(Some(frame)) => Response::from_wire(&frame)
                .map(Some)
                .map_err(ClientError::Decode),
            Ok(None) => Ok(None),
            Err(e) => {
                self.connections[idx] = None;
                Err(ClientError::ConnectionLost(e))
            }
        }
    }

    /// Declares that the in-flight response from `domain` will never be
    /// collected (a quorum was satisfied without it); it is discarded when
    /// it eventually arrives, keeping the connection usable.
    pub(crate) fn abandon_response(&mut self, domain: u32) {
        if let Some(conn) = self.connections[domain as usize].as_mut() {
            conn.abandon_next_response();
        }
    }

    /// Sends one request to one domain.
    pub fn exchange(&mut self, domain: u32, request: &Request) -> Result<Response, ClientError> {
        self.send_raw(domain, &request.to_wire())?;
        self.recv_raw(domain)
    }

    /// Calls the application on one domain.
    ///
    /// Thin un-gated shim; prefer [`crate::session::Session`] (via
    /// [`Self::session`]) for application traffic — it audits before the
    /// first call and fans out to all domains in one round-trip.
    pub fn call(
        &mut self,
        domain: u32,
        method: u64,
        payload: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        match self.exchange(
            domain,
            &Request::AppCall {
                method,
                payload: payload.to_vec(),
            },
        )? {
            Response::AppResult { payload } => Ok(payload),
            Response::AppError(e) => Err(ClientError::App(e)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Opens a trust-gated session over this client (see
    /// [`crate::session::Session`]): the policy's audit runs before the
    /// first application call, by construction.
    pub fn session(&mut self, policy: crate::session::TrustPolicy) -> crate::session::Session<'_> {
        crate::session::Session::new(self, policy)
    }

    /// Pushes a signed release to every domain (the developer's update
    /// flow, Figure 2 left). Returns per-domain results.
    ///
    /// The release — module bytes included — is encoded exactly once and
    /// the same frame is fanned out to all `n` domains, every request in
    /// flight before any acknowledgement is read.
    pub fn push_update(
        &mut self,
        release: &crate::manifest::SignedRelease,
    ) -> Vec<Result<(u64, Digest), ClientError>> {
        let wire = Request::encode_update(release);
        let n = self.descriptor.domains.len() as u32;
        let sent: Vec<Result<(), ClientError>> = (0..n).map(|d| self.send_raw(d, &wire)).collect();
        sent.into_iter()
            .enumerate()
            .map(|(d, sent)| {
                sent?;
                match self.recv_raw(d as u32)? {
                    Response::UpdateAck { log_size, digest } => Ok((log_size, digest)),
                    Response::UpdateRejected(e) => Err(ClientError::UpdateRejected(e)),
                    other => Err(ClientError::Unexpected(format!("{other:?}"))),
                }
            })
            .collect()
    }

    /// Fetches update notices from a domain.
    pub fn notices(&mut self, domain: u32, since: u64) -> Result<Vec<UpdateNotice>, ClientError> {
        match self.exchange(domain, &Request::GetNotices { since })? {
            Response::Notices(n) => Ok(n),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches raw log leaves from a domain.
    pub fn log_entries(&mut self, domain: u32, from: u64) -> Result<Vec<Vec<u8>>, ClientError> {
        match self.exchange(domain, &Request::GetLogEntries { from })? {
            Response::LogEntries(entries) => Ok(entries),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches raw log leaves of one **shard** from a domain. Old servers
    /// do not understand the request; for shard 0 the client transparently
    /// falls back to the legacy whole-log fetch (on a 1-shard log the two
    /// are identical), for any other shard the server's error surfaces.
    pub fn shard_entries(
        &mut self,
        domain: u32,
        shard: u32,
        from: u64,
    ) -> Result<Vec<Vec<u8>>, ClientError> {
        match self.exchange(domain, &Request::GetShardEntries { shard, from })? {
            Response::LogEntries(entries) => Ok(entries),
            // An old server cannot decode the request tag and answers the
            // dispatcher's "malformed request" frame; shard 0 of its
            // (necessarily 1-shard) log IS the log. Any *other* error is a
            // real answer from a shard-aware server — an out-of-range
            // shard or offset — and must surface, not be papered over
            // with globally-flattened entries.
            Response::Error(e) if shard == 0 && e.starts_with("malformed request") => {
                self.log_entries(domain, from)
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Exports this client's latest verified checkpoints for gossiping to
    /// other clients (split-view detection, CT-style).
    pub fn gossip_payload(&self) -> Vec<(u32, distrust_log::SignedCheckpoint)> {
        self.auditor.gossip_payload()
    }

    /// Ingests checkpoints relayed by another client. Returns any
    /// misbehavior evidence discovered — in particular, an
    /// [`distrust_log::Misbehavior::Equivocation`] when a domain showed
    /// this client and the peer conflicting histories.
    pub fn ingest_gossip(
        &mut self,
        payload: &[(u32, distrust_log::SignedCheckpoint)],
    ) -> Vec<Misbehavior> {
        let mut found = Vec::new();
        for (domain, cp) in payload {
            if let AuditOutcome::Misbehavior(m) = self.auditor.ingest_gossip(*domain, cp.clone()) {
                if let Some(bundle) = EvidenceBundle::from_misbehavior(&m) {
                    self.evidence.insert(bundle);
                }
                found.push(*m);
            }
        }
        found
    }

    /// The gossip envelope this client would hand a peer (or piggyback on
    /// an audit): its latest verified checkpoint heads plus all
    /// transferable evidence it holds.
    pub fn gossip_envelope(&self) -> GossipEnvelope {
        GossipEnvelope {
            heads: self
                .auditor
                .gossip_payload()
                .into_iter()
                .map(|(domain, checkpoint)| GossipHead { domain, checkpoint })
                .collect(),
            evidence: self.evidence.items().to_vec(),
        }
    }

    /// Merges a peer's (or a domain bulletin board's) envelope: heads are
    /// checked for conflicts against everything this client has verified,
    /// and evidence is verified against the pinned checkpoint keys.
    /// Returns every *newly discovered* piece of misbehavior.
    pub fn ingest_envelope(&mut self, envelope: &GossipEnvelope) -> Vec<Misbehavior> {
        let mut found = Vec::new();
        for head in &envelope.heads {
            if let AuditOutcome::Misbehavior(m) = self
                .auditor
                .ingest_gossip(head.domain, head.checkpoint.clone())
            {
                if let Some(bundle) = EvidenceBundle::from_misbehavior(&m) {
                    self.evidence.insert(bundle);
                }
                found.push(*m);
            }
        }
        for bundle in &envelope.evidence {
            if self.ingest_evidence(bundle) {
                found.push(Misbehavior::Equivocation {
                    domain: bundle.domain,
                    proof: bundle.proof.clone(),
                });
            }
        }
        found
    }

    /// Verifies one transferable evidence bundle against the pinned
    /// checkpoint key of the accused domain and, if it holds, keeps it.
    /// Returns `true` when the bundle is valid **and new** — invalid
    /// bundles (including attempts to frame an honest domain) and
    /// duplicates are dropped without effect.
    pub fn ingest_evidence(&mut self, bundle: &EvidenceBundle) -> bool {
        let Some(info) = self.descriptor.domains.get(bundle.domain as usize) else {
            return false;
        };
        if !bundle.verify(&info.checkpoint_key) {
            return false;
        }
        self.evidence.insert(bundle.clone())
    }

    /// The transferable evidence this client holds.
    pub fn evidence(&self) -> &[EvidenceBundle] {
        self.evidence.items()
    }

    /// Whether this client holds verified evidence convicting `domain`.
    pub fn convicted(&self, domain: u32) -> bool {
        self.evidence.convicts(domain)
    }

    /// One explicit epidemic exchange with `domain`: send this client's
    /// envelope, ingest whatever the domain's bulletin board answers.
    /// Returns newly discovered misbehavior. Old servers answer with an
    /// error frame; that is remembered (per connection) and reported as
    /// an empty discovery, since gossip is best-effort by design.
    pub fn gossip_with_domain(&mut self, domain: u32) -> Result<Vec<Misbehavior>, ClientError> {
        if !self.gossip_capable[domain as usize] {
            return Ok(Vec::new());
        }
        let request = Request::Gossip {
            envelope: self.gossip_envelope(),
        };
        match self.exchange(domain, &request)? {
            Response::Gossip { envelope } => Ok(self.ingest_envelope(&envelope)),
            Response::Error(_) => {
                self.gossip_capable[domain as usize] = false;
                Ok(Vec::new())
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Performs a full audit round across all domains.
    ///
    /// The fast path issues one [`Request::BatchAudit`] per domain —
    /// pipelined, so every domain's request is in flight before any
    /// response is read — and gets attestation, checkpoints, and a range
    /// consistency proof back in a single round-trip per domain, matched
    /// by request id. Per domain it:
    ///
    /// 1. verifies the TEE quote end-to-end (cert chain → vendor root,
    ///    evidence, measurement, nonce echo);
    /// 2. feeds the checkpoint bundle to the auditor, which verifies
    ///    signatures and the consistency chain only *above* its verified
    ///    prefix and hunts for equivocation inside the bundle and against
    ///    everything previously seen;
    /// 3. requires the freshest checkpoint to match the attested status.
    ///
    /// Domains that do not understand `BatchAudit` (old servers answer
    /// with an error frame) fall back to the legacy per-step sequence
    /// with identical detection semantics. Finally the digest histories
    /// are cross-checked across all domains.
    ///
    /// `expected_app` pins the digest of the published code, when the
    /// client has computed it from source (§3.3's "the developer
    /// open-sources her code").
    pub fn audit(&mut self, expected_app: Option<&Digest>) -> AuditReport {
        let expected_measurement = self.descriptor.expected_measurement();
        let n = self.descriptor.domains.len() as u32;
        let mut domains = Vec::with_capacity(n as usize);
        let mut misbehavior = Vec::new();

        // Phase 1: pipeline one BatchAudit frame to every domain before
        // reading anything back. Domains that already proved they do not
        // speak it are not re-probed (no wasted round-trip); the flag
        // resets when a fresh connection is opened. A gossip exchange
        // rides on the same connection right behind the audit frame —
        // encoded once, servers answer strictly in request order, so the
        // bundle is always the first frame back and the envelope the
        // second. The piggyback is what makes "someone is watching"
        // ambient: every routine audit also compares notes.
        let mut inflight: Vec<Option<(u64, [u8; 32])>> = Vec::with_capacity(n as usize);
        let mut gossip_inflight = vec![false; n as usize];
        let gossip_wire = Request::Gossip {
            envelope: self.gossip_envelope(),
        }
        .to_wire();
        for d in 0..n {
            if !self.batch_capable[d as usize] {
                inflight.push(None);
                continue;
            }
            let mut nonce = [0u8; 32];
            self.rng.fill_bytes(&mut nonce);
            let verified_size = self.auditor.latest(d).map(|cp| cp.body.size).unwrap_or(0);
            let gossip_capable = self.gossip_capable[d as usize];
            let mut gossip_sent = false;
            let sent = match self.connection(d) {
                Ok(conn) => {
                    let id = conn.next_request_id();
                    let request = Request::BatchAudit {
                        request_id: id,
                        nonce,
                        verified_size,
                    };
                    match conn.send(&request.to_wire()) {
                        Ok(()) => {
                            gossip_sent = gossip_capable && conn.send(&gossip_wire).is_ok();
                            Some((id, nonce))
                        }
                        Err(_) => None,
                    }
                }
                Err(_) => None,
            };
            if sent.is_none() {
                // Broken connection: the legacy path below reconnects.
                self.connections[d as usize] = None;
            }
            gossip_inflight[d as usize] = gossip_sent;
            inflight.push(sent);
        }

        // Phase 2: collect responses (and fall back per domain if needed).
        for d in 0..n {
            let audit = match inflight[d as usize] {
                Some((id, nonce)) => {
                    let answer = self.collect_batch_audit(d, id);
                    // The envelope is the next in-order frame on this
                    // connection (even when an old server answered the
                    // audit with an error); it must be drained *before*
                    // any legacy fallback issues new requests, or their
                    // answers would desynchronise.
                    if gossip_inflight[d as usize] {
                        self.collect_gossip_answer(d, &mut misbehavior);
                    }
                    match answer {
                        BatchAuditAnswer::Legacy(bundle) => {
                            self.stats.batched_domains += 1;
                            self.process_audit_bundle(
                                d,
                                nonce,
                                *bundle,
                                &expected_measurement,
                                &mut misbehavior,
                            )
                        }
                        BatchAuditAnswer::Sharded(bundle) => {
                            self.stats.batched_domains += 1;
                            self.process_shard_audit_bundle(
                                d,
                                nonce,
                                *bundle,
                                &expected_measurement,
                                &mut misbehavior,
                            )
                        }
                        BatchAuditAnswer::Fallback => {
                            self.stats.fallback_domains += 1;
                            self.audit_domain_legacy(d, &expected_measurement, &mut misbehavior)
                        }
                    }
                }
                None => {
                    self.stats.fallback_domains += 1;
                    self.audit_domain_legacy(d, &expected_measurement, &mut misbehavior)
                }
            };
            domains.push(audit);
        }

        // Evidence never expires with the round that found it: a domain
        // convicted by transferable proof — whether discovered locally or
        // relayed through the mesh — fails every audit from then on.
        for audit in &mut domains {
            if audit.failure.is_none() && self.evidence.convicts(audit.index) {
                audit.failure =
                    Some("transferable equivocation evidence held against this domain".to_string());
            }
        }

        // Phase 3: cross-domain digest comparison.
        if let AuditOutcome::Misbehavior(m) = self.auditor.cross_check() {
            misbehavior.push(*m);
        }
        let digests: Vec<Digest> = domains
            .iter()
            .filter_map(|d| d.status.as_ref().map(|s| s.app_digest))
            .collect();
        let mut digests_agree =
            digests.len() == domains.len() && distrust_log::digests_match(&digests);
        if let (true, Some(expected)) = (digests_agree, expected_app) {
            if digests.first() != Some(expected) {
                digests_agree = false;
            }
        }
        let app_digest = if digests_agree {
            digests.first().copied()
        } else {
            None
        };

        AuditReport {
            domains,
            digests_agree,
            misbehavior,
            app_digest,
        }
    }

    /// Reads the response to an in-flight `BatchAudit`. A server may
    /// answer with the legacy single-tree bundle (tag 12) or the sharded
    /// one (tag 13) — both carry the echoed request id in the same
    /// position, so one peek matches either. `Fallback` means "use the
    /// per-step path": the server answered with something else entirely
    /// (an old server's error frame — remembered, so the domain is not
    /// probed again on this connection) or the connection died.
    fn collect_batch_audit(&mut self, domain: u32, id: u64) -> BatchAuditAnswer {
        let Some(conn) = self.connections[domain as usize].as_mut() else {
            return BatchAuditAnswer::Fallback;
        };
        let frame = match conn.recv_matching(id, Response::peek_request_id) {
            Ok(frame) => frame,
            Err(_) => {
                self.connections[domain as usize] = None;
                return BatchAuditAnswer::Fallback;
            }
        };
        match Response::from_wire(&frame) {
            Ok(Response::AuditBundle(bundle)) => {
                debug_assert_eq!(bundle.request_id, id, "recv_matching matched by this id");
                BatchAuditAnswer::Legacy(bundle)
            }
            Ok(Response::ShardAuditBundle(bundle)) => {
                debug_assert_eq!(bundle.request_id, id, "recv_matching matched by this id");
                BatchAuditAnswer::Sharded(bundle)
            }
            _ => {
                // The server answered, just not with a bundle: an old
                // server. Stop probing it every round.
                self.batch_capable[domain as usize] = false;
                BatchAuditAnswer::Fallback
            }
        }
    }

    /// Drains and ingests the gossip envelope riding behind a pipelined
    /// `BatchAudit` on `domain`'s connection. A dead connection means the
    /// frame is gone with it (gossip is best-effort; nothing to do); an
    /// old server's error frame marks the domain not gossip-capable so
    /// later audits skip the piggyback until a reconnect re-probes.
    fn collect_gossip_answer(&mut self, domain: u32, misbehavior: &mut Vec<Misbehavior>) {
        let idx = domain as usize;
        if self.connections[idx].is_none() {
            return;
        }
        match self.recv_raw(domain) {
            Ok(Response::Gossip { envelope }) => {
                misbehavior.extend(self.ingest_envelope(&envelope));
            }
            Ok(Response::Error(_)) => {
                self.gossip_capable[idx] = false;
            }
            Ok(_) | Err(_) => {
                // recv_raw resets the connection on transport errors; an
                // unexpected variant means a server this client cannot
                // reason about — stop gossiping with it on this
                // connection either way.
                self.gossip_capable[idx] = false;
            }
        }
    }

    /// Shared attestation verification for the batched and per-step
    /// paths: checks a TEE quote end-to-end (vendor pin, cert chain,
    /// measurement, nonce binding) or accepts a plain status for
    /// vendor-less domains, recording the outcome on `audit`.
    fn apply_attestation(
        &self,
        attestation: BundleAttestation,
        nonce: [u8; 32],
        expected_measurement: &Digest,
        audit: &mut DomainAudit,
    ) {
        let info = &self.descriptor.domains[audit.index as usize];
        match attestation {
            BundleAttestation::Quote(quote) => {
                if info.vendor.is_none() {
                    audit.failure = Some("domain 0 unexpectedly returned a quote".to_string());
                } else if info.vendor != Some(quote.document.vendor) {
                    audit.failure = Some(format!(
                        "vendor mismatch: pinned {:?}, quoted {:?}",
                        info.vendor, quote.document.vendor
                    ));
                } else if let Err(e) = quote.verify(
                    &self.descriptor.vendor_roots,
                    Some(expected_measurement),
                    None,
                ) {
                    audit.failure = Some(format!("quote verification failed: {e}"));
                } else {
                    match AttestationBinding::from_wire(&quote.document.user_data) {
                        Ok(binding) if binding.nonce == nonce => {
                            audit.attested = true;
                            audit.status = Some(binding.status);
                        }
                        Ok(_) => {
                            audit.failure = Some("stale quote: nonce mismatch".to_string());
                        }
                        Err(e) => {
                            audit.failure = Some(format!("malformed attestation binding: {e}"));
                        }
                    }
                }
            }
            BundleAttestation::Unattested(status) => {
                if info.vendor.is_some() {
                    audit.failure = Some("TEE-backed domain refused to attest".to_string());
                } else {
                    audit.status = Some(status);
                }
            }
        }
    }

    /// Verifies one domain's **sharded** batched audit response:
    /// attestation first, then the shard bundle through the auditor
    /// (per-epoch commitment recomputation, per-shard consistency runs,
    /// per-shard verified prefixes).
    fn process_shard_audit_bundle(
        &mut self,
        domain: u32,
        nonce: [u8; 32],
        response: ShardAuditBundle,
        expected_measurement: &Digest,
        misbehavior: &mut Vec<Misbehavior>,
    ) -> DomainAudit {
        let mut audit = DomainAudit {
            index: domain,
            attested: false,
            status: None,
            failure: None,
            batched: true,
        };
        self.apply_attestation(
            response.attestation,
            nonce,
            expected_measurement,
            &mut audit,
        );
        if let Some(status) = audit.status.clone() {
            let matches_status = response.bundle.epochs.last().is_some_and(|e| {
                e.checkpoint.body.size == status.log_size
                    && e.checkpoint.body.head == status.log_head
            });
            match self.auditor.observe_shard_bundle(domain, &response.bundle) {
                AuditOutcome::Consistent => {
                    if !matches_status {
                        audit.failure =
                            Some("checkpoint disagrees with attested status".to_string());
                    }
                }
                AuditOutcome::Misbehavior(m) => {
                    audit.failure = Some(format!("log misbehavior: {m:?}"));
                    misbehavior.push(*m);
                }
            }
        }
        audit
    }

    /// Verifies one domain's batched audit response: attestation first,
    /// then the checkpoint bundle through the auditor.
    fn process_audit_bundle(
        &mut self,
        domain: u32,
        nonce: [u8; 32],
        response: AuditBundle,
        expected_measurement: &Digest,
        misbehavior: &mut Vec<Misbehavior>,
    ) -> DomainAudit {
        let mut audit = DomainAudit {
            index: domain,
            attested: false,
            status: None,
            failure: None,
            batched: true,
        };
        self.apply_attestation(
            response.attestation,
            nonce,
            expected_measurement,
            &mut audit,
        );
        if let Some(status) = audit.status.clone() {
            // Feed the auditor first, exactly like the per-step path: a
            // correctly signed bundle is evidence regardless of whether
            // it matches the claimed status.
            let matches_status = response.bundle.checkpoints.last().is_some_and(|cp| {
                cp.body.size == status.log_size && cp.body.head == status.log_head
            });
            match self.auditor.observe_bundle(domain, &response.bundle) {
                AuditOutcome::Consistent => {
                    if !matches_status {
                        audit.failure =
                            Some("checkpoint disagrees with attested status".to_string());
                    }
                }
                AuditOutcome::Misbehavior(m) => {
                    audit.failure = Some(format!("log misbehavior: {m:?}"));
                    misbehavior.push(*m);
                }
            }
        }
        audit
    }

    /// The legacy per-step audit of one domain: `Attest`, then
    /// `GetCheckpoint` (+ `GetConsistency` on growth), one round-trip
    /// each. Kept for old servers that do not answer `BatchAudit`;
    /// detection semantics are identical to the batched path.
    fn audit_domain_legacy(
        &mut self,
        d: u32,
        expected_measurement: &Digest,
        misbehavior: &mut Vec<Misbehavior>,
    ) -> DomainAudit {
        let mut audit = DomainAudit {
            index: d,
            attested: false,
            status: None,
            failure: None,
            batched: false,
        };
        let mut nonce = [0u8; 32];
        self.rng.fill_bytes(&mut nonce);

        // Step 1: attestation challenge (verified by the same helper the
        // batched path uses — the two paths cannot drift).
        match self.exchange(d, &Request::Attest { nonce }) {
            Ok(Response::Quote(quote)) => self.apply_attestation(
                BundleAttestation::Quote(quote),
                nonce,
                expected_measurement,
                &mut audit,
            ),
            Ok(Response::Unattested(status)) => self.apply_attestation(
                BundleAttestation::Unattested(status),
                nonce,
                expected_measurement,
                &mut audit,
            ),
            Ok(other) => {
                audit.failure = Some(format!("unexpected attest response: {other:?}"));
            }
            Err(e) => {
                audit.failure = Some(format!("attest failed: {e}"));
            }
        }

        // Step 2: checkpoint + consistency.
        if let Some(status) = audit.status.clone() {
            match self.exchange(d, &Request::GetCheckpoint) {
                Ok(Response::Checkpoint(cp)) => {
                    // Feed the auditor first: a correctly signed
                    // checkpoint is evidence regardless of whether it
                    // matches the claimed status — this is what turns
                    // equivocation into a transferable proof.
                    let prior = self.auditor.latest(d).cloned();
                    let needs_proof = matches!(&prior,
                        Some(p) if p.body.size > 0 && p.body.size < cp.body.size);
                    let proof = if needs_proof {
                        let p = prior.as_ref().expect("needs_proof implies prior");
                        match self.exchange(
                            d,
                            &Request::GetConsistency {
                                old_size: p.body.size,
                            },
                        ) {
                            Ok(Response::Consistency(proof)) => Some(proof),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    let known_sharded = self
                        .auditor
                        .prefix_cache(d)
                        .and_then(|c| c.shard_prefixes())
                        .is_some();
                    if needs_proof && proof.is_none() && known_sharded {
                        // The log grew and no proof came back — but this
                        // domain has already proven itself *sharded*, and
                        // sharded logs have no top-level consistency
                        // proofs to serve on the per-step path (they are
                        // audited via BatchAudit). Not feeding the auditor
                        // keeps this honest-but-unprovable degraded round
                        // from being booked as `InconsistentGrowth`
                        // misbehavior (which would refuse the whole
                        // deployment); the domain still fails this audit
                        // round, and the next batched round re-links from
                        // the verified prefix. A domain that never showed
                        // a shard decomposition gets no such benefit of
                        // the doubt: a plain server refusing a growth
                        // proof is exactly the history-rewrite signature.
                        audit.failure = Some(
                            "sharded log grew; no per-step consistency proof exists — \
                             re-audit via the batched path"
                                .to_string(),
                        );
                        return audit;
                    }
                    let matches_status =
                        cp.body.size == status.log_size && cp.body.head == status.log_head;
                    match self.auditor.observe(d, cp, proof.as_ref()) {
                        AuditOutcome::Consistent => {
                            if !matches_status {
                                audit.failure =
                                    Some("checkpoint disagrees with attested status".to_string());
                            }
                        }
                        AuditOutcome::Misbehavior(m) => {
                            audit.failure = Some(format!("log misbehavior: {m:?}"));
                            misbehavior.push(*m);
                        }
                    }
                }
                Ok(other) => {
                    audit.failure = Some(format!("unexpected checkpoint response: {other:?}"));
                }
                Err(e) => {
                    audit.failure = Some(format!("checkpoint fetch failed: {e}"));
                }
            }
        }
        audit
    }
}
