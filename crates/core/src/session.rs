//! Trust-gated, pipelined multi-domain sessions — the client surface the
//! paper actually argues for.
//!
//! §3.3's contract is *verify, then split trust*: a client should only use
//! a distributed-trust deployment after auditing it. The bare
//! [`DeploymentClient`] makes that optional (nothing stops an app from
//! calling [`DeploymentClient::call`] without ever auditing) and makes
//! multi-domain interaction a chore (every app hand-rolls a sequential
//! per-domain loop, so one slow domain serializes the whole operation). A
//! [`Session`] fixes both, by construction:
//!
//! * **Trust gating** — a [`TrustPolicy`] the session enforces: the
//!   batched audit runs before the first application call and is refreshed
//!   when stale, and domains that failed it are refused.
//! * **Pipelined fan-out** — [`Session::fanout`] puts every domain's
//!   request in flight before reading any response (one round-trip for the
//!   whole deployment instead of `n`), with broadcast or per-domain
//!   payloads, and returns structured per-domain [`DomainOutcome`]s
//!   instead of failing at the first error.
//! * **Quorum policies** — [`QuorumPolicy`] is evaluated inside the
//!   session, so threshold signing returns as soon as `t` partials arrive
//!   and key-backup recovery tolerates dead domains, without each app
//!   reimplementing the logic.

use crate::client::{AuditReport, ClientError, DeploymentClient};
use crate::protocol::{Request, Response};
use distrust_crypto::bls;
use distrust_crypto::sha256::Digest;
use distrust_gossip::evidence::EvidenceBundle;
use distrust_gossip::witness::CosignedHeads;
use distrust_wire::codec::Encode;
use std::time::{Duration, Instant};

/// How many per-domain successes a fan-out needs before it is satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuorumPolicy {
    /// Every targeted domain must answer successfully. The fan-out still
    /// collects every response (slow domains bound the latency, but they
    /// bound it once, not `n` times as a sequential loop would).
    All,
    /// Satisfied as soon as this many domains answer **successfully**
    /// (an [`DomainOutcome::Ok`]); responses still in flight are
    /// abandoned. Failed domains do not count, but collection continues
    /// past them while unanswered domains remain.
    Threshold(usize),
    /// Satisfied as soon as this many domains **answer** at all (success
    /// or application error) — a race across replicas where arrival order
    /// is the preference. Responses still in flight are abandoned.
    First(usize),
}

/// Witness-quorum trust: accept one threshold-cosigned head vector in
/// place of the full batched audit.
///
/// A thin client under this policy verifies exactly **one** aggregated
/// BLS signature over the per-domain checkpoint heads — the work the
/// witness quorum already did on its behalf — instead of auditing all
/// `n` domains itself. The trust assumption shifts accordingly: the
/// client trusts that at least `t` of the witnesses honestly verified
/// each domain's checkpoint transition.
#[derive(Clone, Copy, Debug)]
pub struct WitnessedTrust {
    /// The witness quorum's group public key (from
    /// `FeldmanCommitments::public_key`). One signature under this key
    /// vouches for the whole head vector.
    pub quorum_pk: bls::PublicKey,
    /// The threshold `t` the quorum was generated with — recorded for
    /// reporting; the aggregated signature verifies (or not) regardless.
    pub t: usize,
}

/// What a session demands before it lets application traffic through.
///
/// The default policy ([`TrustPolicy::audited`]) runs the batched audit
/// before the first call of the session and trusts, for the rest of the
/// session, exactly the domains that passed it.
#[derive(Clone, Debug)]
pub struct TrustPolicy {
    /// Audit before the first application call (and refuse all calls if
    /// the audit collects misbehavior evidence or no domain passes).
    pub audit_before_use: bool,
    /// Maximum audit staleness, measured in application-call rounds
    /// ("epochs" of session activity): after this many rounds since the
    /// last audit, the next call re-audits first. `0` re-audits before
    /// every round; `u64::MAX` audits once per session.
    pub max_staleness: u64,
    /// Trust only domains whose TEE quote verified end-to-end. Excludes
    /// trust domain 0, which has no secure hardware — policies requiring
    /// attestation are for apps whose quorums live entirely in 1..n.
    pub require_attested: bool,
    /// Digest the running application code must match, computed by the
    /// client from published source (§3.3's "the developer open-sources
    /// her code"). Domains reporting any other digest are refused.
    pub pinned_app_digest: Option<Digest>,
    /// Accept a threshold-cosigned head vector
    /// ([`Session::install_cosigned_head`]) in place of the batched
    /// audit. `None` (the default) keeps the audit-based gate.
    pub witnessed: Option<WitnessedTrust>,
}

impl Default for TrustPolicy {
    fn default() -> Self {
        Self::audited()
    }
}

impl TrustPolicy {
    /// Audit once, before the first call; trust the domains that pass.
    pub fn audited() -> Self {
        Self {
            audit_before_use: true,
            max_staleness: u64::MAX,
            require_attested: false,
            pinned_app_digest: None,
            witnessed: None,
        }
    }

    /// [`Self::audited`], plus every domain must be running exactly
    /// `digest`.
    pub fn pinned(digest: Digest) -> Self {
        Self {
            pinned_app_digest: Some(digest),
            ..Self::audited()
        }
    }

    /// No gating at all — every domain is trusted blindly. For tooling
    /// and tests that deliberately talk to unaudited or misbehaving
    /// deployments; applications should not use this.
    pub fn open() -> Self {
        Self {
            audit_before_use: false,
            max_staleness: u64::MAX,
            require_attested: false,
            pinned_app_digest: None,
            witnessed: None,
        }
    }

    /// Witness-quorum gating: trust one aggregated cosignature from a
    /// `t`-of-`n` witness quorum instead of auditing every domain. The
    /// session refuses application traffic until a cosigned head is
    /// installed ([`Session::install_cosigned_head`]) or a full audit
    /// passes as a fallback.
    pub fn witnessed(quorum_pk: bls::PublicKey, t: usize) -> Self {
        Self {
            witnessed: Some(WitnessedTrust { quorum_pk, t }),
            ..Self::audited()
        }
    }

    /// Re-audit after `rounds` application-call rounds.
    pub fn with_max_staleness(mut self, rounds: u64) -> Self {
        self.max_staleness = rounds;
        self
    }

    /// Require an end-to-end-verified TEE quote per trusted domain.
    pub fn with_require_attested(mut self) -> Self {
        self.require_attested = true;
        self
    }
}

/// The payloads of one fan-out: one blob for everyone, or one per domain.
#[derive(Clone, Debug)]
pub enum FanoutPayloads {
    /// Every domain receives the same payload, encoded once.
    Broadcast(Vec<u8>),
    /// Domain `d` receives `payloads[d]` (length must equal the
    /// deployment's domain count; non-targeted entries are ignored).
    /// Secret-sharing apps need this: each domain's share differs.
    PerDomain(Vec<Vec<u8>>),
}

/// One application fan-out: method, payload(s), quorum, deadline, and
/// (optionally) a subset of domains to target.
#[derive(Clone, Debug)]
pub struct FanoutCall {
    /// Method selector passed to the guest.
    pub method: u64,
    /// Broadcast or per-domain payloads.
    pub payloads: FanoutPayloads,
    /// When the fan-out counts as satisfied.
    pub quorum: QuorumPolicy,
    /// Domains to target; `None` targets the whole deployment.
    pub targets: Option<Vec<u32>>,
    /// Wall-clock budget for the whole fan-out. A domain that accepted
    /// its request but has not answered when the budget runs out is given
    /// up on ([`DomainOutcome::Failed`], its response abandoned on the
    /// wire) instead of stalling the collection — without a budget, a
    /// hung-but-connected domain blocks an [`QuorumPolicy::All`] quorum
    /// forever. `None` (the default) waits indefinitely.
    pub deadline: Option<Duration>,
}

impl FanoutCall {
    /// Same payload to every domain; quorum [`QuorumPolicy::All`].
    pub fn broadcast(method: u64, payload: Vec<u8>) -> Self {
        Self {
            method,
            payloads: FanoutPayloads::Broadcast(payload),
            quorum: QuorumPolicy::All,
            targets: None,
            deadline: None,
        }
    }

    /// Per-domain payloads (index = domain); quorum [`QuorumPolicy::All`].
    pub fn per_domain(method: u64, payloads: Vec<Vec<u8>>) -> Self {
        Self {
            method,
            payloads: FanoutPayloads::PerDomain(payloads),
            quorum: QuorumPolicy::All,
            targets: None,
            deadline: None,
        }
    }

    /// Sets the quorum policy.
    pub fn quorum(mut self, quorum: QuorumPolicy) -> Self {
        self.quorum = quorum;
        self
    }

    /// Sets the fan-out's wall-clock budget (see [`FanoutCall::deadline`]).
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Restricts the fan-out to a subset of domains (retry rounds, reads
    /// from specific replicas).
    pub fn targets(mut self, targets: Vec<u32>) -> Self {
        self.targets = Some(targets);
        self
    }
}

/// What one domain did with its fan-out request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DomainOutcome {
    /// The application answered; its outbox bytes.
    Ok(Vec<u8>),
    /// The domain answered with an application error (trap, oversized
    /// payload, …). The connection is fine.
    AppError(String),
    /// The connection was lost before this domain answered — distinct
    /// from [`Self::AppError`]: nothing came back, and any other requests
    /// in flight on the same connection died with it.
    ConnectionLost(String),
    /// The request could not be sent or the response was unusable
    /// (connect failure, decode error, unexpected variant).
    Failed(String),
    /// The session's trust policy refused this domain; no request was
    /// sent.
    Untrusted(String),
    /// The quorum was satisfied before this domain answered; its response
    /// will be discarded when it arrives.
    Abandoned,
    /// The fan-out did not target this domain.
    NotTargeted,
}

impl DomainOutcome {
    /// `true` for [`Self::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, Self::Ok(_))
    }
}

/// Structured result of one fan-out: a per-domain outcome (index =
/// domain), never a first-error bail-out.
#[derive(Debug)]
pub struct FanoutReport {
    /// Outcome per domain, index-ordered over the whole deployment.
    pub outcomes: Vec<DomainOutcome>,
    /// The quorum policy this fan-out ran under.
    pub quorum: QuorumPolicy,
    /// Whether the quorum was satisfied.
    pub satisfied: bool,
    /// Domains the quorum required.
    pub required: usize,
}

impl FanoutReport {
    /// Successful domains and their response payloads, domain-ordered.
    pub fn successes(&self) -> impl Iterator<Item = (u32, &[u8])> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(d, o)| match o {
                DomainOutcome::Ok(payload) => Some((d as u32, payload.as_slice())),
                _ => None,
            })
    }

    /// Number of successful domains.
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_ok()).count()
    }

    /// Domains whose responses were abandoned when the quorum was
    /// satisfied early — the natural retry set when app-level validation
    /// rejects some of the successes.
    pub fn abandoned(&self) -> Vec<u32> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(d, o)| matches!(o, DomainOutcome::Abandoned).then_some(d as u32))
            .collect()
    }

    /// The outcome for one domain.
    pub fn outcome(&self, domain: u32) -> Option<&DomainOutcome> {
        self.outcomes.get(domain as usize)
    }

    /// Errors unless the quorum was satisfied.
    pub fn require(&self) -> Result<(), ClientError> {
        if self.satisfied {
            Ok(())
        } else {
            Err(ClientError::QuorumNotMet {
                satisfied: match self.quorum {
                    QuorumPolicy::First(_) => self
                        .outcomes
                        .iter()
                        .filter(|o| matches!(o, DomainOutcome::Ok(_) | DomainOutcome::AppError(_)))
                        .count(),
                    _ => self.ok_count(),
                },
                required: self.required,
            })
        }
    }
}

/// How long the quorum collector waits on one domain before moving to the
/// next, initially; doubles (up to [`POLL_MAX`]) whenever a full sweep of
/// pending domains makes no progress.
const POLL_START: Duration = Duration::from_micros(500);
/// Ceiling for the per-domain poll interval.
const POLL_MAX: Duration = Duration::from_millis(50);

/// A trust-gated window of application traffic against one deployment.
///
/// Obtained from [`DeploymentClient::session`]. The session audits before
/// the first application call (per its [`TrustPolicy`]), refuses domains
/// that failed the audit, and fans application calls out to all domains
/// with every request in flight before any response is read.
///
/// ```no_run
/// use distrust_core::client::DeploymentClient;
/// use distrust_core::session::{FanoutCall, QuorumPolicy, TrustPolicy};
/// # fn demo(client: &mut DeploymentClient) -> Result<(), distrust_core::ClientError> {
/// let mut session = client.session(TrustPolicy::audited());
/// // The audit has not run yet — it runs before the first call, and the
/// // call is refused if it fails.
/// let report = session.fanout(
///     &FanoutCall::broadcast(1, b"payload".to_vec()).quorum(QuorumPolicy::Threshold(2)),
/// )?;
/// for (domain, payload) in report.successes() {
///     println!("domain {domain} answered {payload:?}");
/// }
/// # Ok(())
/// # }
/// ```
pub struct Session<'c> {
    client: &'c mut DeploymentClient,
    policy: TrustPolicy,
    /// Per-domain refusal reason; `None` = trusted. Meaningful once
    /// `audited` (or immediately, for an open policy).
    refusals: Vec<Option<String>>,
    last_report: Option<AuditReport>,
    audited: bool,
    /// The last gating audit failed outright; every subsequent call
    /// re-audits (and keeps refusing) until one passes.
    gate_failed: bool,
    rounds_since_audit: u64,
    /// Per-domain refusal from out-of-band misbehavior evidence
    /// ([`Session::ingest_evidence`]). Unlike `refusals`, which every
    /// audit recomputes, a poisoned entry survives re-audits: a
    /// cryptographic conviction does not expire because a later audit
    /// round looked clean.
    poisoned: Vec<Option<String>>,
    /// The accepted cosigned head vector, when the policy is witnessed.
    cosigned: Option<CosignedHeads>,
    /// How many aggregated-cosignature verifications this session has
    /// performed — observable so tests (and cost accounting) can assert
    /// the witnessed fast path did exactly one.
    cosign_verifications: u64,
}

impl<'c> Session<'c> {
    /// Wraps a client in a trust-gated session. No I/O happens here; the
    /// gating audit runs lazily, before the first application call.
    pub fn new(client: &'c mut DeploymentClient, policy: TrustPolicy) -> Self {
        let n = client.descriptor().domains.len();
        Self {
            client,
            policy,
            refusals: vec![None; n],
            last_report: None,
            audited: false,
            gate_failed: false,
            rounds_since_audit: 0,
            poisoned: vec![None; n],
            cosigned: None,
            cosign_verifications: 0,
        }
    }

    /// Number of trust domains in the deployment.
    pub fn domain_count(&self) -> usize {
        self.client.descriptor().domains.len()
    }

    /// The policy this session enforces.
    pub fn policy(&self) -> &TrustPolicy {
        &self.policy
    }

    /// The report of the most recent gating audit, if one has run.
    pub fn last_audit(&self) -> Option<&AuditReport> {
        self.last_report.as_ref()
    }

    /// Domains the current trust state accepts.
    pub fn trusted_domains(&self) -> Vec<u32> {
        self.refusals
            .iter()
            .zip(&self.poisoned)
            .enumerate()
            .filter_map(|(d, (r, p))| (r.is_none() && p.is_none()).then_some(d as u32))
            .collect()
    }

    /// How many aggregated-cosignature verifications the session has
    /// performed. A witnessed thin client's first application call costs
    /// exactly one.
    pub fn cosign_verifications(&self) -> u64 {
        self.cosign_verifications
    }

    /// The cosigned head vector the session currently trusts, if any.
    pub fn cosigned_head(&self) -> Option<&CosignedHeads> {
        self.cosigned.as_ref()
    }

    /// Escape hatch to the underlying (un-gated) client — audits, gossip,
    /// log queries, update pushes.
    pub fn client(&mut self) -> &mut DeploymentClient {
        self.client
    }

    /// Forces a fresh gating audit now (normally it runs lazily). Returns
    /// the report on success; errs if the audit leaves no usable domain.
    pub fn refresh_trust(&mut self) -> Result<&AuditReport, ClientError> {
        self.run_audit()?;
        Ok(self.last_report.as_ref().expect("audit just ran"))
    }

    /// Runs the gating audit and recomputes per-domain trust.
    fn run_audit(&mut self) -> Result<(), ClientError> {
        let report = self.client.audit(self.policy.pinned_app_digest.as_ref());
        self.audited = true;
        self.gate_failed = true; // cleared on the success path below
        self.rounds_since_audit = 0;

        // Cryptographic misbehavior evidence (equivocation, rollback) is
        // not a per-domain nuance: the deployment is lying to somebody.
        // Refuse everything.
        if !report.misbehavior.is_empty() {
            let why = format!(
                "audit collected misbehavior evidence: {:?}",
                report.misbehavior
            );
            self.refusals = vec![Some(why.clone()); self.refusals.len()];
            self.last_report = Some(report);
            return Err(ClientError::AuditFailed(why));
        }

        let mut refusals = Vec::with_capacity(report.domains.len());
        for d in &report.domains {
            let reason = if let Some(failure) = &d.failure {
                Some(format!("audit failed: {failure}"))
            } else if d.status.is_none() {
                Some("audit returned no status".to_string())
            } else if self.policy.require_attested && !d.attested {
                Some("policy requires attestation; domain did not attest".to_string())
            } else if self
                .policy
                .pinned_app_digest
                .is_some_and(|pin| d.status.as_ref().is_some_and(|s| s.app_digest != pin))
            {
                Some("running code digest differs from pinned digest".to_string())
            } else {
                None
            };
            refusals.push(reason);
        }

        // The trusted survivors must agree among themselves on the running
        // code digest — if they diverge, the client cannot tell who is
        // honest, which is exactly the paper's detection condition.
        let digests: Vec<Digest> = report
            .domains
            .iter()
            .zip(&refusals)
            .filter(|(_, r)| r.is_none())
            .filter_map(|(d, _)| d.status.as_ref().map(|s| s.app_digest))
            .collect();
        if !distrust_log::digests_match(&digests) {
            let why = "trusted domains disagree on the running code digest".to_string();
            self.refusals = vec![Some(why.clone()); refusals.len()];
            self.last_report = Some(report);
            return Err(ClientError::AuditFailed(why));
        }

        // An audit that leaves nothing usable is a failed audit: the
        // session refuses application traffic outright.
        if refusals.iter().all(|r| r.is_some()) {
            let reasons: Vec<String> = refusals
                .iter()
                .enumerate()
                .filter_map(|(d, r)| r.as_ref().map(|r| format!("domain {d}: {r}")))
                .collect();
            self.refusals = refusals.clone();
            self.last_report = Some(report);
            return Err(ClientError::AuditFailed(format!(
                "no domain passed the trust policy ({})",
                reasons.join("; ")
            )));
        }

        self.refusals = refusals;
        self.last_report = Some(report);
        self.gate_failed = false;
        Ok(())
    }

    /// Ensures the trust state is fresh enough for one more call round,
    /// auditing (or re-auditing) if the policy demands it. After a failed
    /// gate, every round re-audits: the session keeps refusing — and
    /// keeps checking — until an audit passes.
    ///
    /// Under a witnessed policy an installed cosigned head
    /// ([`Session::install_cosigned_head`]) satisfies the gate without
    /// any audit traffic — that installation already marked the session
    /// audited, so the freshness check below passes until the head goes
    /// stale. A stale (or never-installed) witnessed session falls back
    /// to the full batched audit rather than refusing outright.
    fn ensure_trust(&mut self) -> Result<(), ClientError> {
        if !self.policy.audit_before_use {
            return Ok(());
        }
        if !self.audited || self.gate_failed || self.rounds_since_audit > self.policy.max_staleness
        {
            // Whatever cosigned head the session held no longer carries
            // the gate; a fresh one can be installed after the audit.
            self.cosigned = None;
            self.run_audit()?;
        }
        Ok(())
    }

    /// Why `domain` is currently refused, if it is. Evidence poisoning
    /// is checked first: a convicted domain stays refused no matter what
    /// the latest audit (or an installed cosigned head) says about it.
    fn refusal(&self, domain: u32) -> Option<&String> {
        self.poisoned
            .get(domain as usize)
            .and_then(|p| p.as_ref())
            .or_else(|| self.refusals.get(domain as usize).and_then(|r| r.as_ref()))
    }

    /// Installs a witness-cosigned head vector as this session's trust
    /// basis, verifying **one** aggregated BLS signature in place of the
    /// full batched audit.
    ///
    /// Requires a [`TrustPolicy::witnessed`] policy; checks that the
    /// vector covers exactly this deployment's domains and that the
    /// aggregated signature verifies under the quorum public key. On
    /// success every domain the vector covers is trusted — except
    /// domains already poisoned by transferable misbehavior evidence,
    /// which stay refused.
    pub fn install_cosigned_head(&mut self, cosigned: &CosignedHeads) -> Result<(), ClientError> {
        let Some(witnessed) = self.policy.witnessed else {
            return Err(ClientError::Unexpected(
                "install_cosigned_head requires a witnessed trust policy".into(),
            ));
        };
        let n = self.domain_count();
        if cosigned.heads.len() != n {
            return Err(ClientError::AuditFailed(format!(
                "cosigned head vector covers {} domains; deployment has {n}",
                cosigned.heads.len()
            )));
        }
        self.cosign_verifications += 1;
        if !cosigned.verify(&witnessed.quorum_pk) {
            self.gate_failed = true;
            return Err(ClientError::AuditFailed(
                "cosigned head vector failed aggregated signature verification".into(),
            ));
        }
        self.cosigned = Some(cosigned.clone());
        self.refusals = vec![None; n];
        self.audited = true;
        self.gate_failed = false;
        self.rounds_since_audit = 0;
        Ok(())
    }

    /// Ingests a transferable misbehavior bundle delivered out of band
    /// (gossip from a peer, a witness's evidence pool, a relay). If the
    /// proof verifies against the deployment's pinned checkpoint key for
    /// the accused domain, that domain is refused for the rest of the
    /// session — effective immediately, even between two fan-outs of an
    /// already-audited session. Returns whether the evidence verified.
    pub fn ingest_evidence(&mut self, bundle: &EvidenceBundle) -> bool {
        if !self.client.ingest_evidence(bundle) {
            return false;
        }
        if let Some(slot) = self.poisoned.get_mut(bundle.domain as usize) {
            *slot = Some("transferable equivocation evidence held against this domain".to_string());
        }
        true
    }

    /// Trust-gated single-domain application call. Prefer
    /// [`Self::fanout`] for anything touching more than one domain.
    pub fn call(
        &mut self,
        domain: u32,
        method: u64,
        payload: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        self.ensure_trust()?;
        if let Some(reason) = self.refusal(domain) {
            return Err(ClientError::Untrusted {
                domain,
                reason: reason.clone(),
            });
        }
        self.rounds_since_audit += 1;
        self.client.call(domain, method, payload)
    }

    /// Pipelined fan-out: sends the call to every (targeted, trusted)
    /// domain before reading any response, then collects responses until
    /// the quorum is satisfied.
    ///
    /// Returns `Err` only when the trust gate refuses the whole operation
    /// (failed audit, or no targeted domain trusted); per-domain failures
    /// land in the report's [`DomainOutcome`]s. Call
    /// [`FanoutReport::require`] to turn an unsatisfied quorum into an
    /// error.
    pub fn fanout(&mut self, call: &FanoutCall) -> Result<FanoutReport, ClientError> {
        self.ensure_trust()?;
        self.rounds_since_audit += 1;
        let n = self.domain_count();
        if let FanoutPayloads::PerDomain(payloads) = &call.payloads {
            if payloads.len() != n {
                return Err(ClientError::Unexpected(format!(
                    "per-domain fan-out needs one payload per domain: \
                     deployment has {n}, got {} (payloads are indexed by \
                     domain, even when targeting a subset)",
                    payloads.len()
                )));
            }
        }
        // Validate every target before Phase 1 sends anything: bailing out
        // mid-send would leave responses in flight that nothing collects
        // or abandons, desynchronising those connections. Duplicates are
        // dropped — one domain must not be able to satisfy a multi-domain
        // quorum by being listed twice.
        let mut targets: Vec<u32> = match &call.targets {
            Some(t) => t.clone(),
            None => (0..n as u32).collect(),
        };
        if let Some(&bad) = targets.iter().find(|&&d| d as usize >= n) {
            return Err(ClientError::NoSuchDomain(bad));
        }
        let mut seen = vec![false; n];
        targets.retain(|&d| !std::mem::replace(&mut seen[d as usize], true));
        let mut outcomes = vec![DomainOutcome::NotTargeted; n];

        // The broadcast frame is encoded exactly once.
        let broadcast_wire = match &call.payloads {
            FanoutPayloads::Broadcast(payload) => Some(
                Request::AppCall {
                    method: call.method,
                    payload: payload.clone(),
                }
                .to_wire(),
            ),
            FanoutPayloads::PerDomain(_) => None,
        };

        // Phase 1: every request in flight before any response is read.
        let mut pending: Vec<u32> = Vec::with_capacity(targets.len());
        let mut trusted_targets = 0usize;
        for &d in &targets {
            if let Some(reason) = self.refusal(d) {
                outcomes[d as usize] = DomainOutcome::Untrusted(reason.clone());
                continue;
            }
            trusted_targets += 1;
            let per_domain_wire;
            let wire: &[u8] = match (&broadcast_wire, &call.payloads) {
                (Some(w), _) => w,
                (None, FanoutPayloads::PerDomain(payloads)) => {
                    per_domain_wire = Request::AppCall {
                        method: call.method,
                        payload: payloads[d as usize].clone(),
                    }
                    .to_wire();
                    &per_domain_wire
                }
                (None, FanoutPayloads::Broadcast(_)) => unreachable!("encoded above"),
            };
            match self.client.send_raw(d, wire) {
                Ok(()) => pending.push(d),
                Err(e) => outcomes[d as usize] = Self::error_outcome(e),
            }
        }
        if trusted_targets == 0 {
            let reasons: Vec<String> = targets
                .iter()
                .filter_map(|&d| self.refusal(d).map(|r| format!("domain {d}: {r}")))
                .collect();
            return Err(ClientError::AuditFailed(format!(
                "no targeted domain passed the trust policy ({})",
                reasons.join("; ")
            )));
        }

        // Phase 2: collect until the quorum is satisfied. `All` counts
        // every *targeted* domain — a target the trust gate refused still
        // counts against satisfaction, so all-or-nothing apps cannot
        // silently under-deliver (a backup that skipped a refused domain
        // would quietly lower its own recovery margin).
        let required = match call.quorum {
            QuorumPolicy::All => targets.len(),
            QuorumPolicy::Threshold(t) => t,
            QuorumPolicy::First(k) => k,
        };
        let count_any_answer = matches!(call.quorum, QuorumPolicy::First(_));
        let mut satisfied_count = outcomes
            .iter()
            .filter(|o| o.is_ok() || (count_any_answer && matches!(o, DomainOutcome::AppError(_))))
            .count();

        // Round-robin over pending domains with short timeouts so one
        // straggler cannot block a quorum the others already satisfy.
        // Threshold/First exit as soon as the quorum is met, abandoning
        // stragglers; `All` (and an unreachable quorum) keeps collecting
        // so the report carries every domain's actual answer. A deadline,
        // when set, bounds the whole collection: domains still silent at
        // expiry are given one final non-blocking read, then failed and
        // their responses abandoned — a hung-but-connected domain costs
        // the budget, never an indefinite stall.
        let deadline_at = call.deadline.map(|budget| Instant::now() + budget);
        let early_exit = matches!(
            call.quorum,
            QuorumPolicy::Threshold(_) | QuorumPolicy::First(_)
        );
        let mut poll = POLL_START;
        while !pending.is_empty() {
            if early_exit && satisfied_count >= required {
                // Quorum satisfied with responses still in flight:
                // abandon them (drained off the wire on the connection's
                // next use). These are the domains a retry round may
                // re-ask ([`FanoutReport::abandoned`]).
                for d in pending.drain(..) {
                    self.client.abandon_response(d);
                    outcomes[d as usize] = DomainOutcome::Abandoned;
                }
                break;
            }
            let expired = deadline_at.is_some_and(|at| Instant::now() >= at);
            if expired {
                // Budget exhausted: one last non-blocking look at each
                // straggler (its answer may already be buffered), then
                // give up on whoever stayed silent.
                for d in pending.drain(..) {
                    match self.client.try_recv_raw(d, Duration::ZERO) {
                        Ok(Some(response)) => {
                            let outcome = Self::response_outcome(Ok(response));
                            if outcome.is_ok()
                                || (count_any_answer
                                    && matches!(outcome, DomainOutcome::AppError(_)))
                            {
                                satisfied_count += 1;
                            }
                            outcomes[d as usize] = outcome;
                        }
                        Ok(None) => {
                            self.client.abandon_response(d);
                            outcomes[d as usize] = DomainOutcome::Failed(
                                "fanout deadline exceeded before the domain answered".into(),
                            );
                        }
                        Err(e) => outcomes[d as usize] = Self::error_outcome(e),
                    }
                }
                break;
            }
            let mut progressed = false;
            let mut still_pending = Vec::with_capacity(pending.len());
            for d in pending {
                if early_exit && satisfied_count >= required {
                    still_pending.push(d);
                    continue;
                }
                let wait = match deadline_at {
                    Some(at) => poll.min(at.saturating_duration_since(Instant::now())),
                    None => poll,
                };
                match self.client.try_recv_raw(d, wait) {
                    Ok(Some(response)) => {
                        progressed = true;
                        let outcome = Self::response_outcome(Ok(response));
                        if outcome.is_ok()
                            || (count_any_answer && matches!(outcome, DomainOutcome::AppError(_)))
                        {
                            satisfied_count += 1;
                        }
                        outcomes[d as usize] = outcome;
                    }
                    Ok(None) => still_pending.push(d),
                    Err(e) => {
                        progressed = true;
                        outcomes[d as usize] = Self::error_outcome(e);
                    }
                }
            }
            pending = still_pending;
            if !progressed {
                poll = (poll * 2).min(POLL_MAX);
            }
        }

        Ok(FanoutReport {
            outcomes,
            quorum: call.quorum,
            satisfied: satisfied_count >= required,
            required,
        })
    }

    /// Threshold collection with app-level validation: broadcasts
    /// `method`/`payload` under [`QuorumPolicy::Threshold`] and keeps
    /// collecting until `need` responses pass `validate` or no domain is
    /// left to ask.
    ///
    /// A domain can answer successfully at the transport level and still
    /// fail validation (an invalid partial signature, a refused recovery
    /// attempt) — such answers do not count, and the next round re-asks
    /// only the domains whose responses were abandoned when the previous
    /// quorum was satisfied early. Returns the validated values, possibly
    /// fewer than `need` when the deployment cannot provide them; the
    /// caller decides whether that is fatal.
    pub fn fanout_collect<T>(
        &mut self,
        method: u64,
        payload: Vec<u8>,
        need: usize,
        mut validate: impl FnMut(u32, &[u8]) -> Option<T>,
    ) -> Result<Vec<T>, ClientError> {
        let mut collected = Vec::with_capacity(need);
        let mut targets: Option<Vec<u32>> = None; // None = all domains
        loop {
            let outstanding = need - collected.len();
            let mut call = FanoutCall::broadcast(method, payload.clone())
                .quorum(QuorumPolicy::Threshold(outstanding));
            if let Some(t) = &targets {
                call = call.targets(t.clone());
            }
            let report = self.fanout(&call)?;
            for (d, resp) in report.successes() {
                if collected.len() >= need {
                    break;
                }
                if let Some(value) = validate(d, resp) {
                    collected.push(value);
                }
            }
            // Only domains whose answers were abandoned (quorum met
            // before they replied) are worth re-asking; everyone else has
            // already answered or failed.
            let retry = report.abandoned();
            if collected.len() >= need || retry.is_empty() {
                return Ok(collected);
            }
            targets = Some(retry);
        }
    }

    fn response_outcome(result: Result<Response, ClientError>) -> DomainOutcome {
        match result {
            Ok(Response::AppResult { payload }) => DomainOutcome::Ok(payload),
            Ok(Response::AppError(e)) => DomainOutcome::AppError(e),
            Ok(other) => DomainOutcome::Failed(format!("unexpected response: {other:?}")),
            Err(e) => Self::error_outcome(e),
        }
    }

    fn error_outcome(e: ClientError) -> DomainOutcome {
        match e {
            ClientError::ConnectionLost(e) => DomainOutcome::ConnectionLost(e.to_string()),
            other => DomainOutcome::Failed(other.to_string()),
        }
    }
}
