//! The client ↔ trust-domain wire protocol.
//!
//! Every interaction in Figure 2 — audits, application calls, update
//! pushes, log queries — is one of these explicit message types, encoded
//! with the deterministic codec (hashes and signatures must be reproducible
//! on both ends).

use crate::manifest::{ReleaseManifest, SignedRelease};
use distrust_gossip::envelope::GossipEnvelope;
use distrust_gossip::witness::CosignedHeads;
use distrust_log::batch::CheckpointBundle;
use distrust_log::checkpoint::SignedCheckpoint;
use distrust_log::merkle::ConsistencyProof;
use distrust_log::shard::ShardBundle;
use distrust_tee::attest::Quote;
use distrust_wire::codec::{decode_seq, encode_seq, Decode, DecodeError, Encode};
use distrust_wire::wire_struct;

/// A request to a trust domain.
///
/// `Update` dwarfs the other variants (it carries whole module bytes);
/// requests are built once and serialized immediately, so boxing would
/// only add indirection.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum Request {
    /// Request an attestation quote binding `nonce` (freshness) together
    /// with the domain's current log head and app digest.
    Attest {
        /// Client-chosen freshness nonce.
        nonce: [u8; 32],
    },
    /// Request the domain's unauthenticated status snapshot.
    GetStatus,
    /// Invoke the application.
    AppCall {
        /// Method selector passed to the guest's `handle` export.
        method: u64,
        /// Opaque payload copied into the guest inbox.
        payload: Vec<u8>,
    },
    /// Push a developer-signed code update (Figure 2, left).
    Update {
        /// The signed release.
        release: SignedRelease,
    },
    /// Request a signed checkpoint of the code-digest log.
    GetCheckpoint,
    /// Request a consistency proof from `old_size` to the current log.
    GetConsistency {
        /// Size the client last verified.
        old_size: u64,
    },
    /// Fetch log leaves `[from, current)` for replay/inspection. On
    /// multi-shard domains the response is the shard-order flattening and
    /// only `from = 0` is served (the flattening is not append-only, so
    /// incremental offsets would silently skip entries — incremental
    /// readers use [`Request::GetShardEntries`], which is append-only
    /// within its shard). 1-shard domains keep the legacy semantics
    /// exactly.
    GetLogEntries {
        /// First index to return.
        from: u64,
    },
    /// Fetch update notices issued at or after `since` (log index).
    GetNotices {
        /// First notice index of interest.
        since: u64,
    },
    /// One-round-trip audit: attestation + latest checkpoint(s) + a range
    /// consistency proof from `verified_size`, all in a single response
    /// ([`Response::AuditBundle`]). Replaces the per-step
    /// `Attest`/`GetCheckpoint`/`GetConsistency` sequence for servers that
    /// understand it; old servers answer with an error and the client
    /// falls back to the per-step path.
    BatchAudit {
        /// Client-chosen id echoed in the response, so several audits can
        /// be pipelined over one connection and matched back.
        request_id: u64,
        /// Client-chosen freshness nonce (bound into the TEE quote).
        nonce: [u8; 32],
        /// Log size the client last verified (0 = nothing verified); the
        /// proof bundle links from here to the current log head.
        verified_size: u64,
    },
    /// Fetch leaves `[from, len)` of one **shard** of a sharded log.
    /// Single-shard domains treat shard 0 exactly like
    /// [`Request::GetLogEntries`]; old servers answer with an error and
    /// the client falls back to the legacy request for shard 0.
    GetShardEntries {
        /// Shard index.
        shard: u32,
        /// First in-shard index to return.
        from: u64,
    },
    /// Epidemic checkpoint exchange: the sender's latest signed heads and
    /// any transferable misbehavior evidence it holds. Answered with
    /// [`Response::Gossip`] carrying the receiver's view, so every
    /// exchange compares notes in both directions. Old servers answer
    /// with an error; gossip is best-effort, so senders just move on.
    Gossip {
        /// What the sender knows.
        envelope: GossipEnvelope,
    },
    /// Ask a witness relay for the latest threshold-cosigned head set —
    /// one response covers all `n` domains for thin clients. Domains
    /// themselves answer `cosigned: None` (they do not cosign their own
    /// heads); only witness relays serve `Some`.
    WitnessHead,
}

impl Encode for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Attest { nonce } => {
                0u8.encode(out);
                nonce.encode(out);
            }
            Request::GetStatus => 1u8.encode(out),
            Request::AppCall { method, payload } => {
                2u8.encode(out);
                method.encode(out);
                payload.encode(out);
            }
            Request::Update { release } => {
                3u8.encode(out);
                release.encode(out);
            }
            Request::GetCheckpoint => 4u8.encode(out),
            Request::GetConsistency { old_size } => {
                5u8.encode(out);
                old_size.encode(out);
            }
            Request::GetLogEntries { from } => {
                6u8.encode(out);
                from.encode(out);
            }
            Request::GetNotices { since } => {
                7u8.encode(out);
                since.encode(out);
            }
            Request::BatchAudit {
                request_id,
                nonce,
                verified_size,
            } => {
                8u8.encode(out);
                request_id.encode(out);
                nonce.encode(out);
                verified_size.encode(out);
            }
            Request::GetShardEntries { shard, from } => {
                9u8.encode(out);
                shard.encode(out);
                from.encode(out);
            }
            Request::Gossip { envelope } => {
                10u8.encode(out);
                envelope.encode(out);
            }
            Request::WitnessHead => 11u8.encode(out),
        }
    }
}

impl Request {
    /// Encodes an [`Request::Update`] frame for `release` without cloning
    /// the release into a `Request` first — update fan-out sends the same
    /// bytes to every domain, and module bytes dwarf everything else.
    /// Kept in lockstep with the `Encode` impl above (asserted by test).
    pub fn encode_update(release: &SignedRelease) -> Vec<u8> {
        let mut out = Vec::new();
        3u8.encode(&mut out);
        release.encode(&mut out);
        out
    }
}

impl Decode for Request {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(match u8::decode(input)? {
            0 => Request::Attest {
                nonce: Decode::decode(input)?,
            },
            1 => Request::GetStatus,
            2 => Request::AppCall {
                method: Decode::decode(input)?,
                payload: Decode::decode(input)?,
            },
            3 => Request::Update {
                release: Decode::decode(input)?,
            },
            4 => Request::GetCheckpoint,
            5 => Request::GetConsistency {
                old_size: Decode::decode(input)?,
            },
            6 => Request::GetLogEntries {
                from: Decode::decode(input)?,
            },
            7 => Request::GetNotices {
                since: Decode::decode(input)?,
            },
            8 => Request::BatchAudit {
                request_id: Decode::decode(input)?,
                nonce: Decode::decode(input)?,
                verified_size: Decode::decode(input)?,
            },
            9 => Request::GetShardEntries {
                shard: Decode::decode(input)?,
                from: Decode::decode(input)?,
            },
            10 => Request::Gossip {
                envelope: Decode::decode(input)?,
            },
            11 => Request::WitnessHead,
            other => return Err(DecodeError::InvalidTag(other)),
        })
    }
}

/// A domain's status snapshot (authenticated only when carried inside
/// attestation `user_data`; the plain response is advisory).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainStatus {
    /// Index of this domain within the deployment.
    pub domain_index: u32,
    /// Digest of the currently running application module.
    pub app_digest: [u8; 32],
    /// Version of the currently running application.
    pub app_version: u64,
    /// Number of entries in the code-digest log.
    pub log_size: u64,
    /// Merkle root of the code-digest log.
    pub log_head: [u8; 32],
    /// Measurement of the framework itself (what the TEE attests).
    pub framework_measurement: [u8; 32],
}

wire_struct!(DomainStatus {
    domain_index: u32,
    app_digest: [u8; 32],
    app_version: u64,
    log_size: u64,
    log_head: [u8; 32],
    framework_measurement: [u8; 32],
});

/// The attestation binding: what the framework packs into quote
/// `user_data` so the client can tie nonce + status together.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttestationBinding {
    /// Echo of the client's nonce.
    pub nonce: [u8; 32],
    /// The status snapshot being attested.
    pub status: DomainStatus,
}

wire_struct!(AttestationBinding {
    nonce: [u8; 32],
    status: DomainStatus,
});

/// A notice that an update was applied (issued *before* the new code
/// serves its first request, per §4.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateNotice {
    /// Manifest of the release that was activated.
    pub manifest: ReleaseManifest,
    /// Index of the release's leaf in the code-digest log — within the
    /// shard the releasing app routes to. Appends route by app id, so one
    /// app's notices carry strictly increasing indices into one shard
    /// (`ShardedLog::shard_for(app_name)` recovers which); on a 1-shard
    /// log this is the plain global index, as it always was.
    pub log_index: u64,
    /// Domain-local logical time of activation.
    pub logical_time: u64,
}

wire_struct!(UpdateNotice {
    manifest: ReleaseManifest,
    log_index: u64,
    logical_time: u64,
});

/// The attestation half of an [`AuditBundle`]: how the domain vouches for
/// the status snapshot it reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BundleAttestation {
    /// TEE quote whose `user_data` carries the [`AttestationBinding`]
    /// (nonce + status) — authoritative for TEE-backed domains.
    Quote(Box<Quote>),
    /// Plain status for trust domain 0, which has no secure hardware;
    /// advisory, exactly like [`Response::Unattested`].
    Unattested(DomainStatus),
}

impl Encode for BundleAttestation {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BundleAttestation::Quote(q) => {
                0u8.encode(out);
                q.encode(out);
            }
            BundleAttestation::Unattested(s) => {
                1u8.encode(out);
                s.encode(out);
            }
        }
    }
}

impl Decode for BundleAttestation {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(match u8::decode(input)? {
            0 => BundleAttestation::Quote(Box::new(Decode::decode(input)?)),
            1 => BundleAttestation::Unattested(Decode::decode(input)?),
            other => return Err(DecodeError::InvalidTag(other)),
        })
    }
}

/// Everything one audit round needs from one domain, in one response:
/// attestation, the signed checkpoint(s) since the client's verified
/// prefix, and the consistency proof bundle linking them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditBundle {
    /// Echo of the request id, so pipelined audits match up.
    pub request_id: u64,
    /// Quote (TEE domains) or plain status (domain 0).
    pub attestation: BundleAttestation,
    /// Signed checkpoints + range proof from the client's verified size.
    pub bundle: CheckpointBundle,
}

wire_struct!(AuditBundle {
    request_id: u64,
    attestation: BundleAttestation,
    bundle: CheckpointBundle,
});

/// The sharded-log answer to [`Request::BatchAudit`]: attestation plus a
/// [`ShardBundle`] (per-epoch shard snapshots and per-shard consistency
/// runs). Served only by domains whose log has more than one shard —
/// 1-shard domains answer with the byte-compatible [`AuditBundle`], so
/// old clients never see this variant unless they audit a multi-shard
/// deployment (which no old deployment can be).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardAuditBundle {
    /// Echo of the request id, so pipelined audits match up.
    pub request_id: u64,
    /// Quote (TEE domains) or plain status (domain 0).
    pub attestation: BundleAttestation,
    /// Epoch snapshots + per-shard proof runs from the client's verified
    /// epoch.
    pub bundle: ShardBundle,
}

wire_struct!(ShardAuditBundle {
    request_id: u64,
    attestation: BundleAttestation,
    bundle: ShardBundle,
});

/// A response from a trust domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Attestation quote (TEE-backed domains).
    Quote(Box<Quote>),
    /// Status signed by nothing — returned by trust domain 0, which has no
    /// secure hardware (Figure 2). Clients treat it as advisory.
    Unattested(DomainStatus),
    /// Status snapshot.
    Status(DomainStatus),
    /// Application call result.
    AppResult {
        /// Bytes the guest wrote to its outbox.
        payload: Vec<u8>,
    },
    /// Application call failed (trap, oversized payload, …).
    AppError(String),
    /// Update accepted and activated.
    UpdateAck {
        /// New log size after appending the release.
        log_size: u64,
        /// Digest of the now-running code.
        digest: [u8; 32],
    },
    /// Update rejected (bad signature, stale version, …).
    UpdateRejected(String),
    /// Signed log checkpoint.
    Checkpoint(SignedCheckpoint),
    /// Consistency proof.
    Consistency(ConsistencyProof),
    /// Raw log leaves.
    LogEntries(Vec<Vec<u8>>),
    /// Update notices.
    Notices(Vec<UpdateNotice>),
    /// Generic error.
    Error(String),
    /// Batched audit: attestation + checkpoints + range proof in one
    /// round-trip (answers [`Request::BatchAudit`]).
    AuditBundle(Box<AuditBundle>),
    /// Sharded batched audit: attestation + epoch shard snapshots +
    /// per-shard proof runs (answers [`Request::BatchAudit`] on domains
    /// whose log has more than one shard).
    ShardAuditBundle(Box<ShardAuditBundle>),
    /// The receiver's side of a gossip exchange (answers
    /// [`Request::Gossip`]): its latest signed heads plus any evidence it
    /// holds. Contents are claims — the receiving party verifies every
    /// head and evidence bundle against its own pinned keys.
    Gossip {
        /// What the responder knows.
        envelope: GossipEnvelope,
    },
    /// The latest threshold-cosigned head set a witness relay holds, or
    /// `None` when no quorum has formed yet (answers
    /// [`Request::WitnessHead`]).
    WitnessHead {
        /// The aggregated quorum cosignature over all domains' heads.
        cosigned: Option<CosignedHeads>,
    },
}

impl Encode for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Quote(q) => {
                0u8.encode(out);
                q.encode(out);
            }
            Response::Unattested(s) => {
                1u8.encode(out);
                s.encode(out);
            }
            Response::Status(s) => {
                2u8.encode(out);
                s.encode(out);
            }
            Response::AppResult { payload } => {
                3u8.encode(out);
                payload.encode(out);
            }
            Response::AppError(e) => {
                4u8.encode(out);
                e.encode(out);
            }
            Response::UpdateAck { log_size, digest } => {
                5u8.encode(out);
                log_size.encode(out);
                digest.encode(out);
            }
            Response::UpdateRejected(e) => {
                6u8.encode(out);
                e.encode(out);
            }
            Response::Checkpoint(c) => {
                7u8.encode(out);
                c.encode(out);
            }
            Response::Consistency(p) => {
                8u8.encode(out);
                p.old_size.encode(out);
                p.new_size.encode(out);
                encode_seq(&p.path, out);
            }
            Response::LogEntries(entries) => {
                9u8.encode(out);
                encode_seq(entries, out);
            }
            Response::Notices(notices) => {
                10u8.encode(out);
                encode_seq(notices, out);
            }
            Response::Error(e) => {
                11u8.encode(out);
                e.encode(out);
            }
            Response::AuditBundle(b) => {
                12u8.encode(out);
                b.encode(out);
            }
            Response::ShardAuditBundle(b) => {
                13u8.encode(out);
                b.encode(out);
            }
            Response::Gossip { envelope } => {
                14u8.encode(out);
                envelope.encode(out);
            }
            Response::WitnessHead { cosigned } => {
                15u8.encode(out);
                cosigned.encode(out);
            }
        }
    }
}

impl Response {
    /// Cheaply extracts the echoed request id from an encoded audit
    /// answer without a full decode — [`Response::AuditBundle`] (tag 12)
    /// and [`Response::ShardAuditBundle`] (tag 13) lay out `request_id`
    /// identically right after the tag byte (see the `Encode` impl above;
    /// keep them in sync). This is the peek pipelined audit clients match
    /// responses with: a client cannot know in advance whether a domain's
    /// log is sharded, so matching only one tag would park the other
    /// shape's frames forever. Returns `None` for every other response,
    /// including the error frames old servers answer with.
    pub fn peek_request_id(frame: &[u8]) -> Option<u64> {
        match frame.split_first() {
            Some((&12, rest)) | Some((&13, rest)) => {
                Some(u64::from_le_bytes(rest.get(..8)?.try_into().ok()?))
            }
            _ => None,
        }
    }
}

impl Decode for Response {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(match u8::decode(input)? {
            0 => Response::Quote(Box::new(Decode::decode(input)?)),
            1 => Response::Unattested(Decode::decode(input)?),
            2 => Response::Status(Decode::decode(input)?),
            3 => Response::AppResult {
                payload: Decode::decode(input)?,
            },
            4 => Response::AppError(Decode::decode(input)?),
            5 => Response::UpdateAck {
                log_size: Decode::decode(input)?,
                digest: Decode::decode(input)?,
            },
            6 => Response::UpdateRejected(Decode::decode(input)?),
            7 => Response::Checkpoint(Decode::decode(input)?),
            8 => Response::Consistency(ConsistencyProof {
                old_size: Decode::decode(input)?,
                new_size: Decode::decode(input)?,
                path: decode_seq(input)?,
            }),
            9 => Response::LogEntries(decode_seq(input)?),
            10 => Response::Notices(decode_seq(input)?),
            11 => Response::Error(Decode::decode(input)?),
            12 => Response::AuditBundle(Box::new(Decode::decode(input)?)),
            13 => Response::ShardAuditBundle(Box::new(Decode::decode(input)?)),
            14 => Response::Gossip {
                envelope: Decode::decode(input)?,
            },
            15 => Response::WitnessHead {
                cosigned: Decode::decode(input)?,
            },
            other => return Err(DecodeError::InvalidTag(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrust_crypto::schnorr::SigningKey;
    use distrust_sandbox::guests::counter_module;

    fn status() -> DomainStatus {
        DomainStatus {
            domain_index: 2,
            app_digest: [1; 32],
            app_version: 3,
            log_size: 4,
            log_head: [5; 32],
            framework_measurement: [6; 32],
        }
    }

    #[test]
    fn requests_round_trip() {
        let dev = SigningKey::derive(b"proto", b"dev");
        let release =
            crate::manifest::SignedRelease::create("app", 1, "", &counter_module(1), &dev);
        let requests = vec![
            Request::Attest { nonce: [9; 32] },
            Request::GetStatus,
            Request::AppCall {
                method: 7,
                payload: b"payload".to_vec(),
            },
            Request::Update { release },
            Request::GetCheckpoint,
            Request::GetConsistency { old_size: 3 },
            Request::GetLogEntries { from: 1 },
            Request::GetNotices { since: 2 },
            Request::BatchAudit {
                request_id: 42,
                nonce: [7; 32],
                verified_size: 5,
            },
            Request::GetShardEntries { shard: 3, from: 9 },
        ];
        for req in requests {
            let wire = req.to_wire();
            assert_eq!(Request::from_wire(&wire), Ok(req));
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::Unattested(status()),
            Response::Status(status()),
            Response::AppResult {
                payload: vec![1, 2, 3],
            },
            Response::AppError("trap".into()),
            Response::UpdateAck {
                log_size: 2,
                digest: [3; 32],
            },
            Response::UpdateRejected("stale".into()),
            Response::Consistency(ConsistencyProof {
                old_size: 1,
                new_size: 2,
                path: vec![[7; 32]],
            }),
            Response::LogEntries(vec![b"leaf".to_vec()]),
            Response::Notices(vec![UpdateNotice {
                manifest: ReleaseManifest {
                    app_name: "app".into(),
                    version: 2,
                    code_digest: [8; 32],
                    notes: "notes".into(),
                    locks_updates: false,
                },
                log_index: 1,
                logical_time: 10,
            }]),
            Response::Error("nope".into()),
            Response::AuditBundle(Box::new(sample_audit_bundle())),
            Response::ShardAuditBundle(Box::new(sample_shard_audit_bundle())),
        ];
        for resp in responses {
            let wire = resp.to_wire();
            assert_eq!(Response::from_wire(&wire), Ok(resp));
        }
    }

    fn sample_audit_bundle() -> AuditBundle {
        use distrust_log::checkpoint::{CheckpointBody, SignedCheckpoint};
        use distrust_log::merkle::MerkleLog;
        let sk = SigningKey::derive(b"proto", b"cp");
        let mut log = MerkleLog::new();
        let mut checkpoints = Vec::new();
        for i in 0..3u64 {
            log.append(format!("v{i}").as_bytes());
            checkpoints.push(SignedCheckpoint::sign(
                CheckpointBody {
                    log_id: [3; 32],
                    size: log.len() as u64,
                    head: log.root(),
                    logical_time: i + 1,
                },
                &sk,
            ));
        }
        let proof = log.prove_consistency_range(&[1, 2, 3]).unwrap();
        AuditBundle {
            request_id: 9,
            attestation: BundleAttestation::Unattested(status()),
            bundle: distrust_log::batch::CheckpointBundle { checkpoints, proof },
        }
    }

    fn sample_shard_audit_bundle() -> ShardAuditBundle {
        use distrust_log::checkpoint::{CheckpointBody, SignedCheckpoint};
        use distrust_log::shard::{ShardEpoch, ShardedLog};
        let sk = SigningKey::derive(b"proto", b"shard-cp");
        let log = ShardedLog::new(3);
        let mut epochs = Vec::new();
        let mut snaps = Vec::new();
        for i in 0..4u64 {
            log.append((i % 3) as u32, format!("v{i}").as_bytes())
                .unwrap();
            let snap = log.snapshot();
            epochs.push(ShardEpoch {
                checkpoint: SignedCheckpoint::sign(
                    CheckpointBody {
                        log_id: [3; 32],
                        size: snap.total(),
                        head: snap.commitment(),
                        logical_time: i + 1,
                    },
                    &sk,
                ),
                shards: snap.clone(),
            });
            snaps.push(snap);
        }
        let refs: Vec<&distrust_log::shard::ShardSnapshot> = snaps.iter().collect();
        let proof = log.prove_shard_runs(&[0, 0, 0], &refs).unwrap();
        ShardAuditBundle {
            request_id: 11,
            attestation: BundleAttestation::Unattested(status()),
            bundle: ShardBundle { epochs, proof },
        }
    }

    #[test]
    fn encode_update_matches_enum_encoding() {
        let dev = SigningKey::derive(b"proto", b"dev2");
        let release =
            crate::manifest::SignedRelease::create("app", 3, "notes", &counter_module(2), &dev);
        assert_eq!(
            Request::encode_update(&release),
            Request::Update { release }.to_wire()
        );
    }

    #[test]
    fn request_id_peek_agrees_with_full_decode() {
        let bundle = sample_audit_bundle();
        let id = bundle.request_id;
        let wire = Response::AuditBundle(Box::new(bundle)).to_wire();
        assert_eq!(Response::peek_request_id(&wire), Some(id));
        // The sharded answer peeks identically.
        let sharded = sample_shard_audit_bundle();
        let sid = sharded.request_id;
        let swire = Response::ShardAuditBundle(Box::new(sharded)).to_wire();
        assert_eq!(Response::peek_request_id(&swire), Some(sid));
        // Non-bundle responses and short frames peek to None.
        assert_eq!(
            Response::peek_request_id(&Response::Error("x".into()).to_wire()),
            None
        );
        assert_eq!(Response::peek_request_id(&[12, 1, 2]), None);
        assert_eq!(Response::peek_request_id(&[13, 1, 2]), None);
        assert_eq!(Response::peek_request_id(&[]), None);
    }

    #[test]
    fn audit_bundle_truncation_rejected_at_every_cut() {
        let wire = Response::AuditBundle(Box::new(sample_audit_bundle())).to_wire();
        for cut in 0..wire.len() {
            assert!(
                Response::from_wire(&wire[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn shard_audit_bundle_truncation_rejected_at_every_cut() {
        let wire = Response::ShardAuditBundle(Box::new(sample_shard_audit_bundle())).to_wire();
        for cut in 0..wire.len() {
            assert!(
                Response::from_wire(&wire[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn binding_round_trip() {
        let binding = AttestationBinding {
            nonce: [0xaa; 32],
            status: status(),
        };
        assert_eq!(
            AttestationBinding::from_wire(&binding.to_wire()),
            Ok(binding)
        );
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(Request::from_wire(&[99]).is_err());
        assert!(Response::from_wire(&[99]).is_err());
        assert!(Request::from_wire(&[]).is_err());
    }

    fn sample_gossip_envelope() -> GossipEnvelope {
        use distrust_gossip::envelope::GossipHead;
        use distrust_gossip::evidence::EvidenceBundle;
        use distrust_log::checkpoint::{CheckpointBody, EquivocationProof, SignedCheckpoint};
        let sk = SigningKey::derive(b"proto", b"gossip");
        let cp = |size: u64, fill: u8| {
            SignedCheckpoint::sign(
                CheckpointBody {
                    log_id: [4; 32],
                    size,
                    head: [fill; 32],
                    logical_time: size,
                },
                &sk,
            )
        };
        GossipEnvelope {
            heads: vec![GossipHead {
                domain: 1,
                checkpoint: cp(6, 0x11),
            }],
            evidence: vec![EvidenceBundle {
                domain: 2,
                proof: EquivocationProof {
                    a: cp(3, 0x22),
                    b: cp(3, 0x33),
                },
            }],
        }
    }

    fn sample_cosigned_heads() -> distrust_gossip::witness::CosignedHeads {
        use distrust_crypto::drbg::HmacDrbg;
        use distrust_crypto::threshold::{generate, partial_sign};
        use distrust_gossip::witness::cosign_signing_bytes;
        use distrust_log::checkpoint::CheckpointBody;
        let tk = generate(1, 1, &mut HmacDrbg::new(b"proto", b"witness")).unwrap();
        let heads = vec![CheckpointBody {
            log_id: [5; 32],
            size: 7,
            head: [6; 32],
            logical_time: 7,
        }];
        let partial = partial_sign(&tk.shares[0], &cosign_signing_bytes(&heads));
        distrust_gossip::witness::CosignedHeads {
            heads,
            signature: partial.value,
        }
    }

    #[test]
    fn gossip_and_witness_head_round_trip() {
        let requests = vec![
            Request::Gossip {
                envelope: sample_gossip_envelope(),
            },
            Request::Gossip {
                envelope: GossipEnvelope::empty(),
            },
            Request::WitnessHead,
        ];
        for req in requests {
            assert_eq!(Request::from_wire(&req.to_wire()), Ok(req));
        }
        let responses = vec![
            Response::Gossip {
                envelope: sample_gossip_envelope(),
            },
            Response::WitnessHead {
                cosigned: Some(sample_cosigned_heads()),
            },
            Response::WitnessHead { cosigned: None },
        ];
        for resp in responses {
            assert_eq!(Response::from_wire(&resp.to_wire()), Ok(resp));
        }
    }

    #[test]
    fn gossip_truncation_rejected_at_every_cut() {
        let req_wire = Request::Gossip {
            envelope: sample_gossip_envelope(),
        }
        .to_wire();
        for cut in 0..req_wire.len() {
            assert!(
                Request::from_wire(&req_wire[..cut]).is_err(),
                "request truncation at {cut} must not decode"
            );
        }
        let resp_wire = Response::Gossip {
            envelope: sample_gossip_envelope(),
        }
        .to_wire();
        for cut in 0..resp_wire.len() {
            assert!(
                Response::from_wire(&resp_wire[..cut]).is_err(),
                "response truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn witness_head_truncation_rejected_at_every_cut() {
        let wire = Response::WitnessHead {
            cosigned: Some(sample_cosigned_heads()),
        }
        .to_wire();
        for cut in 0..wire.len() {
            assert!(
                Response::from_wire(&wire[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }
}
