//! Transferable misbehavior evidence.
//!
//! An equivocation proof is the paper's "publicly verifiable proof of
//! misbehavior" (§1): two checkpoints signed by the same domain key over
//! the same `(log_id, size)` with different heads. [`EvidenceBundle`]
//! makes the proof *routable* — it names the offending domain so a
//! receiver knows which pinned key to verify it against — and
//! [`EvidencePool`] keeps a bounded, deduplicated set of bundles for
//! re-gossiping, so one detection poisons the domain everywhere the mesh
//! reaches.

use distrust_crypto::schnorr::VerifyingKey;
use distrust_crypto::sha256::Digest;
use distrust_log::auditor::Misbehavior;
use distrust_log::checkpoint::EquivocationProof;
use distrust_wire::codec::Encode;
use distrust_wire::wire_struct;
use std::collections::HashSet;

/// Most evidence bundles a pool retains (and re-gossips). One valid
/// bundle per domain already convicts it; the headroom exists so
/// conflicting proofs from independent observers are not dropped while
/// propagating. Beyond the cap, inserts are refused — a flooder cannot
/// grow a peer's memory.
pub const MAX_EVIDENCE_POOL: usize = 64;

/// A transferable accusation: *this* domain signed the two conflicting
/// checkpoints inside.
///
/// Verification needs nothing but the domain's pinned checkpoint key, so
/// a bundle that arrived through any number of untrusted hops is exactly
/// as convincing as one produced locally. Invalid bundles (wrong key, no
/// actual conflict) are discarded on ingest without effect — a hostile
/// peer cannot frame an honest domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvidenceBundle {
    /// Index of the accused domain within the deployment.
    pub domain: u32,
    /// The equivocation proof (self-contained, signature-carrying).
    pub proof: EquivocationProof,
}

wire_struct!(EvidenceBundle {
    domain: u32,
    proof: EquivocationProof,
});

impl EvidenceBundle {
    /// Extracts the transferable form of a [`Misbehavior`], when it has
    /// one. Only equivocation is transferable: the other variants
    /// (rollback, refused proofs, malformed bundles) convince the client
    /// that observed them but carry no third-party-checkable signature
    /// conflict.
    pub fn from_misbehavior(m: &Misbehavior) -> Option<Self> {
        match m {
            Misbehavior::Equivocation { domain, proof } => Some(Self {
                domain: *domain,
                proof: proof.clone(),
            }),
            _ => None,
        }
    }

    /// Verifies the accusation against the accused domain's checkpoint
    /// key. `true` means the key provably signed two conflicting views.
    pub fn verify(&self, key: &VerifyingKey) -> bool {
        self.proof.verify(key)
    }

    /// Content hash used for pool deduplication.
    pub fn dedup_key(&self) -> Digest {
        distrust_crypto::sha256(&self.to_wire())
    }
}

/// A bounded, deduplicated set of verified evidence bundles.
///
/// The pool stores only bundles the owner has already verified (callers
/// verify before inserting); it exists to remember and re-gossip them.
#[derive(Default)]
pub struct EvidencePool {
    seen: HashSet<Digest>,
    items: Vec<EvidenceBundle>,
}

impl EvidencePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a bundle. Returns `true` when it is new (not a duplicate,
    /// pool not full) — the signal that it is worth re-gossiping.
    pub fn insert(&mut self, bundle: EvidenceBundle) -> bool {
        if self.items.len() >= MAX_EVIDENCE_POOL {
            return false;
        }
        if !self.seen.insert(bundle.dedup_key()) {
            return false;
        }
        self.items.push(bundle);
        true
    }

    /// The bundles held, in insertion order.
    pub fn items(&self) -> &[EvidenceBundle] {
        &self.items
    }

    /// Whether the pool holds evidence against `domain`.
    pub fn convicts(&self, domain: u32) -> bool {
        self.items.iter().any(|b| b.domain == domain)
    }

    /// Domains the pool holds evidence against, ascending, deduplicated.
    pub fn convicted_domains(&self) -> Vec<u32> {
        let mut domains: Vec<u32> = self.items.iter().map(|b| b.domain).collect();
        domains.sort_unstable();
        domains.dedup();
        domains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrust_crypto::schnorr::SigningKey;
    use distrust_log::checkpoint::{log_id, CheckpointBody, SignedCheckpoint};
    use distrust_wire::codec::Decode;

    fn conflicting_proof(sk: &SigningKey) -> EquivocationProof {
        let body = |head: u8| CheckpointBody {
            log_id: log_id(b"evidence-tests", 1),
            size: 4,
            head: [head; 32],
            logical_time: 4,
        };
        EquivocationProof {
            a: SignedCheckpoint::sign(body(0xaa), sk),
            b: SignedCheckpoint::sign(body(0xbb), sk),
        }
    }

    #[test]
    fn bundle_round_trips_and_stays_verifiable() {
        let sk = SigningKey::derive(b"evidence", b"equivocator");
        let bundle = EvidenceBundle {
            domain: 1,
            proof: conflicting_proof(&sk),
        };
        let wire = bundle.to_wire();
        let back = EvidenceBundle::from_wire(&wire).unwrap();
        assert_eq!(back, bundle);
        assert!(back.verify(&sk.verifying_key()));
        // A bundle cannot frame a key that signed neither checkpoint.
        let other = SigningKey::derive(b"evidence", b"honest").verifying_key();
        assert!(!back.verify(&other));
    }

    #[test]
    fn from_misbehavior_extracts_only_equivocation() {
        let sk = SigningKey::derive(b"evidence", b"equivocator");
        let proof = conflicting_proof(&sk);
        let m = Misbehavior::Equivocation {
            domain: 2,
            proof: proof.clone(),
        };
        assert_eq!(
            EvidenceBundle::from_misbehavior(&m),
            Some(EvidenceBundle { domain: 2, proof })
        );
        let m = Misbehavior::Rollback {
            domain: 2,
            trusted_size: 5,
            offered_size: 3,
        };
        assert_eq!(EvidenceBundle::from_misbehavior(&m), None);
    }

    #[test]
    fn pool_dedups_and_caps() {
        let sk = SigningKey::derive(b"evidence", b"equivocator");
        let bundle = EvidenceBundle {
            domain: 0,
            proof: conflicting_proof(&sk),
        };
        let mut pool = EvidencePool::new();
        assert!(pool.insert(bundle.clone()));
        assert!(!pool.insert(bundle.clone()), "duplicate must be refused");
        assert_eq!(pool.items().len(), 1);
        assert!(pool.convicts(0));
        assert!(!pool.convicts(1));
        assert_eq!(pool.convicted_domains(), vec![0]);
        // Fill to the cap with distinct bundles (different domain index
        // changes the dedup key).
        for d in 1..MAX_EVIDENCE_POOL as u32 {
            let mut b = bundle.clone();
            b.domain = d;
            assert!(pool.insert(b));
        }
        let mut overflow = bundle.clone();
        overflow.domain = MAX_EVIDENCE_POOL as u32 + 7;
        assert!(!pool.insert(overflow), "pool past cap must refuse");
        assert_eq!(pool.items().len(), MAX_EVIDENCE_POOL);
    }
}
