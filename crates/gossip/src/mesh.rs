//! Deterministic in-process gossip mesh.
//!
//! [`GossipNode`] is one honest auditor's gossip state: a verified view
//! of every domain's checkpoints, the best (largest) verified head per
//! domain for re-gossiping, and a pool of transferable evidence.
//! [`Mesh`] wires nodes into an arbitrary undirected topology and runs
//! *synchronous rounds*: each round snapshots every node's envelope,
//! then delivers each snapshot along every edge in both directions. No
//! sockets, no clocks, no sleeps — the same inputs always produce the
//! same verdicts, which is what lets the convergence property test make
//! an exact O(diameter) claim: a head crosses one edge per round, so two
//! conflicting views meet within `dist(a, b)` rounds and the resulting
//! evidence floods back out within `diameter` more.

use crate::envelope::{GossipEnvelope, GossipHead};
use crate::evidence::{EvidenceBundle, EvidencePool};
use distrust_crypto::schnorr::VerifyingKey;
use distrust_log::auditor::{AuditOutcome, Auditor, Misbehavior};
use distrust_log::checkpoint::SignedCheckpoint;
use std::collections::BTreeMap;

/// One honest auditor participating in the gossip mesh.
pub struct GossipNode {
    keys: Vec<VerifyingKey>,
    auditor: Auditor,
    /// Best verified head per domain, kept separately from the auditor:
    /// [`Auditor::gossip_payload`] only exports *directly observed*
    /// checkpoints, while a mesh node must also re-gossip heads it
    /// learned second-hand for them to flood beyond one hop.
    best: BTreeMap<u32, SignedCheckpoint>,
    pool: EvidencePool,
}

impl GossipNode {
    /// A node auditing a deployment whose domains checkpoint-sign with
    /// `keys` (indexed by domain).
    pub fn new(keys: Vec<VerifyingKey>) -> Self {
        let auditor = Auditor::new(keys.clone());
        Self {
            keys,
            auditor,
            best: BTreeMap::new(),
            pool: EvidencePool::new(),
        }
    }

    /// Feeds one checkpoint into the node's verified view — either a
    /// direct observation (the node talked to the domain itself) or a
    /// relayed head. Invalid signatures are dropped; a conflict with
    /// anything previously seen at the same size yields transferable
    /// evidence, which the node keeps and will re-gossip.
    pub fn observe_checkpoint(&mut self, domain: u32, checkpoint: SignedCheckpoint) {
        match self.auditor.ingest_gossip(domain, checkpoint.clone()) {
            AuditOutcome::Consistent => {
                let better = self
                    .best
                    .get(&domain)
                    .is_none_or(|cur| checkpoint.body.size > cur.body.size);
                if better {
                    self.best.insert(domain, checkpoint);
                }
            }
            AuditOutcome::Misbehavior(m) => self.record_misbehavior(&m),
        }
    }

    fn record_misbehavior(&mut self, m: &Misbehavior) {
        if let Some(bundle) = EvidenceBundle::from_misbehavior(m) {
            self.pool.insert(bundle);
        }
    }

    /// The envelope this node would send a peer right now: its best
    /// verified head per domain plus all evidence it holds.
    pub fn envelope(&self) -> GossipEnvelope {
        GossipEnvelope {
            heads: self
                .best
                .iter()
                .map(|(&domain, checkpoint)| GossipHead {
                    domain,
                    checkpoint: checkpoint.clone(),
                })
                .collect(),
            evidence: self.pool.items().to_vec(),
        }
    }

    /// Merges a peer's envelope into this node's view. Heads are
    /// verified exactly like direct observations; evidence is verified
    /// against the accused domain's pinned key and dropped if bogus, so
    /// a hostile peer cannot frame an honest domain.
    pub fn ingest(&mut self, envelope: &GossipEnvelope) {
        for head in &envelope.heads {
            self.observe_checkpoint(head.domain, head.checkpoint.clone());
        }
        for bundle in &envelope.evidence {
            let Some(key) = self.keys.get(bundle.domain as usize) else {
                continue;
            };
            if bundle.verify(key) {
                self.pool.insert(bundle.clone());
            }
        }
    }

    /// Whether this node holds verified evidence convicting `domain`.
    pub fn convicted(&self, domain: u32) -> bool {
        self.pool.convicts(domain)
    }

    /// All domains this node holds verified evidence against.
    pub fn convicted_domains(&self) -> Vec<u32> {
        self.pool.convicted_domains()
    }

    /// The evidence this node holds.
    pub fn evidence(&self) -> &[EvidenceBundle] {
        self.pool.items()
    }

    /// The node's auditor (read access, e.g. for cross-checking).
    pub fn auditor(&self) -> &Auditor {
        &self.auditor
    }
}

/// A set of gossip nodes joined by undirected edges, stepped in
/// deterministic synchronous rounds.
pub struct Mesh {
    nodes: Vec<GossipNode>,
    edges: Vec<(usize, usize)>,
}

impl Mesh {
    /// A mesh over `nodes` connected by the undirected `edges`
    /// (self-loops and duplicate edges are tolerated and harmless).
    pub fn new(nodes: Vec<GossipNode>, edges: Vec<(usize, usize)>) -> Self {
        Self { nodes, edges }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the mesh has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Read access to a node.
    pub fn node(&self, i: usize) -> &GossipNode {
        &self.nodes[i]
    }

    /// Mutable access to a node (used to inject direct observations).
    pub fn node_mut(&mut self, i: usize) -> &mut GossipNode {
        &mut self.nodes[i]
    }

    /// Runs one synchronous gossip round: snapshot every node's
    /// envelope, then deliver each snapshot along every edge in both
    /// directions. Snapshot-then-deliver means information moves at most
    /// one hop per round — the property the convergence bound counts on.
    pub fn round(&mut self) {
        let snapshots: Vec<GossipEnvelope> = self.nodes.iter().map(|n| n.envelope()).collect();
        for &(a, b) in &self.edges {
            if a == b {
                continue;
            }
            let env_a = snapshots[a].clone();
            let env_b = snapshots[b].clone();
            self.nodes[b].ingest(&env_a);
            self.nodes[a].ingest(&env_b);
        }
    }

    /// Runs rounds until every node convicts `domain` or `max_rounds`
    /// is exhausted; returns the number of rounds run if converged.
    pub fn converge_on(&mut self, domain: u32, max_rounds: usize) -> Option<usize> {
        for r in 0..=max_rounds {
            if self.nodes.iter().all(|n| n.convicted(domain)) {
                return Some(r);
            }
            if r == max_rounds {
                break;
            }
            self.round();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrust_crypto::schnorr::SigningKey;
    use distrust_log::checkpoint::{log_id, CheckpointBody};

    fn checkpoint(sk: &SigningKey, domain: u32, size: u64, fill: u8) -> SignedCheckpoint {
        SignedCheckpoint::sign(
            CheckpointBody {
                log_id: log_id(b"mesh-tests", domain),
                size,
                head: [fill; 32],
                logical_time: size,
            },
            sk,
        )
    }

    #[test]
    fn split_view_meets_in_the_middle_of_a_path() {
        // Path topology 0—1—2—3—4; node 0 sees fork A, node 4 sees fork
        // B of domain 0. Distance between the views is 4, evidence needs
        // at most the diameter (4) more to flood back out.
        let sk = SigningKey::derive(b"mesh", b"equivocator");
        let keys = vec![sk.verifying_key()];
        let nodes = (0..5).map(|_| GossipNode::new(keys.clone())).collect();
        let edges = vec![(0, 1), (1, 2), (2, 3), (3, 4)];
        let mut mesh = Mesh::new(nodes, edges);
        mesh.node_mut(0)
            .observe_checkpoint(0, checkpoint(&sk, 0, 7, 0xaa));
        mesh.node_mut(4)
            .observe_checkpoint(0, checkpoint(&sk, 0, 7, 0xbb));

        let rounds = mesh
            .converge_on(0, 2 * 4 + 2)
            .expect("all nodes must convict within 2*diameter+2 rounds");
        assert!(rounds <= 8, "path of 5 converged in {rounds} rounds");
        for i in 0..mesh.len() {
            assert!(mesh.node(i).convicted(0));
            // The conviction is transferable: every node's evidence
            // verifies against the domain's key alone.
            assert!(mesh.node(i).evidence().iter().any(|b| b.verify(&keys[0])));
        }
    }

    #[test]
    fn honest_views_never_convict() {
        let sk = SigningKey::derive(b"mesh", b"honest");
        let keys = vec![sk.verifying_key()];
        let nodes = (0..3).map(|_| GossipNode::new(keys.clone())).collect();
        let mut mesh = Mesh::new(nodes, vec![(0, 1), (1, 2)]);
        // Same history, different staleness — lagging is consistent.
        mesh.node_mut(0)
            .observe_checkpoint(0, checkpoint(&sk, 0, 3, 0x33));
        mesh.node_mut(2)
            .observe_checkpoint(0, checkpoint(&sk, 0, 3, 0x33));
        for _ in 0..6 {
            mesh.round();
        }
        for i in 0..mesh.len() {
            assert!(!mesh.node(i).convicted(0));
            assert!(mesh.node(i).evidence().is_empty());
        }
    }

    #[test]
    fn bogus_evidence_cannot_frame_an_honest_domain() {
        let honest = SigningKey::derive(b"mesh", b"honest");
        let framer = SigningKey::derive(b"mesh", b"framer");
        let keys = vec![honest.verifying_key()];
        let mut node = GossipNode::new(keys);
        // Evidence signed by the wrong key: verifies under the framer's
        // key but not under domain 0's pinned key.
        let bogus = EvidenceBundle {
            domain: 0,
            proof: distrust_log::checkpoint::EquivocationProof {
                a: checkpoint(&framer, 0, 2, 0x01),
                b: checkpoint(&framer, 0, 2, 0x02),
            },
        };
        node.ingest(&GossipEnvelope {
            heads: Vec::new(),
            evidence: vec![bogus],
        });
        assert!(!node.convicted(0));
        assert!(node.evidence().is_empty());
    }

    #[test]
    fn second_hand_heads_propagate() {
        // Node 0 observes directly; nodes 1 and 2 learn the head only
        // via gossip, and node 2 only via node 1's re-gossip.
        let sk = SigningKey::derive(b"mesh", b"relay");
        let keys = vec![sk.verifying_key()];
        let nodes = (0..3).map(|_| GossipNode::new(keys.clone())).collect();
        let mut mesh = Mesh::new(nodes, vec![(0, 1), (1, 2)]);
        mesh.node_mut(0)
            .observe_checkpoint(0, checkpoint(&sk, 0, 9, 0x99));
        mesh.round();
        mesh.round();
        let head = mesh.node(2).envelope().heads;
        assert_eq!(head.len(), 1);
        assert_eq!(head[0].checkpoint.body.size, 9);
    }
}
