//! # distrust-gossip
//!
//! The layer that makes "someone is watching" a structural property
//! instead of a per-client hope. The paper's detection guarantee (§3.3)
//! is only as strong as each client's *private* view: a domain that shows
//! client A one history and client B another equivocates undetectably as
//! long as A and B never compare notes. This crate closes that gap, three
//! ways (see GOSSIP.md at the repo root for the full trust model):
//!
//! * [`envelope`] — the epidemic checkpoint-exchange format. A
//!   [`GossipEnvelope`] carries a party's latest signed checkpoint heads
//!   plus any transferable misbehavior evidence it holds; two honest
//!   parties that ever exchange envelopes detect a split view between
//!   them.
//! * [`evidence`] — transferable evidence. An [`EvidenceBundle`] wraps a
//!   [`distrust_log::EquivocationProof`] with the index of the offending
//!   domain; anyone holding the domain's checkpoint key verifies it
//!   offline, so evidence propagates through the mesh and poisons the
//!   equivocating domain *everywhere*, not just at the client that caught
//!   it.
//! * [`witness`] — the witness quorum. `t`-of-`n` witnesses each verify a
//!   deployment's checkpoint heads and emit a BLS partial signature over
//!   them; aggregated ([`QuorumAggregator`]) they form one
//!   [`CosignedHeads`] a thin client verifies with a **single** pairing
//!   check in place of auditing all `n` domains itself — one witness
//!   response covers the whole deployment (relay mode).
//! * [`mesh`] — a deterministic in-process mesh simulation
//!   ([`Mesh`]/[`GossipNode`]) used by the convergence property tests: no
//!   sockets, no sleeps, synchronous rounds.

pub mod envelope;
pub mod evidence;
pub mod mesh;
pub mod witness;

pub use envelope::{GossipEnvelope, GossipHead, MAX_ENVELOPE_EVIDENCE, MAX_ENVELOPE_HEADS};
pub use evidence::{EvidenceBundle, EvidencePool, MAX_EVIDENCE_POOL};
pub use mesh::{GossipNode, Mesh};
pub use witness::{
    cosign_signing_bytes, CosignedHeads, QuorumAggregator, Witness, WitnessError,
    MAX_COSIGNED_HEADS,
};
