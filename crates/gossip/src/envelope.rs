//! The epidemic checkpoint-exchange format.
//!
//! A [`GossipEnvelope`] is what two parties swap when they "compare
//! notes": the sender's latest signed checkpoint head per domain, plus
//! any transferable misbehavior evidence it holds. Envelopes ride on the
//! `BatchAudit` round-trip (piggyback), on the dedicated `Gossip`
//! request/response pair, and between auditors in the simulated mesh —
//! one format for all three paths, so evidence learned anywhere is
//! forwardable everywhere.
//!
//! Envelope contents are *claims*, not facts: heads carry domain
//! signatures and evidence carries conflicting signatures, and every
//! receiver verifies both against its own pinned keys before acting.
//! A hostile peer can therefore waste bytes but cannot inject state.

use crate::evidence::EvidenceBundle;
use distrust_log::checkpoint::SignedCheckpoint;
use distrust_wire::codec::{decode_seq, encode_seq, Decode, DecodeError, Encode};
use distrust_wire::wire_struct;

/// Most checkpoint heads a single envelope may carry. Deployments are
/// single-digit; the cap bounds decode-time allocation against peers
/// that claim absurd domain counts.
pub const MAX_ENVELOPE_HEADS: usize = 1024;

/// Most evidence bundles a single envelope may carry — mirrors
/// [`crate::evidence::MAX_EVIDENCE_POOL`]: no honest pool can exceed it,
/// so anything larger is malformed by construction.
pub const MAX_ENVELOPE_EVIDENCE: usize = crate::evidence::MAX_EVIDENCE_POOL;

/// One domain's latest signed checkpoint, as relayed by a peer.
///
/// The domain index travels alongside the checkpoint because receivers
/// key their pinned verifying keys by index; the signature inside the
/// checkpoint is what actually binds the claim to the domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipHead {
    /// Index of the domain the checkpoint claims to come from.
    pub domain: u32,
    /// The domain-signed checkpoint.
    pub checkpoint: SignedCheckpoint,
}

wire_struct!(GossipHead {
    domain: u32,
    checkpoint: SignedCheckpoint,
});

/// Everything one party tells another in a single gossip exchange.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct GossipEnvelope {
    /// The sender's latest verified checkpoint per domain (any order,
    /// lagging or partial views are fine — receivers merge).
    pub heads: Vec<GossipHead>,
    /// Transferable misbehavior evidence the sender holds.
    pub evidence: Vec<EvidenceBundle>,
}

impl Encode for GossipEnvelope {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.heads, out);
        encode_seq(&self.evidence, out);
    }
}

impl Decode for GossipEnvelope {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let heads: Vec<GossipHead> = decode_seq(input)?;
        if heads.len() > MAX_ENVELOPE_HEADS {
            return Err(DecodeError::Invalid("gossip envelope head count"));
        }
        let evidence: Vec<EvidenceBundle> = decode_seq(input)?;
        if evidence.len() > MAX_ENVELOPE_EVIDENCE {
            return Err(DecodeError::Invalid("gossip envelope evidence count"));
        }
        Ok(Self { heads, evidence })
    }
}

impl GossipEnvelope {
    /// An envelope with nothing to say (still a valid exchange — the
    /// reply may carry news).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the envelope carries neither heads nor evidence.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty() && self.evidence.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::EvidenceBundle;
    use distrust_crypto::schnorr::SigningKey;
    use distrust_log::checkpoint::{log_id, CheckpointBody, EquivocationProof};

    fn sample_checkpoint(sk: &SigningKey, head: u8, size: u64) -> SignedCheckpoint {
        SignedCheckpoint::sign(
            CheckpointBody {
                log_id: log_id(b"envelope-tests", 0),
                size,
                head: [head; 32],
                logical_time: size,
            },
            sk,
        )
    }

    fn sample_envelope() -> GossipEnvelope {
        let sk = SigningKey::derive(b"envelope", b"domain");
        GossipEnvelope {
            heads: vec![
                GossipHead {
                    domain: 0,
                    checkpoint: sample_checkpoint(&sk, 0x11, 3),
                },
                GossipHead {
                    domain: 2,
                    checkpoint: sample_checkpoint(&sk, 0x22, 9),
                },
            ],
            evidence: vec![EvidenceBundle {
                domain: 1,
                proof: EquivocationProof {
                    a: sample_checkpoint(&sk, 0x33, 5),
                    b: sample_checkpoint(&sk, 0x44, 5),
                },
            }],
        }
    }

    #[test]
    fn envelope_round_trips() {
        let env = sample_envelope();
        let wire = env.to_wire();
        assert_eq!(GossipEnvelope::from_wire(&wire).unwrap(), env);
        let empty = GossipEnvelope::empty();
        assert!(empty.is_empty());
        assert_eq!(GossipEnvelope::from_wire(&empty.to_wire()).unwrap(), empty);
    }

    #[test]
    fn envelope_truncation_rejected_at_every_cut() {
        let wire = sample_envelope().to_wire();
        for cut in 0..wire.len() {
            assert!(
                GossipEnvelope::from_wire(&wire[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn envelope_trailing_bytes_rejected() {
        let mut wire = sample_envelope().to_wire();
        wire.push(0);
        assert!(matches!(
            GossipEnvelope::from_wire(&wire),
            Err(DecodeError::TrailingBytes(_))
        ));
    }

    #[test]
    fn envelope_length_bomb_rejected() {
        // A claimed head count far beyond what the payload could hold
        // must fail without allocating.
        let mut wire = Vec::new();
        (u32::MAX).encode(&mut wire);
        assert!(GossipEnvelope::from_wire(&wire).is_err());
        // A structurally valid but over-cap evidence count is refused by
        // the envelope's own cap even if each entry decodes.
        let bundle = sample_envelope().evidence.remove(0);
        let over = GossipEnvelope {
            heads: Vec::new(),
            evidence: vec![bundle; MAX_ENVELOPE_EVIDENCE + 1],
        };
        assert!(matches!(
            GossipEnvelope::from_wire(&over.to_wire()),
            Err(DecodeError::Invalid("gossip envelope evidence count"))
        ));
    }
}
