//! Witness quorum: threshold-cosigned checkpoint heads.
//!
//! A deployment's detection story normally asks every client to audit all
//! `n` domains itself. Witness cosigning moves that work to `t`-of-`n`
//! independent witnesses: each witness verifies the deployment's current
//! checkpoint heads (signature validity, no equivocation against anything
//! it has ever seen, no rollback of anything it has already cosigned) and
//! emits a BLS partial signature over the head set. Aggregated, the
//! partials form one [`CosignedHeads`] that a thin client verifies with a
//! **single** pairing check — trust in "the quorum saw the same heads"
//! replaces `n` batched audits.
//!
//! The quorum public key and threshold come out of
//! [`distrust_crypto::threshold::generate`]; no single witness (or any
//! coalition below `t`) can forge a cosignature, and any `t` honest
//! witnesses suffice even if the rest are offline or malicious.

use crate::evidence::{EvidenceBundle, EvidencePool};
use distrust_crypto::bls::{PublicKey, Signature};
use distrust_crypto::schnorr::VerifyingKey;
use distrust_crypto::threshold::{
    aggregate, partial_sign, verify_partial, FeldmanCommitments, KeyShare, PartialSignature,
    ThresholdError,
};
use distrust_log::auditor::{AuditOutcome, Auditor, Misbehavior};
use distrust_log::checkpoint::{CheckpointBody, SignedCheckpoint};
use distrust_wire::codec::{decode_seq, encode_seq, Decode, DecodeError, Encode};

/// Domain-separation tag for cosignatures, so a witness's BLS key can
/// never be tricked into signing bytes that mean something else.
pub const COSIGN_DST: &[u8] = b"distrust/gossip/cosign/v1";

/// Most heads a cosigned bundle may carry — same bound (and reasoning)
/// as [`crate::envelope::MAX_ENVELOPE_HEADS`].
pub const MAX_COSIGNED_HEADS: usize = 1024;

/// The exact bytes a witness quorum signs for a head set: the DST
/// followed by the length-prefixed checkpoint bodies in domain order.
/// Bodies, not signed checkpoints — the quorum attests to the *views*
/// (log id, size, head), and the domains' own signatures are checked by
/// each witness before it signs, not re-shipped to thin clients.
pub fn cosign_signing_bytes(heads: &[CheckpointBody]) -> Vec<u8> {
    let mut out = Vec::with_capacity(COSIGN_DST.len() + 4 + heads.len() * 80);
    out.extend_from_slice(COSIGN_DST);
    encode_seq(heads, &mut out);
    out
}

/// One aggregated quorum signature over a deployment's checkpoint heads.
///
/// `heads[i]` is domain `i`'s view by convention (each body also carries
/// its `log_id`, which binds the domain index cryptographically — see
/// [`distrust_log::checkpoint::log_id`]). Verifying the single BLS
/// signature under the quorum public key is the thin client's *entire*
/// trust-establishment step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CosignedHeads {
    /// The cosigned checkpoint bodies, one per domain, in domain order.
    pub heads: Vec<CheckpointBody>,
    /// Aggregated threshold-BLS signature over
    /// [`cosign_signing_bytes`]`(&heads)`.
    pub signature: Signature,
}

impl Encode for CosignedHeads {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.heads, out);
        self.signature.to_bytes().encode(out);
    }
}

impl Decode for CosignedHeads {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let heads: Vec<CheckpointBody> = decode_seq(input)?;
        if heads.len() > MAX_COSIGNED_HEADS {
            return Err(DecodeError::Invalid("cosigned head count"));
        }
        let sig = <[u8; 48]>::decode(input)?;
        let signature =
            Signature::from_bytes(&sig).ok_or(DecodeError::Invalid("cosigned head signature"))?;
        Ok(Self { heads, signature })
    }
}

impl CosignedHeads {
    /// Verifies the aggregated signature under the quorum public key.
    /// One pairing check; this is the thin client's whole audit.
    pub fn verify(&self, quorum_pk: &PublicKey) -> bool {
        quorum_pk.verify(&cosign_signing_bytes(&self.heads), &self.signature)
    }
}

/// Why a witness refused to cosign a head set.
#[derive(Debug)]
pub enum WitnessError {
    /// The head set does not cover exactly the deployment's domains.
    WrongDomainCount {
        /// Domains the witness is configured for.
        expected: usize,
        /// Heads actually presented.
        got: usize,
    },
    /// A head failed verification — bad signature, or a conflict with a
    /// checkpoint this witness has already seen (the interesting case:
    /// equivocation, which also yields transferable evidence in
    /// [`Witness::evidence`]).
    Refused {
        /// Index of the offending domain.
        domain: u32,
        /// What the witness's auditor found.
        misbehavior: Box<Misbehavior>,
    },
    /// A head went backwards relative to something this witness already
    /// cosigned. Cosigning it would let the deployment use the quorum to
    /// launder a rollback past thin clients.
    Rollback {
        /// Index of the offending domain.
        domain: u32,
        /// Size this witness last cosigned for the domain.
        cosigned: u64,
        /// Smaller size now offered.
        offered: u64,
    },
}

impl std::fmt::Display for WitnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WrongDomainCount { expected, got } => {
                write!(
                    f,
                    "head set covers {got} domains, deployment has {expected}"
                )
            }
            Self::Refused {
                domain,
                misbehavior,
            } => {
                write!(f, "domain {domain} refused: {misbehavior:?}")
            }
            Self::Rollback {
                domain,
                cosigned,
                offered,
            } => write!(
                f,
                "domain {domain} offered size {offered} below cosigned size {cosigned}"
            ),
        }
    }
}

impl std::error::Error for WitnessError {}

/// One witness: holds a threshold key share and an auditor view, and
/// only signs head sets it has independently verified.
pub struct Witness {
    share: KeyShare,
    auditor: Auditor,
    last_cosigned: Vec<u64>,
    pool: EvidencePool,
}

impl Witness {
    /// A witness for a deployment whose domains checkpoint-sign with
    /// `keys` (indexed by domain), holding threshold share `share`.
    pub fn new(share: KeyShare, keys: Vec<VerifyingKey>) -> Self {
        let last_cosigned = vec![0; keys.len()];
        Self {
            share,
            auditor: Auditor::new(keys),
            last_cosigned,
            pool: EvidencePool::new(),
        }
    }

    /// This witness's share index (1-based, as in the threshold scheme).
    pub fn index(&self) -> u8 {
        self.share.index
    }

    /// Verifies a full head set and, if every domain's head is
    /// signature-valid, conflict-free against everything this witness has
    /// ever seen, and not a rollback of anything it already cosigned,
    /// returns a partial signature over the set.
    ///
    /// On refusal the witness keeps any transferable evidence it derived
    /// (see [`Witness::evidence`]) so the refusal itself can convict the
    /// domain elsewhere.
    pub fn observe_and_sign(
        &mut self,
        heads: &[SignedCheckpoint],
    ) -> Result<PartialSignature, WitnessError> {
        let expected = self.auditor.domain_count();
        if heads.len() != expected {
            return Err(WitnessError::WrongDomainCount {
                expected,
                got: heads.len(),
            });
        }
        // Zipping against `last_cosigned` (same length as the domain
        // count, checked above) keeps unverified input away from any
        // slice index.
        for (i, (cp, &cosigned)) in heads.iter().zip(self.last_cosigned.iter()).enumerate() {
            let domain = i as u32;
            if let AuditOutcome::Misbehavior(m) = self.auditor.ingest_gossip(domain, cp.clone()) {
                if let Some(bundle) = EvidenceBundle::from_misbehavior(&m) {
                    self.pool.insert(bundle);
                }
                return Err(WitnessError::Refused {
                    domain,
                    misbehavior: m,
                });
            }
            if cp.body.size < cosigned {
                return Err(WitnessError::Rollback {
                    domain,
                    cosigned,
                    offered: cp.body.size,
                });
            }
        }
        for (slot, cp) in self.last_cosigned.iter_mut().zip(heads) {
            *slot = cp.body.size;
        }
        let bodies: Vec<CheckpointBody> = heads.iter().map(|cp| cp.body.clone()).collect();
        Ok(partial_sign(&self.share, &cosign_signing_bytes(&bodies)))
    }

    /// Transferable evidence this witness has accumulated from refused
    /// head sets.
    pub fn evidence(&self) -> &[EvidenceBundle] {
        self.pool.items()
    }
}

/// Collects partial signatures over one head set and aggregates them
/// into a [`CosignedHeads`] once the threshold is met.
pub struct QuorumAggregator {
    commitments: FeldmanCommitments,
    heads: Vec<CheckpointBody>,
    msg: Vec<u8>,
    partials: Vec<PartialSignature>,
}

impl QuorumAggregator {
    /// An aggregator for `heads` under the quorum described by
    /// `commitments` (which fixes both the group public key and the
    /// threshold).
    pub fn new(commitments: FeldmanCommitments, heads: Vec<CheckpointBody>) -> Self {
        let msg = cosign_signing_bytes(&heads);
        Self {
            commitments,
            heads,
            msg,
            partials: Vec::new(),
        }
    }

    /// Adds one witness's partial signature. Returns `true` if it
    /// verified against the Feldman commitments and was new; invalid or
    /// duplicate-index partials are dropped (a malicious witness cannot
    /// poison aggregation, only abstain).
    pub fn add(&mut self, partial: PartialSignature) -> bool {
        if self.partials.iter().any(|p| p.index == partial.index) {
            return false;
        }
        if !verify_partial(&self.commitments, &self.msg, &partial) {
            return false;
        }
        self.partials.push(partial);
        true
    }

    /// Verified partials collected so far.
    pub fn count(&self) -> usize {
        self.partials.len()
    }

    /// Whether enough partials have been collected to aggregate.
    pub fn ready(&self) -> bool {
        self.partials.len() >= self.commitments.threshold()
    }

    /// Aggregates into the final cosigned head set. Fails with
    /// [`ThresholdError::InsufficientShares`] below threshold.
    pub fn cosign(&self) -> Result<CosignedHeads, ThresholdError> {
        let signature = aggregate(self.commitments.threshold(), &self.partials)?;
        Ok(CosignedHeads {
            heads: self.heads.clone(),
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrust_crypto::drbg::HmacDrbg;
    use distrust_crypto::schnorr::SigningKey;
    use distrust_crypto::threshold::generate;
    use distrust_log::checkpoint::log_id;

    fn domain_keys(n: usize) -> Vec<SigningKey> {
        (0..n)
            .map(|i| SigningKey::derive(b"witness-tests", &[i as u8]))
            .collect()
    }

    fn head_set(keys: &[SigningKey], size: u64, fill: u8) -> Vec<SignedCheckpoint> {
        keys.iter()
            .enumerate()
            .map(|(i, sk)| {
                SignedCheckpoint::sign(
                    CheckpointBody {
                        log_id: log_id(b"witness-tests", i as u32),
                        size,
                        head: [fill; 32],
                        logical_time: size,
                    },
                    sk,
                )
            })
            .collect()
    }

    #[test]
    fn quorum_cosigns_and_thin_client_verifies_once() {
        let mut rng = HmacDrbg::new(b"witness-tests", b"quorum");
        let tk = generate(2, 3, &mut rng).unwrap();
        let keys = domain_keys(3);
        let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
        let heads = head_set(&keys, 5, 0x5a);
        let bodies: Vec<_> = heads.iter().map(|cp| cp.body.clone()).collect();

        let mut agg = QuorumAggregator::new(tk.commitments.clone(), bodies);
        for share in tk.shares.iter().take(2) {
            let mut w = Witness::new(*share, vks.clone());
            let partial = w.observe_and_sign(&heads).unwrap();
            assert!(agg.add(partial));
        }
        assert!(agg.ready());
        let cosigned = agg.cosign().unwrap();
        assert!(cosigned.verify(&tk.public_key));

        // Wire round-trip preserves verifiability.
        let back = CosignedHeads::from_wire(&cosigned.to_wire()).unwrap();
        assert_eq!(back, cosigned);
        assert!(back.verify(&tk.public_key));

        // A different quorum's key must not verify it.
        let other = generate(2, 3, &mut HmacDrbg::new(b"witness-tests", b"other-quorum")).unwrap();
        assert!(!cosigned.verify(&other.public_key));
    }

    #[test]
    fn aggregator_rejects_bad_and_duplicate_partials() {
        let mut rng = HmacDrbg::new(b"witness-tests", b"agg");
        let tk = generate(2, 3, &mut rng).unwrap();
        let keys = domain_keys(2);
        let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
        let heads = head_set(&keys, 1, 0x01);
        let bodies: Vec<_> = heads.iter().map(|cp| cp.body.clone()).collect();

        let mut agg = QuorumAggregator::new(tk.commitments.clone(), bodies.clone());
        let mut w = Witness::new(tk.shares[0], vks.clone());
        let good = w.observe_and_sign(&heads).unwrap();
        assert!(agg.add(good));
        assert!(!agg.add(good), "duplicate index must be dropped");

        // A partial over DIFFERENT heads must fail commitment checks.
        let other_heads = head_set(&keys, 2, 0x02);
        let other_bodies: Vec<_> = other_heads.iter().map(|cp| cp.body.clone()).collect();
        let stray = partial_sign(&tk.shares[1], &cosign_signing_bytes(&other_bodies));
        assert!(!agg.add(stray));
        assert!(!agg.ready());
        assert!(agg.cosign().is_err());
    }

    #[test]
    fn witness_refuses_equivocation_and_keeps_evidence() {
        let mut rng = HmacDrbg::new(b"witness-tests", b"refuse");
        let tk = generate(1, 1, &mut rng).unwrap();
        let keys = domain_keys(1);
        let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
        let mut w = Witness::new(tk.shares[0], vks);

        let first = head_set(&keys, 3, 0xaa);
        w.observe_and_sign(&first).unwrap();
        // Same size, different head: equivocation.
        let forked = head_set(&keys, 3, 0xbb);
        let err = w.observe_and_sign(&forked).unwrap_err();
        assert!(matches!(err, WitnessError::Refused { domain: 0, .. }));
        assert_eq!(
            w.evidence().len(),
            1,
            "refusal must yield transferable evidence"
        );
        assert!(w.evidence()[0].verify(&keys[0].verifying_key()));
    }

    #[test]
    fn witness_refuses_rollback_of_cosigned_size() {
        let mut rng = HmacDrbg::new(b"witness-tests", b"rollback");
        let tk = generate(1, 1, &mut rng).unwrap();
        let keys = domain_keys(1);
        let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
        let mut w = Witness::new(tk.shares[0], vks);

        w.observe_and_sign(&head_set(&keys, 5, 0x10)).unwrap();
        let err = w.observe_and_sign(&head_set(&keys, 2, 0x20)).unwrap_err();
        assert!(matches!(
            err,
            WitnessError::Rollback {
                domain: 0,
                cosigned: 5,
                offered: 2
            }
        ));
    }

    #[test]
    fn cosigned_heads_truncation_rejected_at_every_cut() {
        let mut rng = HmacDrbg::new(b"witness-tests", b"quorum");
        let tk = generate(2, 3, &mut rng).unwrap();
        let keys = domain_keys(3);
        let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
        let heads = head_set(&keys, 5, 0x5a);
        let bodies: Vec<_> = heads.iter().map(|cp| cp.body.clone()).collect();
        let mut agg = QuorumAggregator::new(tk.commitments.clone(), bodies);
        for share in tk.shares.iter().take(2) {
            let mut w = Witness::new(*share, vks.clone());
            agg.add(w.observe_and_sign(&heads).unwrap());
        }
        let wire = agg.cosign().unwrap().to_wire();
        for cut in 0..wire.len() {
            assert!(
                CosignedHeads::from_wire(&wire[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }
}
