//! The sandbox interpreter: isolated linear memory, fuel metering, bounded
//! stacks, and a host-call boundary.
//!
//! §4.1 of the paper: "Sandboxing the application code ensures that the
//! executed code cannot 'escape' the sandbox and have an effect on the
//! system outside the sandbox (i.e. the framework)." The VM realizes that
//! guarantee in three ways:
//!
//! 1. **Memory isolation** — guests address only their own bounds-checked
//!    linear memory; there are no pointers into the host.
//! 2. **Fuel metering** — every instruction consumes fuel; a malicious or
//!    buggy update cannot wedge the framework (which must stay responsive
//!    to deliver update notices).
//! 3. **Explicit host boundary** — all effects go through imports the
//!    framework chose to expose; host functions see a bounds-checked view
//!    of guest memory, never the reverse.

use crate::isa::Instr;
use crate::module::{Function, Module, PAGE_SIZE};

/// Execution aborts (traps). Traps are contained: the host observes an
/// error value, the framework keeps running — the "escape-proof" property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trap {
    /// Fuel exhausted.
    OutOfFuel,
    /// Memory access outside linear memory.
    OutOfBounds { addr: u64, len: u64 },
    /// Value stack exceeded its limit.
    StackOverflow,
    /// An instruction needed more operands than the stack holds.
    StackUnderflow,
    /// Call depth exceeded.
    CallDepthExceeded,
    /// Integer division/remainder by zero.
    DivisionByZero,
    /// Explicit `Trap` instruction.
    Explicit,
    /// Function index invalid at runtime (defense in depth; the validator
    /// rejects these statically).
    InvalidFunction(u32),
    /// Export name not found.
    UnknownExport(String),
    /// Wrong number of arguments for the invoked export.
    ArityMismatch { expected: u16, got: usize },
    /// Host import index invalid.
    InvalidHostCall(u16),
    /// The host function itself failed.
    Host(String),
    /// Module failed validation.
    Invalid(String),
    /// Function body ended without `Return`.
    FellOffEnd,
}

impl core::fmt::Display for Trap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::OutOfFuel => write!(f, "out of fuel"),
            Self::OutOfBounds { addr, len } => {
                write!(f, "memory access out of bounds: addr={addr} len={len}")
            }
            Self::StackOverflow => write!(f, "value stack overflow"),
            Self::StackUnderflow => write!(f, "value stack underflow"),
            Self::CallDepthExceeded => write!(f, "call depth exceeded"),
            Self::DivisionByZero => write!(f, "division by zero"),
            Self::Explicit => write!(f, "explicit trap"),
            Self::InvalidFunction(i) => write!(f, "invalid function index {i}"),
            Self::UnknownExport(name) => write!(f, "unknown export {name:?}"),
            Self::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected} args, got {got}")
            }
            Self::InvalidHostCall(i) => write!(f, "invalid host import {i}"),
            Self::Host(msg) => write!(f, "host error: {msg}"),
            Self::Invalid(msg) => write!(f, "invalid module: {msg}"),
            Self::FellOffEnd => write!(f, "function ended without return"),
        }
    }
}

impl std::error::Error for Trap {}

/// Bounds-checked guest memory handed to host functions.
pub struct Memory {
    bytes: Vec<u8>,
    max_pages: u32,
}

impl Memory {
    fn new(initial_pages: u32, max_pages: u32) -> Self {
        Self {
            bytes: vec![0u8; initial_pages as usize * PAGE_SIZE],
            max_pages,
        }
    }

    /// Current size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Current size in pages.
    pub fn pages(&self) -> u32 {
        (self.bytes.len() / PAGE_SIZE) as u32
    }

    /// Reads `len` bytes at `addr`.
    pub fn read(&self, addr: u64, len: u64) -> Result<&[u8], Trap> {
        let end = addr
            .checked_add(len)
            .ok_or(Trap::OutOfBounds { addr, len })?;
        if end as usize > self.bytes.len() {
            return Err(Trap::OutOfBounds { addr, len });
        }
        Ok(&self.bytes[addr as usize..end as usize])
    }

    /// Writes `data` at `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), Trap> {
        let len = data.len() as u64;
        let end = addr
            .checked_add(len)
            .ok_or(Trap::OutOfBounds { addr, len })?;
        if end as usize > self.bytes.len() {
            return Err(Trap::OutOfBounds { addr, len });
        }
        self.bytes[addr as usize..end as usize].copy_from_slice(data);
        Ok(())
    }

    fn load8(&self, addr: u64) -> Result<u64, Trap> {
        Ok(self.read(addr, 1)?[0] as u64)
    }

    fn load64(&self, addr: u64) -> Result<u64, Trap> {
        let bytes = self.read(addr, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn store8(&mut self, addr: u64, v: u64) -> Result<(), Trap> {
        self.write(addr, &[v as u8])
    }

    fn store64(&mut self, addr: u64, v: u64) -> Result<(), Trap> {
        self.write(addr, &v.to_le_bytes())
    }

    fn grow(&mut self, delta_pages: u64) -> u64 {
        let current = self.pages() as u64;
        let Ok(delta32) = u32::try_from(delta_pages) else {
            return u64::MAX;
        };
        let new_pages = current + delta32 as u64;
        if new_pages > self.max_pages as u64 {
            return u64::MAX;
        }
        self.bytes.resize(new_pages as usize * PAGE_SIZE, 0);
        current
    }
}

/// Host functions exposed to the guest. Implementations receive the
/// arguments and a mutable, bounds-checked view of guest memory.
pub trait Host {
    /// Invokes import `index` with `args`; returns the result values
    /// (length must match the import's declared `returns`).
    fn call(&mut self, index: u16, args: &[u64], memory: &mut Memory) -> Result<Vec<u64>, String>;
}

/// A host with no imports (pure-guest modules like the SHA-256 kernel).
pub struct NoHost;

impl Host for NoHost {
    fn call(
        &mut self,
        index: u16,
        _args: &[u64],
        _memory: &mut Memory,
    ) -> Result<Vec<u64>, String> {
        Err(format!("no host imports available (call to {index})"))
    }
}

/// Execution limits.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum instructions executed (base cost 1 each; memory and call
    /// instructions cost extra).
    pub fuel: u64,
    /// Value stack limit (entries).
    pub max_stack: usize,
    /// Call depth limit (frames).
    pub max_call_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            fuel: 500_000_000,
            max_stack: 64 * 1024,
            max_call_depth: 256,
        }
    }
}

/// Extra fuel charged for memory instructions (they touch RAM) and calls.
const MEM_FUEL: u64 = 2;
const CALL_FUEL: u64 = 8;
const HOST_FUEL: u64 = 32;

/// An instantiated module ready to execute exports.
pub struct Instance {
    module: Module,
    /// Guest linear memory (persists across export invocations, like a Wasm
    /// instance — the threshold-signer app keeps state here).
    pub memory: Memory,
    limits: Limits,
    /// Fuel consumed by the most recent `invoke` (for the overhead bench).
    pub last_fuel_used: u64,
}

impl Instance {
    /// Validates and instantiates a module (copies data segments).
    pub fn new(module: Module, limits: Limits) -> Result<Self, Trap> {
        module
            .validate()
            .map_err(|e| Trap::Invalid(e.to_string()))?;
        let mut memory = Memory::new(module.initial_pages, module.max_pages);
        for seg in &module.data {
            memory
                .write(seg.offset as u64, &seg.bytes)
                .map_err(|_| Trap::Invalid("data segment out of range".into()))?;
        }
        Ok(Self {
            module,
            memory,
            limits,
            last_fuel_used: 0,
        })
    }

    /// The module this instance runs.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Invokes an export by name.
    pub fn invoke<H: Host>(
        &mut self,
        export: &str,
        args: &[u64],
        host: &mut H,
    ) -> Result<Option<u64>, Trap> {
        let func_idx = self
            .module
            .export(export)
            .ok_or_else(|| Trap::UnknownExport(export.to_string()))?;
        self.invoke_index(func_idx, args, host)
    }

    /// Invokes a function by index.
    pub fn invoke_index<H: Host>(
        &mut self,
        func_idx: u32,
        args: &[u64],
        host: &mut H,
    ) -> Result<Option<u64>, Trap> {
        let func = self
            .module
            .functions
            .get(func_idx as usize)
            .ok_or(Trap::InvalidFunction(func_idx))?;
        if args.len() != func.params as usize {
            return Err(Trap::ArityMismatch {
                expected: func.params,
                got: args.len(),
            });
        }
        let mut exec = Executor {
            module: &self.module,
            memory: &mut self.memory,
            host,
            fuel: self.limits.fuel,
            max_stack: self.limits.max_stack,
            max_call_depth: self.limits.max_call_depth,
            stack: Vec::with_capacity(256),
        };
        let result = exec.call_function(func_idx, args);
        self.last_fuel_used = self.limits.fuel - exec.fuel;
        result
    }
}

/// Computes `base + offset`, trapping on address-space wrap-around instead
/// of silently aliasing low guest memory.
#[inline]
fn effective_addr(base: u64, off: u32) -> Result<u64, Trap> {
    base.checked_add(off as u64).ok_or(Trap::OutOfBounds {
        addr: base,
        len: off as u64,
    })
}

/// One guest function activation: its code, locals, and program counter.
/// Lives on the heap (in the executor's frame vector), not the host stack.
struct Frame<'m> {
    func: &'m Function,
    locals: Vec<u64>,
    ip: usize,
}

impl<'m> Frame<'m> {
    /// A fresh activation of `func`: arguments in the leading locals, the
    /// declared locals zeroed, execution starting at the first instruction.
    fn new(func: &'m Function, args: &[u64]) -> Self {
        let mut locals = vec![0u64; func.params as usize + func.locals as usize];
        locals[..args.len()].copy_from_slice(args);
        Self {
            func,
            locals,
            ip: 0,
        }
    }
}

struct Executor<'m, H: Host> {
    module: &'m Module,
    memory: &'m mut Memory,
    host: &'m mut H,
    fuel: u64,
    max_stack: usize,
    max_call_depth: usize,
    stack: Vec<u64>,
}

impl<'m, H: Host> Executor<'m, H> {
    fn charge(&mut self, cost: u64) -> Result<(), Trap> {
        if self.fuel < cost {
            self.fuel = 0;
            return Err(Trap::OutOfFuel);
        }
        self.fuel -= cost;
        Ok(())
    }

    fn push(&mut self, v: u64) -> Result<(), Trap> {
        if self.stack.len() >= self.max_stack {
            return Err(Trap::StackOverflow);
        }
        self.stack.push(v);
        Ok(())
    }

    fn pop(&mut self) -> Result<u64, Trap> {
        self.stack.pop().ok_or(Trap::StackUnderflow)
    }

    /// Runs `func_idx` to completion on an explicit frame stack.
    ///
    /// The interpreter is deliberately iterative: guest call depth consumes
    /// heap (one [`Frame`] per activation), never host stack, so a
    /// deeply-recursive guest can only trap with [`Trap::CallDepthExceeded`]
    /// — it cannot overflow the host thread's stack and abort the process.
    fn call_function(&mut self, func_idx: u32, args: &[u64]) -> Result<Option<u64>, Trap> {
        let module = self.module;
        let root: &Function = module
            .functions
            .get(func_idx as usize)
            .ok_or(Trap::InvalidFunction(func_idx))?;
        if self.max_call_depth == 0 {
            return Err(Trap::CallDepthExceeded);
        }
        let mut frames = vec![Frame::new(root, args)];
        loop {
            let frame = frames.last_mut().expect("at least the root frame");
            let func = frame.func;
            let Some(instr) = func.code.get(frame.ip) else {
                return Err(Trap::FellOffEnd);
            };
            self.charge(1)?;
            frame.ip += 1;
            match *instr {
                Instr::Const(v) => self.push(v)?,
                Instr::LocalGet(i) => {
                    let v = *frame.locals.get(i as usize).ok_or(Trap::StackUnderflow)?;
                    self.push(v)?;
                }
                Instr::LocalSet(i) => {
                    let v = self.pop()?;
                    *frame
                        .locals
                        .get_mut(i as usize)
                        .ok_or(Trap::StackUnderflow)? = v;
                }
                Instr::Add => self.binop(|a, b| Ok(a.wrapping_add(b)))?,
                Instr::Sub => self.binop(|a, b| Ok(a.wrapping_sub(b)))?,
                Instr::Mul => self.binop(|a, b| Ok(a.wrapping_mul(b)))?,
                Instr::DivU => self.binop(|a, b| a.checked_div(b).ok_or(Trap::DivisionByZero))?,
                Instr::RemU => self.binop(|a, b| a.checked_rem(b).ok_or(Trap::DivisionByZero))?,
                Instr::And => self.binop(|a, b| Ok(a & b))?,
                Instr::Or => self.binop(|a, b| Ok(a | b))?,
                Instr::Xor => self.binop(|a, b| Ok(a ^ b))?,
                Instr::Shl => self.binop(|a, b| Ok(a << (b & 63)))?,
                Instr::ShrU => self.binop(|a, b| Ok(a >> (b & 63)))?,
                Instr::Rotr => self.binop(|a, b| Ok(a.rotate_right((b & 63) as u32)))?,
                Instr::Eq => self.binop(|a, b| Ok((a == b) as u64))?,
                Instr::Ne => self.binop(|a, b| Ok((a != b) as u64))?,
                Instr::LtU => self.binop(|a, b| Ok((a < b) as u64))?,
                Instr::GtU => self.binop(|a, b| Ok((a > b) as u64))?,
                Instr::LeU => self.binop(|a, b| Ok((a <= b) as u64))?,
                Instr::GeU => self.binop(|a, b| Ok((a >= b) as u64))?,
                Instr::JumpIfZero(t) => {
                    let c = self.pop()?;
                    if c == 0 {
                        frame.ip = t as usize;
                    }
                }
                Instr::JumpIfNonZero(t) => {
                    let c = self.pop()?;
                    if c != 0 {
                        frame.ip = t as usize;
                    }
                }
                Instr::Jump(t) => frame.ip = t as usize,
                Instr::Call(target) => {
                    self.charge(CALL_FUEL)?;
                    if frames.len() >= self.max_call_depth {
                        return Err(Trap::CallDepthExceeded);
                    }
                    let callee = module
                        .functions
                        .get(target as usize)
                        .ok_or(Trap::InvalidFunction(target as u32))?;
                    let nargs = callee.params as usize;
                    if self.stack.len() < nargs {
                        return Err(Trap::StackUnderflow);
                    }
                    let split = self.stack.len() - nargs;
                    let call_args: Vec<u64> = self.stack.split_off(split);
                    frames.push(Frame::new(callee, &call_args));
                }
                Instr::HostCall(index) => {
                    self.charge(HOST_FUEL)?;
                    let sig = self
                        .module
                        .imports
                        .get(index as usize)
                        .ok_or(Trap::InvalidHostCall(index))?;
                    let nargs = sig.params as usize;
                    if self.stack.len() < nargs {
                        return Err(Trap::StackUnderflow);
                    }
                    let split = self.stack.len() - nargs;
                    let call_args: Vec<u64> = self.stack.split_off(split);
                    let results = self
                        .host
                        .call(index, &call_args, self.memory)
                        .map_err(Trap::Host)?;
                    if results.len() != sig.returns as usize {
                        return Err(Trap::Host(format!(
                            "import {} returned {} values, declared {}",
                            sig.name,
                            results.len(),
                            sig.returns
                        )));
                    }
                    for v in results {
                        self.push(v)?;
                    }
                }
                Instr::Return => {
                    let ret = if func.returns == 1 {
                        Some(self.pop()?)
                    } else {
                        None
                    };
                    frames.pop();
                    if frames.is_empty() {
                        return Ok(ret);
                    }
                    if let Some(v) = ret {
                        self.push(v)?;
                    }
                }
                Instr::Load8(off) => {
                    self.charge(MEM_FUEL)?;
                    let base = self.pop()?;
                    let addr = effective_addr(base, off)?;
                    let v = self.memory.load8(addr)?;
                    self.push(v)?;
                }
                Instr::Load64(off) => {
                    self.charge(MEM_FUEL)?;
                    let base = self.pop()?;
                    let addr = effective_addr(base, off)?;
                    let v = self.memory.load64(addr)?;
                    self.push(v)?;
                }
                Instr::Store8(off) => {
                    self.charge(MEM_FUEL)?;
                    let v = self.pop()?;
                    let base = self.pop()?;
                    let addr = effective_addr(base, off)?;
                    self.memory.store8(addr, v)?;
                }
                Instr::Store64(off) => {
                    self.charge(MEM_FUEL)?;
                    let v = self.pop()?;
                    let base = self.pop()?;
                    let addr = effective_addr(base, off)?;
                    self.memory.store64(addr, v)?;
                }
                Instr::MemSize => {
                    let pages = self.memory.pages() as u64;
                    self.push(pages)?;
                }
                Instr::MemGrow => {
                    let delta = self.pop()?;
                    let res = self.memory.grow(delta);
                    self.push(res)?;
                }
                Instr::Drop => {
                    self.pop()?;
                }
                Instr::Dup => {
                    let v = *self.stack.last().ok_or(Trap::StackUnderflow)?;
                    self.push(v)?;
                }
                Instr::Swap => {
                    let b = self.pop()?;
                    let a = self.pop()?;
                    self.push(b)?;
                    self.push(a)?;
                }
                Instr::Select => {
                    let b = self.pop()?;
                    let a = self.pop()?;
                    let c = self.pop()?;
                    self.push(if c != 0 { a } else { b })?;
                }
                Instr::Trap => return Err(Trap::Explicit),
            }
        }
    }

    fn binop(&mut self, f: impl FnOnce(u64, u64) -> Result<u64, Trap>) -> Result<(), Trap> {
        let b = self.pop()?;
        let a = self.pop()?;
        let r = f(a, b)?;
        self.push(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{DataSegment, Export, Function};

    fn module_with(code: Vec<Instr>, params: u16, locals: u16, returns: u16) -> Module {
        Module {
            imports: vec![],
            functions: vec![Function {
                params,
                locals,
                returns,
                code,
            }],
            exports: vec![Export {
                name: "main".into(),
                function: 0,
            }],
            data: vec![],
            initial_pages: 1,
            max_pages: 2,
        }
    }

    fn run(code: Vec<Instr>, args: &[u64]) -> Result<Option<u64>, Trap> {
        let m = module_with(code, args.len() as u16, 4, 1);
        let mut inst = Instance::new(m, Limits::default())?;
        inst.invoke("main", args, &mut NoHost)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            run(
                vec![Instr::Const(2), Instr::Const(3), Instr::Add, Instr::Return],
                &[]
            ),
            Ok(Some(5))
        );
        assert_eq!(
            run(
                vec![Instr::Const(10), Instr::Const(3), Instr::Sub, Instr::Return],
                &[]
            ),
            Ok(Some(7))
        );
        assert_eq!(
            run(
                vec![Instr::Const(6), Instr::Const(7), Instr::Mul, Instr::Return],
                &[]
            ),
            Ok(Some(42))
        );
        assert_eq!(
            run(
                vec![
                    Instr::Const(17),
                    Instr::Const(5),
                    Instr::DivU,
                    Instr::Return
                ],
                &[]
            ),
            Ok(Some(3))
        );
        assert_eq!(
            run(
                vec![
                    Instr::Const(17),
                    Instr::Const(5),
                    Instr::RemU,
                    Instr::Return
                ],
                &[]
            ),
            Ok(Some(2))
        );
    }

    #[test]
    fn wrapping_semantics() {
        assert_eq!(
            run(
                vec![
                    Instr::Const(u64::MAX),
                    Instr::Const(1),
                    Instr::Add,
                    Instr::Return
                ],
                &[]
            ),
            Ok(Some(0))
        );
        assert_eq!(
            run(
                vec![Instr::Const(0), Instr::Const(1), Instr::Sub, Instr::Return],
                &[]
            ),
            Ok(Some(u64::MAX))
        );
    }

    #[test]
    fn division_by_zero_traps() {
        assert_eq!(
            run(
                vec![Instr::Const(1), Instr::Const(0), Instr::DivU, Instr::Return],
                &[]
            ),
            Err(Trap::DivisionByZero)
        );
    }

    #[test]
    fn comparisons_and_select() {
        assert_eq!(
            run(
                vec![
                    Instr::Const(3),
                    Instr::Const(4),
                    Instr::LtU,
                    Instr::Const(100),
                    Instr::Const(200),
                    Instr::Select,
                    Instr::Return
                ],
                &[]
            ),
            Ok(Some(100))
        );
    }

    #[test]
    fn rotr_matches_rust() {
        assert_eq!(
            run(
                vec![
                    Instr::Const(0x1234_5678_9abc_def0),
                    Instr::Const(16),
                    Instr::Rotr,
                    Instr::Return
                ],
                &[]
            ),
            Ok(Some(0x1234_5678_9abc_def0u64.rotate_right(16)))
        );
    }

    #[test]
    fn locals_and_params() {
        // f(a, b) = a*2 + b
        let code = vec![
            Instr::LocalGet(0),
            Instr::Const(2),
            Instr::Mul,
            Instr::LocalGet(1),
            Instr::Add,
            Instr::Return,
        ];
        assert_eq!(run(code, &[21, 5]), Ok(Some(47)));
    }

    #[test]
    fn loop_sums_one_to_n() {
        // local0 = n (param), local1 = acc, local2 = i
        let code = vec![
            /* 0 */ Instr::Const(0),
            /* 1 */ Instr::LocalSet(1),
            /* 2 */ Instr::Const(1),
            /* 3 */ Instr::LocalSet(2),
            // loop: if i > n goto end
            /* 4 */ Instr::LocalGet(2),
            /* 5 */ Instr::LocalGet(0),
            /* 6 */ Instr::GtU,
            /* 7 */ Instr::JumpIfNonZero(16),
            /* 8 */ Instr::LocalGet(1),
            /* 9 */ Instr::LocalGet(2),
            /* 10 */ Instr::Add,
            /* 11 */ Instr::LocalSet(1),
            /* 12 */ Instr::LocalGet(2),
            /* 13 */ Instr::Const(1),
            /* 14 */ Instr::Add,
            /* 15 */ Instr::LocalSet(2),
            /* 16 — patched below */ Instr::Jump(4),
            /* 17 */ Instr::LocalGet(1),
            /* 18 */ Instr::Return,
        ];
        // Fix: end label is 17; instruction 7 jumps to 16 which jumps back.
        let mut code = code;
        code[7] = Instr::JumpIfNonZero(17);
        assert_eq!(run(code, &[100]), Ok(Some(5050)));
    }

    #[test]
    fn memory_round_trip() {
        let code = vec![
            Instr::Const(64),
            Instr::Const(0xdead_beef_cafe_f00d),
            Instr::Store64(0),
            Instr::Const(64),
            Instr::Load64(0),
            Instr::Return,
        ];
        assert_eq!(run(code, &[]), Ok(Some(0xdead_beef_cafe_f00d)));
    }

    #[test]
    fn memory_oob_traps() {
        let code = vec![
            Instr::Const(PAGE_SIZE as u64 - 4),
            Instr::Load64(0),
            Instr::Return,
        ];
        assert!(matches!(run(code, &[]), Err(Trap::OutOfBounds { .. })));
        // Offset wrap-around must trap, not alias low memory.
        let code = vec![Instr::Const(u64::MAX), Instr::Load8(10), Instr::Return];
        assert!(matches!(run(code, &[]), Err(Trap::OutOfBounds { .. })));
        let code = vec![
            Instr::Const(u64::MAX - 2),
            Instr::Const(1),
            Instr::Store64(8),
            Instr::Const(0),
            Instr::Return,
        ];
        assert!(matches!(run(code, &[]), Err(Trap::OutOfBounds { .. })));
    }

    #[test]
    fn mem_grow_respects_max() {
        let code = vec![
            Instr::Const(1),
            Instr::MemGrow, // 1 -> 2 pages, returns 1
            Instr::Drop,
            Instr::Const(1),
            Instr::MemGrow, // beyond max=2, returns MAX
            Instr::Return,
        ];
        assert_eq!(run(code, &[]), Ok(Some(u64::MAX)));
    }

    #[test]
    fn data_segments_initialized() {
        let mut m = module_with(
            vec![Instr::Const(16), Instr::Load8(0), Instr::Return],
            0,
            0,
            1,
        );
        m.data.push(DataSegment {
            offset: 16,
            bytes: vec![0x5a],
        });
        let mut inst = Instance::new(m, Limits::default()).unwrap();
        assert_eq!(inst.invoke("main", &[], &mut NoHost), Ok(Some(0x5a)));
    }

    #[test]
    fn fuel_exhaustion_traps() {
        // Infinite loop must hit OutOfFuel, not hang.
        let code = vec![Instr::Jump(0)];
        let m = module_with(code, 0, 0, 0);
        let mut inst = Instance::new(
            m,
            Limits {
                fuel: 10_000,
                ..Limits::default()
            },
        )
        .unwrap();
        assert_eq!(inst.invoke("main", &[], &mut NoHost), Err(Trap::OutOfFuel));
        assert!(inst.last_fuel_used <= 10_000);
    }

    #[test]
    fn stack_overflow_contained() {
        // Push forever.
        let code = vec![Instr::Const(1), Instr::Jump(0)];
        let m = module_with(code, 0, 0, 0);
        let mut inst = Instance::new(
            m,
            Limits {
                fuel: u64::MAX / 2,
                max_stack: 1024,
                max_call_depth: 8,
            },
        )
        .unwrap();
        assert_eq!(
            inst.invoke("main", &[], &mut NoHost),
            Err(Trap::StackOverflow)
        );
    }

    #[test]
    fn call_depth_contained() {
        // fn 0 calls itself.
        let m = Module {
            imports: vec![],
            functions: vec![Function {
                params: 0,
                locals: 0,
                returns: 0,
                code: vec![Instr::Call(0), Instr::Return],
            }],
            exports: vec![Export {
                name: "main".into(),
                function: 0,
            }],
            data: vec![],
            initial_pages: 1,
            max_pages: 1,
        };
        let mut inst = Instance::new(m, Limits::default()).unwrap();
        assert_eq!(
            inst.invoke("main", &[], &mut NoHost),
            Err(Trap::CallDepthExceeded)
        );
    }

    #[test]
    fn cross_function_calls() {
        // fn1(x) = x + 1; main(x) = fn1(fn1(x))
        let m = Module {
            imports: vec![],
            functions: vec![
                Function {
                    params: 1,
                    locals: 0,
                    returns: 1,
                    code: vec![
                        Instr::LocalGet(0),
                        Instr::Call(1),
                        Instr::Call(1),
                        Instr::Return,
                    ],
                },
                Function {
                    params: 1,
                    locals: 0,
                    returns: 1,
                    code: vec![
                        Instr::LocalGet(0),
                        Instr::Const(1),
                        Instr::Add,
                        Instr::Return,
                    ],
                },
            ],
            exports: vec![Export {
                name: "main".into(),
                function: 0,
            }],
            data: vec![],
            initial_pages: 1,
            max_pages: 1,
        };
        let mut inst = Instance::new(m, Limits::default()).unwrap();
        assert_eq!(inst.invoke("main", &[40], &mut NoHost), Ok(Some(42)));
    }

    #[test]
    fn host_calls_flow_values_and_memory() {
        struct Adder {
            observed: Vec<u64>,
        }
        impl Host for Adder {
            fn call(
                &mut self,
                index: u16,
                args: &[u64],
                memory: &mut Memory,
            ) -> Result<Vec<u64>, String> {
                assert_eq!(index, 0);
                self.observed.extend_from_slice(args);
                // Write a marker into guest memory to prove the host view
                // is the same memory.
                memory.write(128, &[7]).map_err(|e| e.to_string())?;
                Ok(vec![args[0] + args[1]])
            }
        }
        let m = Module {
            imports: vec![crate::module::ImportSig {
                name: "env.add".into(),
                params: 2,
                returns: 1,
            }],
            functions: vec![Function {
                params: 0,
                locals: 0,
                returns: 1,
                code: vec![
                    Instr::Const(20),
                    Instr::Const(22),
                    Instr::HostCall(0),
                    // Read back the marker the host wrote.
                    Instr::Const(128),
                    Instr::Load8(0),
                    Instr::Add,
                    Instr::Return,
                ],
            }],
            exports: vec![Export {
                name: "main".into(),
                function: 0,
            }],
            data: vec![],
            initial_pages: 1,
            max_pages: 1,
        };
        let mut inst = Instance::new(m, Limits::default()).unwrap();
        let mut host = Adder { observed: vec![] };
        assert_eq!(inst.invoke("main", &[], &mut host), Ok(Some(49)));
        assert_eq!(host.observed, vec![20, 22]);
    }

    #[test]
    fn host_errors_become_traps() {
        let m = Module {
            imports: vec![crate::module::ImportSig {
                name: "env.fail".into(),
                params: 0,
                returns: 0,
            }],
            functions: vec![Function {
                params: 0,
                locals: 0,
                returns: 0,
                code: vec![Instr::HostCall(0), Instr::Return],
            }],
            exports: vec![Export {
                name: "main".into(),
                function: 0,
            }],
            data: vec![],
            initial_pages: 1,
            max_pages: 1,
        };
        struct Failing;
        impl Host for Failing {
            fn call(&mut self, _: u16, _: &[u64], _: &mut Memory) -> Result<Vec<u64>, String> {
                Err("host refused".into())
            }
        }
        let mut inst = Instance::new(m, Limits::default()).unwrap();
        assert_eq!(
            inst.invoke("main", &[], &mut Failing),
            Err(Trap::Host("host refused".into()))
        );
    }

    #[test]
    fn wrong_arity_rejected() {
        // Function declares two parameters; invoke with zero.
        let m = module_with(vec![Instr::LocalGet(0), Instr::Return], 2, 0, 1);
        let mut inst = Instance::new(m, Limits::default()).unwrap();
        assert_eq!(
            inst.invoke("main", &[], &mut NoHost),
            Err(Trap::ArityMismatch {
                expected: 2,
                got: 0
            })
        );
    }

    #[test]
    fn unknown_export_rejected() {
        let m = module_with(vec![Instr::Return], 0, 0, 0);
        let mut inst = Instance::new(m, Limits::default()).unwrap();
        assert_eq!(
            inst.invoke("nope", &[], &mut NoHost),
            Err(Trap::UnknownExport("nope".into()))
        );
    }

    #[test]
    fn explicit_trap() {
        assert_eq!(run(vec![Instr::Trap], &[]), Err(Trap::Explicit));
    }

    #[test]
    fn fell_off_end_detected() {
        // A jump that skips Return then runs off the end.
        let code = vec![Instr::Jump(1), Instr::Const(1), Instr::Drop];
        let m = module_with(code, 0, 0, 0);
        let mut inst = Instance::new(m, Limits::default()).unwrap();
        assert_eq!(inst.invoke("main", &[], &mut NoHost), Err(Trap::FellOffEnd));
    }

    #[test]
    fn memory_persists_across_invocations() {
        let m = Module {
            imports: vec![],
            functions: vec![
                Function {
                    params: 1,
                    locals: 0,
                    returns: 0,
                    code: vec![
                        Instr::Const(8),
                        Instr::LocalGet(0),
                        Instr::Store64(0),
                        Instr::Return,
                    ],
                },
                Function {
                    params: 0,
                    locals: 0,
                    returns: 1,
                    code: vec![Instr::Const(8), Instr::Load64(0), Instr::Return],
                },
            ],
            exports: vec![
                Export {
                    name: "set".into(),
                    function: 0,
                },
                Export {
                    name: "get".into(),
                    function: 1,
                },
            ],
            data: vec![],
            initial_pages: 1,
            max_pages: 1,
        };
        let mut inst = Instance::new(m, Limits::default()).unwrap();
        inst.invoke("set", &[12345], &mut NoHost).unwrap();
        assert_eq!(inst.invoke("get", &[], &mut NoHost), Ok(Some(12345)));
    }
}
