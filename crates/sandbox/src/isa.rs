//! The sandbox instruction set: a small stack machine over `u64` values.
//!
//! The design deliberately mirrors WebAssembly's shape (stack machine,
//! linear memory, explicit host imports, validated modules) at a fraction of
//! the complexity — this crate is the reproduction's stand-in for the Wasm
//! sandbox of the paper's prototype (§5). Control flow uses validated
//! absolute jump targets instead of Wasm's structured blocks; everything
//! else (bounds-checked memory, fuel, host boundary) carries over.

use distrust_wire::codec::{Decode, DecodeError, Encode};

/// One instruction. Operands are immediate; dynamic inputs come from the
/// value stack (documented per variant as `[inputs] -> [outputs]`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// `[] -> [imm]` — push an immediate.
    Const(u64),
    /// `[] -> [local]` — read local/parameter slot.
    LocalGet(u16),
    /// `[v] -> []` — write local/parameter slot.
    LocalSet(u16),
    /// `[a b] -> [a+b]` (wrapping).
    Add,
    /// `[a b] -> [a-b]` (wrapping).
    Sub,
    /// `[a b] -> [a*b]` (wrapping).
    Mul,
    /// `[a b] -> [a/b]`; traps on `b == 0`.
    DivU,
    /// `[a b] -> [a%b]`; traps on `b == 0`.
    RemU,
    /// `[a b] -> [a&b]`.
    And,
    /// `[a b] -> [a|b]`.
    Or,
    /// `[a b] -> [a^b]`.
    Xor,
    /// `[a b] -> [a << (b&63)]`.
    Shl,
    /// `[a b] -> [a >> (b&63)]` (logical).
    ShrU,
    /// `[a b] -> [rotr64(a, b&63)]` — hash kernels want this.
    Rotr,
    /// `[a b] -> [a==b ? 1 : 0]`.
    Eq,
    /// `[a b] -> [a!=b ? 1 : 0]`.
    Ne,
    /// `[a b] -> [a<b ? 1 : 0]` (unsigned).
    LtU,
    /// `[a b] -> [a>b ? 1 : 0]`.
    GtU,
    /// `[a b] -> [a<=b ? 1 : 0]`.
    LeU,
    /// `[a b] -> [a>=b ? 1 : 0]`.
    GeU,
    /// `[c] -> []` + jump to target when `c == 0`.
    JumpIfZero(u32),
    /// `[c] -> []` + jump to target when `c != 0`.
    JumpIfNonZero(u32),
    /// `[] -> []` + unconditional jump.
    Jump(u32),
    /// `[args..] -> [ret?]` — call module function by index.
    Call(u16),
    /// `[args..] -> [rets..]` — call imported host function by index.
    HostCall(u16),
    /// Return from the current function (top of stack is the return value
    /// when the function declares one).
    Return,
    /// `[addr] -> [byte]` — load one byte at `addr + offset`.
    Load8(u32),
    /// `[addr] -> [word]` — load little-endian u64 at `addr + offset`.
    Load64(u32),
    /// `[addr v] -> []` — store low byte of `v` at `addr + offset`.
    Store8(u32),
    /// `[addr v] -> []` — store little-endian u64 at `addr + offset`.
    Store64(u32),
    /// `[] -> [pages]` — current memory size in 64 KiB pages.
    MemSize,
    /// `[delta] -> [old_pages or u64::MAX]` — grow memory.
    MemGrow,
    /// `[v] -> []`.
    Drop,
    /// `[v] -> [v v]`.
    Dup,
    /// `[a b] -> [b a]`.
    Swap,
    /// `[c a b] -> [c != 0 ? a : b]`.
    Select,
    /// Abort execution with an explicit trap.
    Trap,
}

impl Instr {
    const OP_CONST: u8 = 0x01;
    const OP_LOCAL_GET: u8 = 0x02;
    const OP_LOCAL_SET: u8 = 0x03;
    const OP_ADD: u8 = 0x10;
    const OP_SUB: u8 = 0x11;
    const OP_MUL: u8 = 0x12;
    const OP_DIVU: u8 = 0x13;
    const OP_REMU: u8 = 0x14;
    const OP_AND: u8 = 0x15;
    const OP_OR: u8 = 0x16;
    const OP_XOR: u8 = 0x17;
    const OP_SHL: u8 = 0x18;
    const OP_SHRU: u8 = 0x19;
    const OP_ROTR: u8 = 0x1a;
    const OP_EQ: u8 = 0x20;
    const OP_NE: u8 = 0x21;
    const OP_LTU: u8 = 0x22;
    const OP_GTU: u8 = 0x23;
    const OP_LEU: u8 = 0x24;
    const OP_GEU: u8 = 0x25;
    const OP_JZ: u8 = 0x30;
    const OP_JNZ: u8 = 0x31;
    const OP_JMP: u8 = 0x32;
    const OP_CALL: u8 = 0x33;
    const OP_HOST: u8 = 0x34;
    const OP_RET: u8 = 0x35;
    const OP_LOAD8: u8 = 0x40;
    const OP_LOAD64: u8 = 0x41;
    const OP_STORE8: u8 = 0x42;
    const OP_STORE64: u8 = 0x43;
    const OP_MEMSIZE: u8 = 0x44;
    const OP_MEMGROW: u8 = 0x45;
    const OP_DROP: u8 = 0x50;
    const OP_DUP: u8 = 0x51;
    const OP_SWAP: u8 = 0x52;
    const OP_SELECT: u8 = 0x53;
    const OP_TRAP: u8 = 0x5f;
}

impl Encode for Instr {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Instr::Const(v) => {
                out.push(Self::OP_CONST);
                v.encode(out);
            }
            Instr::LocalGet(i) => {
                out.push(Self::OP_LOCAL_GET);
                i.encode(out);
            }
            Instr::LocalSet(i) => {
                out.push(Self::OP_LOCAL_SET);
                i.encode(out);
            }
            Instr::Add => out.push(Self::OP_ADD),
            Instr::Sub => out.push(Self::OP_SUB),
            Instr::Mul => out.push(Self::OP_MUL),
            Instr::DivU => out.push(Self::OP_DIVU),
            Instr::RemU => out.push(Self::OP_REMU),
            Instr::And => out.push(Self::OP_AND),
            Instr::Or => out.push(Self::OP_OR),
            Instr::Xor => out.push(Self::OP_XOR),
            Instr::Shl => out.push(Self::OP_SHL),
            Instr::ShrU => out.push(Self::OP_SHRU),
            Instr::Rotr => out.push(Self::OP_ROTR),
            Instr::Eq => out.push(Self::OP_EQ),
            Instr::Ne => out.push(Self::OP_NE),
            Instr::LtU => out.push(Self::OP_LTU),
            Instr::GtU => out.push(Self::OP_GTU),
            Instr::LeU => out.push(Self::OP_LEU),
            Instr::GeU => out.push(Self::OP_GEU),
            Instr::JumpIfZero(t) => {
                out.push(Self::OP_JZ);
                t.encode(out);
            }
            Instr::JumpIfNonZero(t) => {
                out.push(Self::OP_JNZ);
                t.encode(out);
            }
            Instr::Jump(t) => {
                out.push(Self::OP_JMP);
                t.encode(out);
            }
            Instr::Call(f) => {
                out.push(Self::OP_CALL);
                f.encode(out);
            }
            Instr::HostCall(f) => {
                out.push(Self::OP_HOST);
                f.encode(out);
            }
            Instr::Return => out.push(Self::OP_RET),
            Instr::Load8(o) => {
                out.push(Self::OP_LOAD8);
                o.encode(out);
            }
            Instr::Load64(o) => {
                out.push(Self::OP_LOAD64);
                o.encode(out);
            }
            Instr::Store8(o) => {
                out.push(Self::OP_STORE8);
                o.encode(out);
            }
            Instr::Store64(o) => {
                out.push(Self::OP_STORE64);
                o.encode(out);
            }
            Instr::MemSize => out.push(Self::OP_MEMSIZE),
            Instr::MemGrow => out.push(Self::OP_MEMGROW),
            Instr::Drop => out.push(Self::OP_DROP),
            Instr::Dup => out.push(Self::OP_DUP),
            Instr::Swap => out.push(Self::OP_SWAP),
            Instr::Select => out.push(Self::OP_SELECT),
            Instr::Trap => out.push(Self::OP_TRAP),
        }
    }
}

impl Decode for Instr {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let op = u8::decode(input)?;
        Ok(match op {
            Self::OP_CONST => Instr::Const(u64::decode(input)?),
            Self::OP_LOCAL_GET => Instr::LocalGet(u16::decode(input)?),
            Self::OP_LOCAL_SET => Instr::LocalSet(u16::decode(input)?),
            Self::OP_ADD => Instr::Add,
            Self::OP_SUB => Instr::Sub,
            Self::OP_MUL => Instr::Mul,
            Self::OP_DIVU => Instr::DivU,
            Self::OP_REMU => Instr::RemU,
            Self::OP_AND => Instr::And,
            Self::OP_OR => Instr::Or,
            Self::OP_XOR => Instr::Xor,
            Self::OP_SHL => Instr::Shl,
            Self::OP_SHRU => Instr::ShrU,
            Self::OP_ROTR => Instr::Rotr,
            Self::OP_EQ => Instr::Eq,
            Self::OP_NE => Instr::Ne,
            Self::OP_LTU => Instr::LtU,
            Self::OP_GTU => Instr::GtU,
            Self::OP_LEU => Instr::LeU,
            Self::OP_GEU => Instr::GeU,
            Self::OP_JZ => Instr::JumpIfZero(u32::decode(input)?),
            Self::OP_JNZ => Instr::JumpIfNonZero(u32::decode(input)?),
            Self::OP_JMP => Instr::Jump(u32::decode(input)?),
            Self::OP_CALL => Instr::Call(u16::decode(input)?),
            Self::OP_HOST => Instr::HostCall(u16::decode(input)?),
            Self::OP_RET => Instr::Return,
            Self::OP_LOAD8 => Instr::Load8(u32::decode(input)?),
            Self::OP_LOAD64 => Instr::Load64(u32::decode(input)?),
            Self::OP_STORE8 => Instr::Store8(u32::decode(input)?),
            Self::OP_STORE64 => Instr::Store64(u32::decode(input)?),
            Self::OP_MEMSIZE => Instr::MemSize,
            Self::OP_MEMGROW => Instr::MemGrow,
            Self::OP_DROP => Instr::Drop,
            Self::OP_DUP => Instr::Dup,
            Self::OP_SWAP => Instr::Swap,
            Self::OP_SELECT => Instr::Select,
            Self::OP_TRAP => Instr::Trap,
            other => return Err(DecodeError::InvalidTag(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Instr> {
        vec![
            Instr::Const(u64::MAX),
            Instr::LocalGet(7),
            Instr::LocalSet(0),
            Instr::Add,
            Instr::Sub,
            Instr::Mul,
            Instr::DivU,
            Instr::RemU,
            Instr::And,
            Instr::Or,
            Instr::Xor,
            Instr::Shl,
            Instr::ShrU,
            Instr::Rotr,
            Instr::Eq,
            Instr::Ne,
            Instr::LtU,
            Instr::GtU,
            Instr::LeU,
            Instr::GeU,
            Instr::JumpIfZero(3),
            Instr::JumpIfNonZero(4),
            Instr::Jump(5),
            Instr::Call(1),
            Instr::HostCall(2),
            Instr::Return,
            Instr::Load8(16),
            Instr::Load64(24),
            Instr::Store8(0),
            Instr::Store64(8),
            Instr::MemSize,
            Instr::MemGrow,
            Instr::Drop,
            Instr::Dup,
            Instr::Swap,
            Instr::Select,
            Instr::Trap,
        ]
    }

    #[test]
    fn every_instruction_round_trips() {
        for instr in all_variants() {
            let wire = instr.to_wire();
            assert_eq!(Instr::from_wire(&wire), Ok(instr), "{instr:?}");
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(Instr::from_wire(&[0xff]).is_err());
        assert!(Instr::from_wire(&[0x00]).is_err());
    }

    #[test]
    fn truncated_operand_rejected() {
        let mut wire = Instr::Const(42).to_wire();
        wire.truncate(4);
        assert!(Instr::from_wire(&wire).is_err());
    }

    #[test]
    fn opcodes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for instr in all_variants() {
            let op = instr.to_wire()[0];
            assert!(seen.insert(op), "duplicate opcode 0x{op:02x} for {instr:?}");
        }
    }
}
