//! # distrust-sandbox
//!
//! The sandboxed execution environment of the `distrust` framework — this
//! workspace's stand-in for the WebAssembly/Node.js sandbox of the paper's
//! prototype (§5), per the substitution table in DESIGN.md.
//!
//! §4.1 requires that "the executed code cannot 'escape' the sandbox and
//! have an effect on the system outside the sandbox (i.e. the framework)".
//! The VM here delivers that with an isolated, bounds-checked linear
//! memory, fuel metering (so hostile updates cannot wedge the framework),
//! bounded value/call stacks, and an explicit host-import boundary.
//!
//! * [`isa`] — the stack-machine instruction set with canonical encoding.
//! * [`module`] — modules (functions, imports, data, exports), validation,
//!   and the **code digest** that trust domains log and attest to.
//! * [`vm`] — the interpreter: [`vm::Instance`], [`vm::Host`], [`vm::Trap`].
//! * [`builder`] — programmatic construction with symbolic labels.
//! * [`asm`] — a textual assembler (the "developer toolchain").
//! * [`guests`] — reference guest programs, including a complete SHA-256
//!   kernel validated against the native implementation.

pub mod asm;
pub mod builder;
pub mod guests;
pub mod isa;
pub mod module;
pub mod vm;

pub use asm::{assemble, AsmError};
pub use builder::{FuncBuilder, ModuleBuilder};
pub use isa::Instr;
pub use module::{Export, Function, ImportSig, Module, ValidateError, PAGE_SIZE};
pub use vm::{Host, Instance, Limits, Memory, NoHost, Trap};
