//! Reference guest programs.
//!
//! The flagship is a complete **SHA-256 compression kernel in sandbox
//! bytecode** — the analogue of compiling a real algorithm to Wasm, used to
//! (a) prove the VM executes non-trivial programs correctly (output is
//! checked against the native implementation in `distrust-crypto`) and
//! (b) measure the interpreter's slowdown against native code for the
//! sandbox-overhead ablation, mirroring the Wasm-vs-native study the paper
//! cites (reference \[39\], Jangda et al.).

use crate::builder::{FuncBuilder, ModuleBuilder};
use crate::isa::Instr;
use crate::module::Module;
use crate::vm::{Host, Instance, Limits, NoHost, Trap};

/// Guest memory layout for the SHA-256 module.
pub mod sha256_layout {
    /// Input block (64 bytes).
    pub const INPUT: u64 = 0;
    /// Hash state: 8 × u64 slots, each holding a 32-bit word.
    pub const STATE: u64 = 256;
    /// Message schedule W[0..64]: 64 × u64 slots.
    pub const W: u64 = 512;
    /// Round constants K[0..64]: 64 × u64 slots (data segment).
    pub const K: u64 = 1024;
}

const M32: u64 = 0xffff_ffff;

const K32: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Builds the SHA-256 guest module.
///
/// Exports:
/// * `init` — resets the hash state to the SHA-256 IV.
/// * `compress` — runs the compression function over the 64-byte block at
///   [`sha256_layout::INPUT`], updating the state in place.
///
/// Function indices: 0 = init, 1 = compress, 2 = rotr32 helper.
pub fn sha256_module() -> Module {
    let mut mb = ModuleBuilder::new(1, 1);

    // K constants as a data segment of u64 slots.
    let mut k_bytes = Vec::with_capacity(64 * 8);
    for k in K32 {
        k_bytes.extend_from_slice(&(k as u64).to_le_bytes());
    }
    mb.data(sha256_layout::K as u32, k_bytes);

    // fn 0: init — store the IV into STATE.
    let mut init = FuncBuilder::new(0, 0, 0);
    for (i, h) in H0.iter().enumerate() {
        init.constant(sha256_layout::STATE + (i as u64) * 8)
            .constant(*h as u64)
            .store64(0);
    }
    init.ret();

    // fn 2: rotr32(x, n) -> ((x >> n) | (x << (32 - n))) & M32
    let mut rotr = FuncBuilder::new(2, 0, 1);
    rotr.lget(0)
        .lget(1)
        .shr()
        .lget(0)
        .constant(32)
        .lget(1)
        .sub()
        .shl()
        .or()
        .constant(M32)
        .and()
        .ret();

    // fn 1: compress.
    // Locals: 0=i, 1..=8 = a..h, 9=t1, 10=t2, 11=scratch.
    let mut c = FuncBuilder::new(0, 12, 0);
    const I: u16 = 0;
    const A: u16 = 1; // ..H = 8
    const T1: u16 = 9;
    const T2: u16 = 10;
    const S: u16 = 11;
    let rotr_fn: u16 = 2;

    // --- Phase 1: W[0..16] = big-endian words of the input block.
    c.constant(0).lset(I);
    c.label("w16_loop");
    c.lget(I).constant(16).op(Instr::GeU).jnz("w16_done");
    // w = b0<<24 | b1<<16 | b2<<8 | b3 at base = i*4
    // compute base once into S
    c.lget(I).constant(4).op(Instr::Mul).lset(S);
    c.lget(S)
        .load8(0)
        .constant(24)
        .shl()
        .lget(S)
        .load8(1)
        .constant(16)
        .shl()
        .or()
        .lget(S)
        .load8(2)
        .constant(8)
        .shl()
        .or()
        .lget(S)
        .load8(3)
        .or();
    // store at W + i*8 : need address below value → build addr, swap
    c.lget(I)
        .constant(8)
        .op(Instr::Mul)
        .constant(sha256_layout::W)
        .add()
        .op(Instr::Swap)
        .store64(0);
    c.lget(I).constant(1).add().lset(I).jmp("w16_loop");
    c.label("w16_done");

    // --- Phase 2: W[16..64] message schedule expansion.
    c.constant(16).lset(I);
    c.label("wexp_loop");
    c.lget(I).constant(64).op(Instr::GeU).jnz("wexp_done");
    // s0 = rotr(W[i-15],7) ^ rotr(W[i-15],18) ^ (W[i-15] >> 3)
    let w_addr = |c: &mut FuncBuilder, back: u64| {
        // push W[i-back]
        c.lget(I)
            .constant(back)
            .sub()
            .constant(8)
            .op(Instr::Mul)
            .constant(sha256_layout::W)
            .add()
            .load64(0);
    };
    w_addr(&mut c, 15);
    c.constant(7).call(rotr_fn);
    w_addr(&mut c, 15);
    c.constant(18).call(rotr_fn).xor();
    w_addr(&mut c, 15);
    c.constant(3).shr().xor().lset(T1); // T1 = s0
                                        // s1 = rotr(W[i-2],17) ^ rotr(W[i-2],19) ^ (W[i-2] >> 10)
    w_addr(&mut c, 2);
    c.constant(17).call(rotr_fn);
    w_addr(&mut c, 2);
    c.constant(19).call(rotr_fn).xor();
    w_addr(&mut c, 2);
    c.constant(10).shr().xor().lset(T2); // T2 = s1
                                         // W[i] = (W[i-16] + s0 + W[i-7] + s1) & M32
                                         // target address first:
    c.lget(I)
        .constant(8)
        .op(Instr::Mul)
        .constant(sha256_layout::W)
        .add();
    w_addr(&mut c, 16);
    c.lget(T1).add();
    w_addr(&mut c, 7);
    c.add().lget(T2).add().constant(M32).and().store64(0);
    c.lget(I).constant(1).add().lset(I).jmp("wexp_loop");
    c.label("wexp_done");

    // --- Phase 3: load state into locals a..h.
    for j in 0..8u16 {
        c.constant(sha256_layout::STATE + (j as u64) * 8)
            .load64(0)
            .lset(A + j);
    }

    // --- Phase 4: 64 rounds.
    c.constant(0).lset(I);
    c.label("round_loop");
    c.lget(I).constant(64).op(Instr::GeU).jnz("round_done");
    let (a, b, bb, d, e, f, g, h) = (A, A + 1, A + 2, A + 3, A + 4, A + 5, A + 6, A + 7);
    // S1 = rotr(e,6) ^ rotr(e,11) ^ rotr(e,25)
    c.lget(e).constant(6).call(rotr_fn);
    c.lget(e).constant(11).call(rotr_fn).xor();
    c.lget(e).constant(25).call(rotr_fn).xor().lset(S);
    // ch = (e & f) ^ ((e ^ M32) & g)
    c.lget(e).lget(f).and();
    c.lget(e).constant(M32).xor().lget(g).and().xor();
    // t1 = (h + S1 + ch + K[i] + W[i]) & M32
    c.lget(h).add().lget(S).add();
    c.lget(I)
        .constant(8)
        .op(Instr::Mul)
        .constant(sha256_layout::K)
        .add()
        .load64(0)
        .add();
    c.lget(I)
        .constant(8)
        .op(Instr::Mul)
        .constant(sha256_layout::W)
        .add()
        .load64(0)
        .add()
        .constant(M32)
        .and()
        .lset(T1);
    // S0 = rotr(a,2) ^ rotr(a,13) ^ rotr(a,22)
    c.lget(a).constant(2).call(rotr_fn);
    c.lget(a).constant(13).call(rotr_fn).xor();
    c.lget(a).constant(22).call(rotr_fn).xor().lset(S);
    // maj = (a & b) ^ (a & c) ^ (b & c)
    c.lget(a).lget(b).and();
    c.lget(a).lget(bb).and().xor();
    c.lget(b).lget(bb).and().xor();
    // t2 = (S0 + maj) & M32
    c.lget(S).add().constant(M32).and().lset(T2);
    // rotate registers
    c.lget(g).lset(h);
    c.lget(f).lset(g);
    c.lget(e).lset(f);
    c.lget(d).lget(T1).add().constant(M32).and().lset(e);
    c.lget(bb).lset(d);
    c.lget(b).lset(bb);
    c.lget(a).lset(b);
    c.lget(T1).lget(T2).add().constant(M32).and().lset(a);
    c.lget(I).constant(1).add().lset(I).jmp("round_loop");
    c.label("round_done");

    // --- Phase 5: state[j] = (state[j] + local) & M32.
    for j in 0..8u16 {
        let addr = sha256_layout::STATE + (j as u64) * 8;
        c.constant(addr)
            .constant(addr)
            .load64(0)
            .lget(A + j)
            .add()
            .constant(M32)
            .and()
            .store64(0);
    }
    c.ret();

    let init_idx = mb.function(init.build().expect("init builds"));
    let compress_idx = mb.function(c.build().expect("compress builds"));
    let rotr_idx = mb.function(rotr.build().expect("rotr builds"));
    debug_assert_eq!((init_idx, compress_idx, rotr_idx), (0, 1, 2));
    mb.export("init", init_idx);
    mb.export("compress", compress_idx);
    mb.build()
}

/// Runs the SHA-256 guest over `message`, performing the FIPS 180-4 padding
/// host-side (as the embedding application would), and returns the digest.
pub fn guest_sha256(instance: &mut Instance, message: &[u8]) -> Result<[u8; 32], Trap> {
    let mut host = NoHost;
    instance.invoke("init", &[], &mut host)?;
    // Pad: message || 0x80 || zeros || 64-bit big-endian bit length.
    let bit_len = (message.len() as u64) * 8;
    let mut padded = message.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());
    for block in padded.chunks_exact(64) {
        instance.memory.write(sha256_layout::INPUT, block)?;
        instance.invoke("compress", &[], &mut host)?;
    }
    let mut digest = [0u8; 32];
    for i in 0..8 {
        let word = instance
            .memory
            .read(sha256_layout::STATE + (i as u64) * 8, 8)?;
        let w = u64::from_le_bytes(word.try_into().expect("8 bytes")) as u32;
        digest[i * 4..(i + 1) * 4].copy_from_slice(&w.to_be_bytes());
    }
    Ok(digest)
}

/// Convenience: one-shot guest SHA-256 with a fresh instance.
pub fn sha256_in_sandbox(message: &[u8]) -> Result<[u8; 32], Trap> {
    let mut inst = Instance::new(sha256_module(), Limits::default())?;
    guest_sha256(&mut inst, message)
}

/// Builds the "counter" demo application used by the update-flow examples:
/// an app with persistent guest state (a counter at memory address 0) and a
/// version-stamped `get_version` export, so that v1 vs. v2 of "the
/// application code" genuinely differ in both behaviour and digest.
pub fn counter_module(version: u64) -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    // fn 0: bump() -> new counter value
    let mut bump = FuncBuilder::new(0, 0, 1);
    bump.constant(0)
        .constant(0)
        .load64(0)
        .constant(1)
        .add()
        .store64(0)
        .constant(0)
        .load64(0)
        .ret();
    // fn 1: get_version() -> version
    let mut ver = FuncBuilder::new(0, 0, 1);
    ver.constant(version).ret();
    let b = mb.function(bump.build().expect("bump builds"));
    let v = mb.function(ver.build().expect("ver builds"));
    mb.export("bump", b);
    mb.export("get_version", v);
    mb.build()
}

/// Builds a deliberately malicious module that tries to escape the sandbox:
/// it attempts out-of-bounds reads/writes and infinite loops. Used by
/// escape-prevention tests and the update-audit example (the "malicious
/// update" the framework must contain).
pub fn hostile_module() -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    // fn 0: "oob_read" — read far beyond memory.
    let mut oob = FuncBuilder::new(0, 0, 1);
    oob.constant(u64::MAX / 2).load64(0).ret();
    // fn 1: "spin" — infinite loop.
    let mut spin = FuncBuilder::new(0, 0, 0);
    spin.label("top").jmp("top");
    // fn 2: "grow_bomb" — grow memory until refused, then OOB write.
    let mut bomb = FuncBuilder::new(0, 0, 1);
    bomb.label("grow")
        .constant(1)
        .op(Instr::MemGrow)
        .constant(u64::MAX)
        .op(Instr::Ne)
        .jnz("grow")
        // now write past the end
        .op(Instr::MemSize)
        .constant(crate::module::PAGE_SIZE as u64)
        .op(Instr::Mul)
        .constant(7)
        .store64(0)
        .constant(1)
        .ret();
    let a = mb.function(oob.build().expect("builds"));
    let b = mb.function(spin.build().expect("builds"));
    let c = mb.function(bomb.build().expect("builds"));
    mb.export("oob_read", a);
    mb.export("spin", b);
    mb.export("grow_bomb", c);
    mb.build()
}

/// Host-call latency probe: a module that calls import 0 `n` times in a
/// loop. Used by the sandbox-overhead ablation to price the guest↔host
/// boundary (the analogue of the Wasm↔JS boundary in the paper's
/// prototype).
pub fn hostcall_loop_module() -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    let imp = mb.import("env.nop", 0, 0);
    let mut f = FuncBuilder::new(1, 0, 0);
    f.label("loop")
        .lget(0)
        .jz("done")
        .host(imp)
        .lget(0)
        .constant(1)
        .sub()
        .lset(0)
        .jmp("loop")
        .label("done")
        .ret();
    let idx = mb.function(f.build().expect("builds"));
    mb.export("run", idx);
    mb.build()
}

/// A host that counts invocations of `env.nop`.
pub struct CountingHost {
    /// Number of host calls observed.
    pub calls: u64,
}

impl Host for CountingHost {
    fn call(
        &mut self,
        _index: u16,
        _args: &[u64],
        _memory: &mut crate::vm::Memory,
    ) -> Result<Vec<u64>, String> {
        self.calls += 1;
        Ok(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::Limits;

    #[test]
    fn sha256_module_validates() {
        assert!(sha256_module().validate().is_ok());
    }

    #[test]
    fn guest_sha256_matches_native_empty() {
        let guest = sha256_in_sandbox(b"").unwrap();
        assert_eq!(guest, distrust_crypto::sha256(b""));
    }

    #[test]
    fn guest_sha256_matches_native_abc() {
        let guest = sha256_in_sandbox(b"abc").unwrap();
        assert_eq!(guest, distrust_crypto::sha256(b"abc"));
    }

    #[test]
    fn guest_sha256_matches_native_multiblock() {
        let msg: Vec<u8> = (0u32..300).map(|i| (i % 251) as u8).collect();
        let guest = sha256_in_sandbox(&msg).unwrap();
        assert_eq!(guest, distrust_crypto::sha256(&msg));
    }

    #[test]
    fn guest_sha256_various_lengths() {
        for len in [1usize, 55, 56, 63, 64, 65, 127, 128] {
            let msg = vec![0x61u8; len];
            assert_eq!(
                sha256_in_sandbox(&msg).unwrap(),
                distrust_crypto::sha256(&msg),
                "len={len}"
            );
        }
    }

    #[test]
    fn counter_module_behaviour() {
        let mut inst = Instance::new(counter_module(1), Limits::default()).unwrap();
        let mut host = NoHost;
        assert_eq!(inst.invoke("get_version", &[], &mut host), Ok(Some(1)));
        assert_eq!(inst.invoke("bump", &[], &mut host), Ok(Some(1)));
        assert_eq!(inst.invoke("bump", &[], &mut host), Ok(Some(2)));
        assert_eq!(inst.invoke("bump", &[], &mut host), Ok(Some(3)));
    }

    #[test]
    fn counter_versions_have_distinct_digests() {
        assert_ne!(counter_module(1).digest(), counter_module(2).digest());
    }

    #[test]
    fn hostile_module_is_contained() {
        let mut inst = Instance::new(
            hostile_module(),
            Limits {
                fuel: 1_000_000,
                ..Limits::default()
            },
        )
        .unwrap();
        let mut host = NoHost;
        assert!(matches!(
            inst.invoke("oob_read", &[], &mut host),
            Err(Trap::OutOfBounds { .. })
        ));
        assert_eq!(inst.invoke("spin", &[], &mut host), Err(Trap::OutOfFuel));
        assert!(matches!(
            inst.invoke("grow_bomb", &[], &mut host),
            Err(Trap::OutOfBounds { .. })
        ));
        // The instance (and thus the framework hosting it) survives all of
        // the above and keeps serving.
        assert!(!inst.memory.is_empty());
    }

    #[test]
    fn hostcall_loop_counts() {
        let mut inst = Instance::new(hostcall_loop_module(), Limits::default()).unwrap();
        let mut host = CountingHost { calls: 0 };
        inst.invoke("run", &[100], &mut host).unwrap();
        assert_eq!(host.calls, 100);
    }
}
