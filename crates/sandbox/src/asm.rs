//! A small textual assembler for sandbox modules.
//!
//! This is the "developer-facing" format of the reproduction: example
//! applications ship guest code as assembly text, the developer "compiles"
//! it with [`assemble`], and the resulting module bytes are what gets
//! signed, measured, and deployed — the moral equivalent of the paper's
//! C++ → Emscripten → Wasm pipeline at a vastly smaller scale.
//!
//! ## Syntax
//!
//! ```text
//! ; comments run to end of line
//! memory 1 4                      ; initial pages, max pages
//! import env.g1_double 1 1        ; name, params, returns
//! data 16 deadbeef                ; offset, hex bytes
//!
//! func main params=1 locals=2 returns=1
//!   const 10
//!   local.get 0
//!   add
//!   jnz @skip
//! @skip:
//!   return
//! end
//!
//! export main main                ; exported-name, function-name
//! ```

use crate::isa::Instr;
use crate::module::{DataSegment, Export, Function, ImportSig, Module};
use std::collections::HashMap;

/// Assembly errors with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Parses a number, accepting decimal or `0x...` hex.
fn parse_num(s: &str, line: usize) -> Result<u64, AsmError> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse::<u64>()
    };
    parsed.map_err(|_| err(line, format!("invalid number {s:?}")))
}

fn parse_hex_bytes(s: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    if !s.len().is_multiple_of(2) {
        return Err(err(line, "odd-length hex string"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| err(line, format!("invalid hex {:?}", &s[i..i + 2])))
        })
        .collect()
}

struct PendingFunc {
    name: String,
    params: u16,
    locals: u16,
    returns: u16,
    /// (line, mnemonic parts) — resolved after labels are collected.
    body: Vec<(usize, Vec<String>)>,
    labels: HashMap<String, u32>,
}

/// Assembles source text into a validated [`Module`].
pub fn assemble(source: &str) -> Result<Module, AsmError> {
    let mut memory = (1u32, 1u32);
    let mut imports: Vec<ImportSig> = Vec::new();
    let mut data: Vec<DataSegment> = Vec::new();
    let mut funcs: Vec<PendingFunc> = Vec::new();
    let mut exports: Vec<(usize, String, String)> = Vec::new(); // (line, export name, func name)
    let mut current: Option<PendingFunc> = None;

    for (lineno0, raw) in source.lines().enumerate() {
        let line = lineno0 + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let parts: Vec<String> = text.split_whitespace().map(str::to_string).collect();
        let head = parts[0].as_str();

        if let Some(func) = current.as_mut() {
            match head {
                "end" => {
                    funcs.push(current.take().expect("inside func"));
                }
                label if label.starts_with('@') && label.ends_with(':') => {
                    let name = label[..label.len() - 1].to_string();
                    let pos = func.body.len() as u32;
                    if func.labels.insert(name.clone(), pos).is_some() {
                        return Err(err(line, format!("duplicate label {name}")));
                    }
                }
                _ => func.body.push((line, parts)),
            }
            continue;
        }

        match head {
            "memory" => {
                if parts.len() != 3 {
                    return Err(err(line, "usage: memory <initial> <max>"));
                }
                memory = (
                    parse_num(&parts[1], line)? as u32,
                    parse_num(&parts[2], line)? as u32,
                );
            }
            "import" => {
                if parts.len() != 4 {
                    return Err(err(line, "usage: import <name> <params> <returns>"));
                }
                imports.push(ImportSig {
                    name: parts[1].clone(),
                    params: parse_num(&parts[2], line)? as u16,
                    returns: parse_num(&parts[3], line)? as u16,
                });
            }
            "data" => {
                if parts.len() != 3 {
                    return Err(err(line, "usage: data <offset> <hexbytes>"));
                }
                data.push(DataSegment {
                    offset: parse_num(&parts[1], line)? as u32,
                    bytes: parse_hex_bytes(&parts[2], line)?,
                });
            }
            "func" => {
                if parts.len() < 2 {
                    return Err(err(
                        line,
                        "usage: func <name> [params=N] [locals=N] [returns=N]",
                    ));
                }
                let mut f = PendingFunc {
                    name: parts[1].clone(),
                    params: 0,
                    locals: 0,
                    returns: 0,
                    body: Vec::new(),
                    labels: HashMap::new(),
                };
                for opt in &parts[2..] {
                    let Some((key, value)) = opt.split_once('=') else {
                        return Err(err(line, format!("bad option {opt:?}")));
                    };
                    let v = parse_num(value, line)? as u16;
                    match key {
                        "params" => f.params = v,
                        "locals" => f.locals = v,
                        "returns" => f.returns = v,
                        _ => return Err(err(line, format!("unknown option {key:?}"))),
                    }
                }
                current = Some(f);
            }
            "export" => {
                if parts.len() != 3 {
                    return Err(err(line, "usage: export <exported-name> <func-name>"));
                }
                exports.push((line, parts[1].clone(), parts[2].clone()));
            }
            other => return Err(err(line, format!("unknown directive {other:?}"))),
        }
    }
    if current.is_some() {
        return Err(err(
            source.lines().count(),
            "unterminated func (missing 'end')",
        ));
    }

    let func_index: HashMap<&str, u16> = funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i as u16))
        .collect();
    let import_index: HashMap<&str, u16> = imports
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.as_str(), i as u16))
        .collect();

    let mut functions = Vec::with_capacity(funcs.len());
    for f in &funcs {
        let mut code = Vec::with_capacity(f.body.len());
        for (line, parts) in &f.body {
            let line = *line;
            let mnemonic = parts[0].as_str();
            let operand = parts.get(1).map(|s| s.as_str());
            let need = |what: &str| err(line, format!("{mnemonic} needs {what}"));
            let resolve_label = |s: Option<&str>| -> Result<u32, AsmError> {
                let name = s.ok_or_else(|| need("a label"))?;
                f.labels
                    .get(name)
                    .copied()
                    .ok_or_else(|| err(line, format!("unknown label {name}")))
            };
            let num = |s: Option<&str>| -> Result<u64, AsmError> {
                parse_num(s.ok_or_else(|| need("a numeric operand"))?, line)
            };
            let instr = match mnemonic {
                "const" => Instr::Const(num(operand)?),
                "local.get" => Instr::LocalGet(num(operand)? as u16),
                "local.set" => Instr::LocalSet(num(operand)? as u16),
                "add" => Instr::Add,
                "sub" => Instr::Sub,
                "mul" => Instr::Mul,
                "div_u" => Instr::DivU,
                "rem_u" => Instr::RemU,
                "and" => Instr::And,
                "or" => Instr::Or,
                "xor" => Instr::Xor,
                "shl" => Instr::Shl,
                "shr_u" => Instr::ShrU,
                "rotr" => Instr::Rotr,
                "eq" => Instr::Eq,
                "ne" => Instr::Ne,
                "lt_u" => Instr::LtU,
                "gt_u" => Instr::GtU,
                "le_u" => Instr::LeU,
                "ge_u" => Instr::GeU,
                "jz" => Instr::JumpIfZero(resolve_label(operand)?),
                "jnz" => Instr::JumpIfNonZero(resolve_label(operand)?),
                "jmp" => Instr::Jump(resolve_label(operand)?),
                "call" => {
                    let name = operand.ok_or_else(|| need("a function name"))?;
                    let idx = func_index
                        .get(name)
                        .copied()
                        .ok_or_else(|| err(line, format!("unknown function {name:?}")))?;
                    Instr::Call(idx)
                }
                "host" => {
                    let name = operand.ok_or_else(|| need("an import name"))?;
                    let idx = import_index
                        .get(name)
                        .copied()
                        .ok_or_else(|| err(line, format!("unknown import {name:?}")))?;
                    Instr::HostCall(idx)
                }
                "return" => Instr::Return,
                "load8" => Instr::Load8(num(operand)? as u32),
                "load64" => Instr::Load64(num(operand)? as u32),
                "store8" => Instr::Store8(num(operand)? as u32),
                "store64" => Instr::Store64(num(operand)? as u32),
                "mem.size" => Instr::MemSize,
                "mem.grow" => Instr::MemGrow,
                "drop" => Instr::Drop,
                "dup" => Instr::Dup,
                "swap" => Instr::Swap,
                "select" => Instr::Select,
                "trap" => Instr::Trap,
                other => return Err(err(line, format!("unknown mnemonic {other:?}"))),
            };
            code.push(instr);
        }
        functions.push(Function {
            params: f.params,
            locals: f.locals,
            returns: f.returns,
            code,
        });
    }

    let mut module_exports = Vec::with_capacity(exports.len());
    for (line, export_name, func_name) in exports {
        let idx = func_index
            .get(func_name.as_str())
            .copied()
            .ok_or_else(|| err(line, format!("export of unknown function {func_name:?}")))?;
        module_exports.push(Export {
            name: export_name,
            function: idx as u32,
        });
    }

    let module = Module {
        imports,
        functions,
        exports: module_exports,
        data,
        initial_pages: memory.0,
        max_pages: memory.1,
    };
    module
        .validate()
        .map_err(|e| err(0, format!("validation failed: {e}")))?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{Instance, Limits, NoHost};

    #[test]
    fn assembles_and_runs_add() {
        let src = r#"
            ; doubles its argument then adds 1
            memory 1 1
            func main params=1 returns=1
              local.get 0
              const 2
              mul
              const 1
              add
              return
            end
            export main main
        "#;
        let module = assemble(src).unwrap();
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        assert_eq!(inst.invoke("main", &[20], &mut NoHost), Ok(Some(41)));
    }

    #[test]
    fn labels_and_loops() {
        let src = r#"
            memory 1 1
            func sum params=1 locals=2 returns=1
              const 0
              local.set 1
            @loop:
              local.get 0
              jz @done
              local.get 1
              local.get 0
              add
              local.set 1
              local.get 0
              const 1
              sub
              local.set 0
              jmp @loop
            @done:
              local.get 1
              return
            end
            export sum sum
        "#;
        let module = assemble(src).unwrap();
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        assert_eq!(inst.invoke("sum", &[100], &mut NoHost), Ok(Some(5050)));
    }

    #[test]
    fn cross_function_calls_by_name() {
        let src = r#"
            memory 1 1
            func inc params=1 returns=1
              local.get 0
              const 1
              add
              return
            end
            func main params=1 returns=1
              local.get 0
              call inc
              call inc
              return
            end
            export main main
        "#;
        let module = assemble(src).unwrap();
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        assert_eq!(inst.invoke("main", &[5], &mut NoHost), Ok(Some(7)));
    }

    #[test]
    fn data_segments_parse() {
        let src = r#"
            memory 1 1
            data 8 cafef00d
            func peek params=0 returns=1
              const 8
              load8 3
              return
            end
            export peek peek
        "#;
        let module = assemble(src).unwrap();
        assert_eq!(module.data[0].bytes, vec![0xca, 0xfe, 0xf0, 0x0d]);
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        assert_eq!(inst.invoke("peek", &[], &mut NoHost), Ok(Some(0x0d)));
    }

    #[test]
    fn imports_resolve_by_name() {
        let src = r#"
            memory 1 1
            import env.magic 0 1
            func main params=0 returns=1
              host env.magic
              return
            end
            export main main
        "#;
        let module = assemble(src).unwrap();
        assert_eq!(module.imports.len(), 1);
        struct Magic;
        impl crate::vm::Host for Magic {
            fn call(
                &mut self,
                _: u16,
                _: &[u64],
                _: &mut crate::vm::Memory,
            ) -> Result<Vec<u64>, String> {
                Ok(vec![777])
            }
        }
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        assert_eq!(inst.invoke("main", &[], &mut Magic), Ok(Some(777)));
    }

    #[test]
    fn error_reporting() {
        // Unknown mnemonic with correct line number.
        let src = "memory 1 1\nfunc f params=0 returns=0\n  frobnicate\nend\nexport f f";
        let e = assemble(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
        // Unknown label.
        let src = "memory 1 1\nfunc f params=0 returns=0\n  jmp @nope\n  return\nend\nexport f f";
        assert!(assemble(src).is_err());
        // Unterminated function.
        let src = "memory 1 1\nfunc f params=0 returns=0\n  return";
        assert!(assemble(src).unwrap_err().message.contains("unterminated"));
        // Duplicate label.
        let src = "memory 1 1\nfunc f params=0 returns=0\n@a:\n@a:\n  return\nend\nexport f f";
        assert!(assemble(src).unwrap_err().message.contains("duplicate"));
    }

    #[test]
    fn hex_numbers_accepted() {
        let src = r#"
            memory 1 1
            func main params=0 returns=1
              const 0xff
              return
            end
            export main main
        "#;
        let module = assemble(src).unwrap();
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        assert_eq!(inst.invoke("main", &[], &mut NoHost), Ok(Some(255)));
    }
}
