//! Programmatic construction of sandbox functions and modules, with
//! symbolic labels resolved at build time.
//!
//! Guest programs in this workspace (the SHA-256 kernel, the BLS signing
//! ladder) are emitted through this builder rather than hand-written
//! instruction vectors — jump targets as names instead of indices is the
//! difference between maintainable guest code and write-only guest code.

use crate::isa::Instr;
use crate::module::{DataSegment, Export, Function, ImportSig, Module};
use std::collections::HashMap;

/// Errors detected while building.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A jump referenced a label never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            Self::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
        }
    }
}

impl std::error::Error for BuildError {}

enum Pending {
    Resolved(Instr),
    Jump(String),
    JumpIfZero(String),
    JumpIfNonZero(String),
}

/// Builds one function.
pub struct FuncBuilder {
    params: u16,
    locals: u16,
    returns: u16,
    code: Vec<Pending>,
    labels: HashMap<String, u32>,
}

impl FuncBuilder {
    /// Starts a function with the given signature.
    pub fn new(params: u16, locals: u16, returns: u16) -> Self {
        Self {
            params,
            locals,
            returns,
            code: Vec::new(),
            labels: HashMap::new(),
        }
    }

    /// Emits a raw instruction.
    pub fn op(&mut self, instr: Instr) -> &mut Self {
        self.code.push(Pending::Resolved(instr));
        self
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let pos = self.code.len() as u32;
        if self.labels.insert(name.to_string(), pos).is_some() {
            // Store a sentinel so build() reports the duplicate.
            self.labels.insert(format!("__dup__{name}"), pos);
        }
        self
    }

    /// Unconditional jump to a label.
    pub fn jmp(&mut self, label: &str) -> &mut Self {
        self.code.push(Pending::Jump(label.to_string()));
        self
    }

    /// Jump when the popped value is zero.
    pub fn jz(&mut self, label: &str) -> &mut Self {
        self.code.push(Pending::JumpIfZero(label.to_string()));
        self
    }

    /// Jump when the popped value is nonzero.
    pub fn jnz(&mut self, label: &str) -> &mut Self {
        self.code.push(Pending::JumpIfNonZero(label.to_string()));
        self
    }

    // Ergonomic shorthands for the common instructions.

    /// Push constant.
    pub fn constant(&mut self, v: u64) -> &mut Self {
        self.op(Instr::Const(v))
    }
    /// Read local.
    pub fn lget(&mut self, i: u16) -> &mut Self {
        self.op(Instr::LocalGet(i))
    }
    /// Write local.
    pub fn lset(&mut self, i: u16) -> &mut Self {
        self.op(Instr::LocalSet(i))
    }
    /// Wrapping add.
    pub fn add(&mut self) -> &mut Self {
        self.op(Instr::Add)
    }
    /// Wrapping sub.
    pub fn sub(&mut self) -> &mut Self {
        self.op(Instr::Sub)
    }
    /// Bitwise and.
    pub fn and(&mut self) -> &mut Self {
        self.op(Instr::And)
    }
    /// Bitwise or.
    pub fn or(&mut self) -> &mut Self {
        self.op(Instr::Or)
    }
    /// Bitwise xor.
    pub fn xor(&mut self) -> &mut Self {
        self.op(Instr::Xor)
    }
    /// Shift left.
    pub fn shl(&mut self) -> &mut Self {
        self.op(Instr::Shl)
    }
    /// Logical shift right.
    pub fn shr(&mut self) -> &mut Self {
        self.op(Instr::ShrU)
    }
    /// Load u64 with static offset.
    pub fn load64(&mut self, off: u32) -> &mut Self {
        self.op(Instr::Load64(off))
    }
    /// Store u64 with static offset.
    pub fn store64(&mut self, off: u32) -> &mut Self {
        self.op(Instr::Store64(off))
    }
    /// Load byte with static offset.
    pub fn load8(&mut self, off: u32) -> &mut Self {
        self.op(Instr::Load8(off))
    }
    /// Store byte with static offset.
    pub fn store8(&mut self, off: u32) -> &mut Self {
        self.op(Instr::Store8(off))
    }
    /// Call module function.
    pub fn call(&mut self, f: u16) -> &mut Self {
        self.op(Instr::Call(f))
    }
    /// Call host import.
    pub fn host(&mut self, i: u16) -> &mut Self {
        self.op(Instr::HostCall(i))
    }
    /// Return.
    pub fn ret(&mut self) -> &mut Self {
        self.op(Instr::Return)
    }

    /// Resolves labels and produces the function.
    pub fn build(self) -> Result<Function, BuildError> {
        for key in self.labels.keys() {
            if let Some(orig) = key.strip_prefix("__dup__") {
                return Err(BuildError::DuplicateLabel(orig.to_string()));
            }
        }
        let resolve = |name: &str| -> Result<u32, BuildError> {
            self.labels
                .get(name)
                .copied()
                .ok_or_else(|| BuildError::UndefinedLabel(name.to_string()))
        };
        let mut code = Vec::with_capacity(self.code.len());
        for p in &self.code {
            code.push(match p {
                Pending::Resolved(i) => *i,
                Pending::Jump(l) => Instr::Jump(resolve(l)?),
                Pending::JumpIfZero(l) => Instr::JumpIfZero(resolve(l)?),
                Pending::JumpIfNonZero(l) => Instr::JumpIfNonZero(resolve(l)?),
            });
        }
        Ok(Function {
            params: self.params,
            locals: self.locals,
            returns: self.returns,
            code,
        })
    }
}

/// Builds a module from named functions.
#[derive(Default)]
pub struct ModuleBuilder {
    imports: Vec<ImportSig>,
    functions: Vec<Function>,
    exports: Vec<Export>,
    data: Vec<DataSegment>,
    initial_pages: u32,
    max_pages: u32,
}

impl ModuleBuilder {
    /// Starts a module with the given memory limits (pages).
    pub fn new(initial_pages: u32, max_pages: u32) -> Self {
        Self {
            initial_pages,
            max_pages,
            ..Default::default()
        }
    }

    /// Declares a host import; returns its index for `HostCall`.
    pub fn import(&mut self, name: &str, params: u16, returns: u16) -> u16 {
        self.imports.push(ImportSig {
            name: name.to_string(),
            params,
            returns,
        });
        (self.imports.len() - 1) as u16
    }

    /// Adds a function; returns its index for `Call`.
    pub fn function(&mut self, f: Function) -> u16 {
        self.functions.push(f);
        (self.functions.len() - 1) as u16
    }

    /// Exports function `index` under `name`.
    pub fn export(&mut self, name: &str, index: u16) -> &mut Self {
        self.exports.push(Export {
            name: name.to_string(),
            function: index as u32,
        });
        self
    }

    /// Adds initial memory contents.
    pub fn data(&mut self, offset: u32, bytes: Vec<u8>) -> &mut Self {
        self.data.push(DataSegment { offset, bytes });
        self
    }

    /// Produces the module.
    pub fn build(self) -> Module {
        Module {
            imports: self.imports,
            functions: self.functions,
            exports: self.exports,
            data: self.data,
            initial_pages: self.initial_pages,
            max_pages: self.max_pages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{Instance, Limits, NoHost};

    #[test]
    fn labels_resolve_forward_and_backward() {
        // max(a, b) via a conditional jump.
        let mut f = FuncBuilder::new(2, 0, 1);
        f.lget(0)
            .lget(1)
            .op(Instr::GtU)
            .jnz("ret_a")
            .lget(1)
            .ret()
            .label("ret_a")
            .lget(0)
            .ret();
        let func = f.build().unwrap();
        let mut mb = ModuleBuilder::new(1, 1);
        let idx = mb.function(func);
        mb.export("max", idx);
        let mut inst = Instance::new(mb.build(), Limits::default()).unwrap();
        assert_eq!(inst.invoke("max", &[3, 9], &mut NoHost), Ok(Some(9)));
        assert_eq!(inst.invoke("max", &[10, 2], &mut NoHost), Ok(Some(10)));
    }

    #[test]
    fn loop_with_builder() {
        // factorial(n), locals: 2=acc
        let mut f = FuncBuilder::new(1, 1, 1);
        f.constant(1)
            .lset(1)
            .label("loop")
            .lget(0)
            .constant(1)
            .op(Instr::LeU)
            .jnz("done")
            .lget(1)
            .lget(0)
            .op(Instr::Mul)
            .lset(1)
            .lget(0)
            .constant(1)
            .sub()
            .lset(0)
            .jmp("loop")
            .label("done")
            .lget(1)
            .ret();
        let mut mb = ModuleBuilder::new(1, 1);
        let idx = mb.function(f.build().unwrap());
        mb.export("fact", idx);
        let mut inst = Instance::new(mb.build(), Limits::default()).unwrap();
        assert_eq!(inst.invoke("fact", &[5], &mut NoHost), Ok(Some(120)));
        assert_eq!(inst.invoke("fact", &[1], &mut NoHost), Ok(Some(1)));
        assert_eq!(inst.invoke("fact", &[10], &mut NoHost), Ok(Some(3_628_800)));
    }

    #[test]
    fn undefined_label_rejected() {
        let mut f = FuncBuilder::new(0, 0, 0);
        f.jmp("nowhere").ret();
        assert_eq!(
            f.build().unwrap_err(),
            BuildError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut f = FuncBuilder::new(0, 0, 0);
        f.label("x").constant(1).op(Instr::Drop).label("x").ret();
        assert_eq!(
            f.build().unwrap_err(),
            BuildError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn module_builder_wires_imports_and_data() {
        let mut mb = ModuleBuilder::new(1, 2);
        let imp = mb.import("env.noop", 0, 0);
        assert_eq!(imp, 0);
        mb.data(10, vec![1, 2, 3]);
        let mut f = FuncBuilder::new(0, 0, 1);
        f.constant(10).load8(2).ret();
        let idx = mb.function(f.build().unwrap());
        mb.export("peek", idx);
        let module = mb.build();
        assert_eq!(module.imports.len(), 1);
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        assert_eq!(inst.invoke("peek", &[], &mut NoHost), Ok(Some(3)));
    }
}
