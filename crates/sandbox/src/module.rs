//! Sandbox modules: functions, imports, data segments, exports — plus
//! static validation and canonical serialization.
//!
//! A module's canonical bytes are what the framework measures: the "code
//! digest" appended to each trust domain's log is `sha256(module.to_wire())`.

use crate::isa::Instr;
use distrust_wire::codec::{decode_seq, encode_seq, Decode, DecodeError, Encode};

/// Size of one linear-memory page (64 KiB, matching Wasm).
pub const PAGE_SIZE: usize = 64 * 1024;
/// Hard cap on memory pages a module may request.
pub const MAX_PAGES: u32 = 256; // 16 MiB

/// Signature of an imported host function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImportSig {
    /// Symbolic name, e.g. `"env.g1_double"`. The host resolves by index,
    /// but names make modules self-describing and auditable.
    pub name: String,
    /// Number of `u64` arguments popped.
    pub params: u16,
    /// Number of `u64` results pushed.
    pub returns: u16,
}

impl Encode for ImportSig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.params.encode(out);
        self.returns.encode(out);
    }
}

impl Decode for ImportSig {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            name: String::decode(input)?,
            params: u16::decode(input)?,
            returns: u16::decode(input)?,
        })
    }
}

/// A function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Number of parameters (these occupy local slots `0..params`).
    pub params: u16,
    /// Number of additional local slots (zero-initialized).
    pub locals: u16,
    /// Number of return values (0 or 1).
    pub returns: u16,
    /// The instruction sequence.
    pub code: Vec<Instr>,
}

impl Encode for Function {
    fn encode(&self, out: &mut Vec<u8>) {
        self.params.encode(out);
        self.locals.encode(out);
        self.returns.encode(out);
        encode_seq(&self.code, out);
    }
}

impl Decode for Function {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            params: u16::decode(input)?,
            locals: u16::decode(input)?,
            returns: u16::decode(input)?,
            code: decode_seq(input)?,
        })
    }
}

/// Initial memory contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataSegment {
    /// Byte offset in linear memory.
    pub offset: u32,
    /// Bytes copied at instantiation.
    pub bytes: Vec<u8>,
}

impl Encode for DataSegment {
    fn encode(&self, out: &mut Vec<u8>) {
        self.offset.encode(out);
        self.bytes.encode(out);
    }
}

impl Decode for DataSegment {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            offset: u32::decode(input)?,
            bytes: Vec::<u8>::decode(input)?,
        })
    }
}

/// A named export pointing at a function index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Export {
    /// Export name clients invoke.
    pub name: String,
    /// Target function index.
    pub function: u32,
}

impl Encode for Export {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.function.encode(out);
    }
}

impl Decode for Export {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            name: String::decode(input)?,
            function: u32::decode(input)?,
        })
    }
}

/// A complete sandbox module.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Module {
    /// Imported host functions (indices used by `HostCall`).
    pub imports: Vec<ImportSig>,
    /// Function bodies (indices used by `Call`).
    pub functions: Vec<Function>,
    /// Named entry points.
    pub exports: Vec<Export>,
    /// Initial data.
    pub data: Vec<DataSegment>,
    /// Initial memory size in pages.
    pub initial_pages: u32,
    /// Maximum memory size in pages (`MemGrow` cap).
    pub max_pages: u32,
}

impl Encode for Module {
    fn encode(&self, out: &mut Vec<u8>) {
        // Version tag so future format changes re-measure differently.
        out.extend_from_slice(b"DSBX1\0");
        encode_seq(&self.imports, out);
        encode_seq(&self.functions, out);
        encode_seq(&self.exports, out);
        encode_seq(&self.data, out);
        self.initial_pages.encode(out);
        self.max_pages.encode(out);
    }
}

impl Decode for Module {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let magic = distrust_wire::codec::take(input, 6)?;
        if magic != b"DSBX1\0" {
            return Err(DecodeError::Invalid("module magic"));
        }
        Ok(Self {
            imports: decode_seq(input)?,
            functions: decode_seq(input)?,
            exports: decode_seq(input)?,
            data: decode_seq(input)?,
            initial_pages: u32::decode(input)?,
            max_pages: u32::decode(input)?,
        })
    }
}

/// Static validation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// Jump target outside the function body.
    JumpOutOfRange { function: u32, target: u32 },
    /// Local index beyond `params + locals`.
    BadLocal { function: u32, index: u16 },
    /// Call target beyond the function table.
    BadCall { function: u32, target: u16 },
    /// Host call index beyond the import table.
    BadHostCall { function: u32, index: u16 },
    /// Export references a missing function.
    BadExport { name: String },
    /// Duplicate export name.
    DuplicateExport { name: String },
    /// Function declares more than one return value.
    TooManyReturns { function: u32 },
    /// Memory limits invalid (`initial > max` or `max > MAX_PAGES`).
    BadMemoryLimits,
    /// Data segment outside initial memory.
    DataOutOfRange { segment: usize },
    /// A function body is empty (must at least `Return` or `Trap`).
    EmptyFunction { function: u32 },
}

impl core::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::JumpOutOfRange { function, target } => {
                write!(f, "fn {function}: jump target {target} out of range")
            }
            Self::BadLocal { function, index } => {
                write!(f, "fn {function}: local {index} out of range")
            }
            Self::BadCall { function, target } => {
                write!(f, "fn {function}: call target {target} out of range")
            }
            Self::BadHostCall { function, index } => {
                write!(f, "fn {function}: host import {index} out of range")
            }
            Self::BadExport { name } => write!(f, "export {name:?} references missing function"),
            Self::DuplicateExport { name } => write!(f, "duplicate export {name:?}"),
            Self::TooManyReturns { function } => {
                write!(f, "fn {function}: more than one return value")
            }
            Self::BadMemoryLimits => write!(f, "invalid memory limits"),
            Self::DataOutOfRange { segment } => {
                write!(f, "data segment {segment} outside initial memory")
            }
            Self::EmptyFunction { function } => write!(f, "fn {function}: empty body"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl Module {
    /// The module's code digest — the measurement the framework logs and
    /// the TEE attests to.
    pub fn digest(&self) -> distrust_crypto::Digest {
        distrust_crypto::sha256_many(&[b"distrust/module/v1", &self.to_wire()])
    }

    /// Looks up an export by name.
    pub fn export(&self, name: &str) -> Option<u32> {
        self.exports
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.function)
    }

    /// Statically validates the module. Every module must pass validation
    /// before instantiation; the VM additionally enforces all properties
    /// dynamically (defense in depth — the validator is part of the TCB the
    /// paper's framework seals into the TEE).
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.initial_pages > self.max_pages || self.max_pages > MAX_PAGES {
            return Err(ValidateError::BadMemoryLimits);
        }
        let mem_bytes = self.initial_pages as usize * PAGE_SIZE;
        for (i, seg) in self.data.iter().enumerate() {
            let end = seg.offset as usize + seg.bytes.len();
            if end > mem_bytes {
                return Err(ValidateError::DataOutOfRange { segment: i });
            }
        }
        let mut export_names = std::collections::HashSet::new();
        for e in &self.exports {
            if e.function as usize >= self.functions.len() {
                return Err(ValidateError::BadExport {
                    name: e.name.clone(),
                });
            }
            if !export_names.insert(e.name.as_str()) {
                return Err(ValidateError::DuplicateExport {
                    name: e.name.clone(),
                });
            }
        }
        for (fi, func) in self.functions.iter().enumerate() {
            let fi32 = fi as u32;
            if func.returns > 1 {
                return Err(ValidateError::TooManyReturns { function: fi32 });
            }
            if func.code.is_empty() {
                return Err(ValidateError::EmptyFunction { function: fi32 });
            }
            let nlocals = func.params as u32 + func.locals as u32;
            let len = func.code.len() as u32;
            for instr in &func.code {
                match instr {
                    Instr::Jump(t) | Instr::JumpIfZero(t) | Instr::JumpIfNonZero(t)
                        if *t >= len =>
                    {
                        return Err(ValidateError::JumpOutOfRange {
                            function: fi32,
                            target: *t,
                        });
                    }
                    Instr::LocalGet(i) | Instr::LocalSet(i) if (*i as u32) >= nlocals => {
                        return Err(ValidateError::BadLocal {
                            function: fi32,
                            index: *i,
                        });
                    }
                    Instr::Call(t) if (*t as usize) >= self.functions.len() => {
                        return Err(ValidateError::BadCall {
                            function: fi32,
                            target: *t,
                        });
                    }
                    Instr::HostCall(i) if (*i as usize) >= self.imports.len() => {
                        return Err(ValidateError::BadHostCall {
                            function: fi32,
                            index: *i,
                        });
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_module() -> Module {
        Module {
            imports: vec![],
            functions: vec![Function {
                params: 0,
                locals: 0,
                returns: 1,
                code: vec![Instr::Const(42), Instr::Return],
            }],
            exports: vec![Export {
                name: "main".into(),
                function: 0,
            }],
            data: vec![],
            initial_pages: 1,
            max_pages: 1,
        }
    }

    #[test]
    fn valid_module_passes() {
        assert_eq!(trivial_module().validate(), Ok(()));
    }

    #[test]
    fn wire_round_trip() {
        let m = trivial_module();
        let bytes = m.to_wire();
        assert_eq!(Module::from_wire(&bytes), Ok(m));
    }

    #[test]
    fn digest_changes_with_code() {
        let a = trivial_module();
        let mut b = trivial_module();
        b.functions[0].code[0] = Instr::Const(43);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(trivial_module().digest(), trivial_module().digest());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = trivial_module().to_wire();
        bytes[0] ^= 0xff;
        assert!(Module::from_wire(&bytes).is_err());
    }

    #[test]
    fn jump_out_of_range_rejected() {
        let mut m = trivial_module();
        m.functions[0].code = vec![Instr::Jump(5), Instr::Return];
        assert!(matches!(
            m.validate(),
            Err(ValidateError::JumpOutOfRange { .. })
        ));
    }

    #[test]
    fn bad_local_rejected() {
        let mut m = trivial_module();
        m.functions[0].code = vec![Instr::LocalGet(0), Instr::Return];
        assert!(matches!(m.validate(), Err(ValidateError::BadLocal { .. })));
    }

    #[test]
    fn bad_call_targets_rejected() {
        let mut m = trivial_module();
        m.functions[0].code = vec![Instr::Call(9), Instr::Return];
        assert!(matches!(m.validate(), Err(ValidateError::BadCall { .. })));
        let mut m = trivial_module();
        m.functions[0].code = vec![Instr::HostCall(0), Instr::Return];
        assert!(matches!(
            m.validate(),
            Err(ValidateError::BadHostCall { .. })
        ));
    }

    #[test]
    fn export_validation() {
        let mut m = trivial_module();
        m.exports[0].function = 3;
        assert!(matches!(m.validate(), Err(ValidateError::BadExport { .. })));
        let mut m = trivial_module();
        m.exports.push(Export {
            name: "main".into(),
            function: 0,
        });
        assert!(matches!(
            m.validate(),
            Err(ValidateError::DuplicateExport { .. })
        ));
    }

    #[test]
    fn memory_validation() {
        let mut m = trivial_module();
        m.initial_pages = 2;
        m.max_pages = 1;
        assert_eq!(m.validate(), Err(ValidateError::BadMemoryLimits));
        let mut m = trivial_module();
        m.max_pages = MAX_PAGES + 1;
        assert_eq!(m.validate(), Err(ValidateError::BadMemoryLimits));
        let mut m = trivial_module();
        m.data.push(DataSegment {
            offset: PAGE_SIZE as u32 - 2,
            bytes: vec![1, 2, 3],
        });
        assert!(matches!(
            m.validate(),
            Err(ValidateError::DataOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_function_rejected() {
        let mut m = trivial_module();
        m.functions[0].code.clear();
        assert!(matches!(
            m.validate(),
            Err(ValidateError::EmptyFunction { .. })
        ));
    }

    #[test]
    fn multi_return_rejected() {
        let mut m = trivial_module();
        m.functions[0].returns = 2;
        assert!(matches!(
            m.validate(),
            Err(ValidateError::TooManyReturns { .. })
        ));
    }

    #[test]
    fn export_lookup() {
        let m = trivial_module();
        assert_eq!(m.export("main"), Some(0));
        assert_eq!(m.export("missing"), None);
    }
}
