//! # distrust-apps
//!
//! Applications built on the public API of the `distrust` framework,
//! demonstrating that it bootstraps *arbitrary* distributed-trust
//! applications (the paper's central claim):
//!
//! * [`threshold_signer`] — the paper's own prototype (§5): BLS threshold
//!   signing with the scalar ladder running inside the sandbox.
//! * [`key_backup`] — the motivating application of Figure 1: secret-key
//!   backup where a compromised developer learns nothing.
//! * [`analytics`] — Prio-style private aggregation (§2's first deployed
//!   example), with the aggregation logic as pure, auditable guest code.

pub mod analytics;
pub mod key_backup;
pub mod threshold_signer;
