//! The paper's prototype application (§5): BLS threshold signing.
//!
//! "We implement a BLS threshold signature application on top of our
//! framework: each trust domain stores a secret key share, and the trust
//! domains can jointly sign a message."
//!
//! Faithful to the prototype's architecture, the signing computation runs
//! *inside the sandbox*: the guest executes the complete double-and-add
//! scalar ladder — including the Jacobian point-doubling and mixed-addition
//! formulas — with only the 381-bit **field operations** exposed as host
//! imports (the analogue of a Wasm build calling a native bignum, with the
//! thousands of guest↔host boundary crossings and interpreted control flow
//! that the paper's Table 3 prices). The share itself lives host-side,
//! sealed to the trust domain; partial signatures leave through the guest
//! outbox, are verified against Feldman commitments client-side, and
//! aggregate into a standard BLS signature under the group public key.
//!
//! Method ids: `1` = sign (payload = message bytes, response = 48-byte
//! compressed partial signature), `2` = share index (1 byte).

use distrust_core::abi::{AppHost, OUTBOX_ADDR};
use distrust_core::deploy::AppSpec;
use distrust_core::session::Session;
use distrust_core::ClientError;
use distrust_crypto::bls::{PublicKey, Signature};
use distrust_crypto::fp::Fp;
use distrust_crypto::g1::{hash_to_g1, G1Projective};
use distrust_crypto::threshold::{
    self, FeldmanCommitments, KeyShare, PartialSignature, ThresholdError,
};
use distrust_sandbox::vm::Memory;
use distrust_sandbox::{FuncBuilder, Instr, Limits, Module, ModuleBuilder};

/// Method id for signing.
pub const METHOD_SIGN: u64 = 1;
/// Method id for querying the share index.
pub const METHOD_INDEX: u64 = 2;

/// Guest memory slots holding the Fp handles of the accumulator (Jacobian)
/// and the base point (affine).
mod layout {
    pub const ACC_X: u64 = 256;
    pub const ACC_Y: u64 = 264;
    pub const ACC_Z: u64 = 272;
    pub const BASE_X: u64 = 288;
    pub const BASE_Y: u64 = 296;
}

/// Import indices (order of declaration below).
struct Imports {
    hash_msg: u16,
    sq: u16,
    mul: u16,
    add: u16,
    sub: u16,
    dbl: u16,
    tpl: u16,
    one: u16,
    is_zero: u16,
    share_bit: u16,
    emit: u16,
    share_index: u16,
}

fn declare_imports(mb: &mut ModuleBuilder) -> Imports {
    Imports {
        // Resets the handle table, hashes the message to an affine G1
        // point, returns (x_handle, y_handle).
        hash_msg: mb.import("bls.hash_msg", 2, 2),
        sq: mb.import("fp.sq", 1, 1),
        mul: mb.import("fp.mul", 2, 1),
        add: mb.import("fp.add", 2, 1),
        sub: mb.import("fp.sub", 2, 1),
        dbl: mb.import("fp.dbl", 1, 1),
        tpl: mb.import("fp.tpl", 1, 1),
        one: mb.import("fp.one", 0, 1),
        is_zero: mb.import("fp.is_zero", 1, 1),
        share_bit: mb.import("bls.share_bit", 1, 1),
        // emit(x, y, z): Jacobian → affine → compressed bytes → outbox.
        emit: mb.import("bls.emit", 3, 1),
        share_index: mb.import("bls.share_index", 0, 1),
    }
}

/// Builds the guest function for Jacobian point doubling (a = 0 curve):
/// reads the accumulator handles from memory, runs the dbl-2009-l-style
/// formula through field host calls, writes the result handles back.
fn build_double(im: &Imports) -> distrust_sandbox::Function {
    // locals: 0=X 1=Y 2=Z 3=A 4=B 5=C 6=D 7=E 8=F 9=Z3
    // Z3 is computed first because it needs the old Y, which the Y3 slot
    // overwrites.
    let mut f = FuncBuilder::new(0, 10, 0);
    f.constant(layout::ACC_X).load64(0).lset(0);
    f.constant(layout::ACC_Y).load64(0).lset(1);
    f.constant(layout::ACC_Z).load64(0).lset(2);
    // Z3 first (needs old Y and old Z): Z3 = 2·Y·Z  → stash in local 9.
    f.lget(1).lget(2).host(im.mul).host(im.dbl).lset(9);
    // A = X²; B = Y²; C = B²
    f.lget(0).host(im.sq).lset(3);
    f.lget(1).host(im.sq).lset(4);
    f.lget(4).host(im.sq).lset(5);
    // D = 2·((X + B)² − A − C)  → local 6
    f.lget(0).lget(4).host(im.add).host(im.sq).lset(6);
    f.lget(6).lget(3).host(im.sub).lset(6);
    f.lget(6).lget(5).host(im.sub).lset(6);
    f.lget(6).host(im.dbl).lset(6);
    // E = 3A → 7 ; F = E² → 8
    f.lget(3).host(im.tpl).lset(7);
    f.lget(7).host(im.sq).lset(8);
    // X3 = F − 2D → local 0
    f.lget(6).host(im.dbl).lset(4); // reuse 4 as temp (B dead)
    f.lget(8).lget(4).host(im.sub).lset(0);
    // Y3 = E·(D − X3) − 8C → local 1
    f.lget(6).lget(0).host(im.sub).lset(4);
    f.lget(7).lget(4).host(im.mul).lset(4);
    f.lget(5).host(im.dbl).host(im.dbl).host(im.dbl).lset(5);
    f.lget(4).lget(5).host(im.sub).lset(1);
    // Store back.
    f.constant(layout::ACC_X).lget(0).store64(0);
    f.constant(layout::ACC_Y).lget(1).store64(0);
    f.constant(layout::ACC_Z).lget(9).store64(0);
    f.ret();
    f.build().expect("double builds")
}

/// Builds the guest function for mixed addition `acc += base` (madd-2007-bl
/// with Z2 = 1). Traps if `acc == ±base` (probability ≈ 2⁻²⁵⁵ in the
/// ladder; a trap is contained by the framework).
fn build_add_base(im: &Imports) -> distrust_sandbox::Function {
    // locals: 0=X1 1=Y1 2=Z1 3=X2 4=Y2 5=Z1Z1 6=H 7=I 8=J 9=r 10=V 11=t 12=u
    let mut f = FuncBuilder::new(0, 13, 0);
    f.constant(layout::ACC_X).load64(0).lset(0);
    f.constant(layout::ACC_Y).load64(0).lset(1);
    f.constant(layout::ACC_Z).load64(0).lset(2);
    f.constant(layout::BASE_X).load64(0).lset(3);
    f.constant(layout::BASE_Y).load64(0).lset(4);
    // Z1Z1 = Z1²
    f.lget(2).host(im.sq).lset(5);
    // U2 = X2·Z1Z1 → t ; H = U2 − X1
    f.lget(3).lget(5).host(im.mul).lset(11);
    f.lget(11).lget(0).host(im.sub).lset(6);
    // Degenerate case guard.
    f.lget(6).host(im.is_zero).jz("ok");
    f.op(Instr::Trap);
    f.label("ok");
    // S2 = Y2·Z1·Z1Z1 → t
    f.lget(4).lget(2).host(im.mul).lset(11);
    f.lget(11).lget(5).host(im.mul).lset(11);
    // r = 2·(S2 − Y1)
    f.lget(11).lget(1).host(im.sub).host(im.dbl).lset(9);
    // HH = H² → u ; I = 4·HH ; J = H·I
    f.lget(6).host(im.sq).lset(12);
    f.lget(12).host(im.dbl).host(im.dbl).lset(7);
    f.lget(6).lget(7).host(im.mul).lset(8);
    // V = X1·I
    f.lget(0).lget(7).host(im.mul).lset(10);
    // X3 = r² − J − 2V
    f.lget(9).host(im.sq).lset(11);
    f.lget(11).lget(8).host(im.sub).lset(11);
    f.lget(10).host(im.dbl).lset(7); // reuse 7 (I dead)
    f.lget(11).lget(7).host(im.sub).lset(11); // X3 in t (11)
                                              // Y3 = r·(V − X3) − 2·Y1·J
    f.lget(10).lget(11).host(im.sub).lset(7);
    f.lget(9).lget(7).host(im.mul).lset(7);
    f.lget(1).lget(8).host(im.mul).host(im.dbl).lset(8);
    f.lget(7).lget(8).host(im.sub).lset(7); // Y3 in 7
                                            // Z3 = (Z1 + H)² − Z1Z1 − HH
    f.lget(2).lget(6).host(im.add).host(im.sq).lset(8);
    f.lget(8).lget(5).host(im.sub).lset(8);
    f.lget(8).lget(12).host(im.sub).lset(8); // Z3 in 8
                                             // Store back.
    f.constant(layout::ACC_X).lget(11).store64(0);
    f.constant(layout::ACC_Y).lget(7).store64(0);
    f.constant(layout::ACC_Z).lget(8).store64(0);
    f.ret();
    f.build().expect("add_base builds")
}

/// Builds the threshold-signer guest module. Function indices: 0 = the
/// exported `handle`, 1 = point doubling, 2 = mixed addition.
pub fn signer_module() -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    let im = declare_imports(&mut mb);

    // handle(method, addr, len) -> outbox length
    // locals: 3 = bit index i
    let mut f = FuncBuilder::new(3, 1, 1);
    f.lget(0).constant(METHOD_SIGN).op(Instr::Eq).jnz("sign");
    f.lget(0).constant(METHOD_INDEX).op(Instr::Eq).jnz("index");
    f.op(Instr::Trap);

    // --- share index query.
    f.label("index")
        .constant(OUTBOX_ADDR)
        .host(im.share_index)
        .store8(0)
        .constant(1)
        .ret();

    // --- the signing ladder.
    f.label("sign");
    // base = H(m): host returns (x, y); store handles (y on top).
    f.lget(1).lget(2).host(im.hash_msg);
    f.constant(layout::BASE_Y).op(Instr::Swap).store64(0);
    f.constant(layout::BASE_X).op(Instr::Swap).store64(0);
    // Find the top set bit of the share, scanning from 254 down.
    f.constant(254).lset(3);
    f.label("scan");
    f.lget(3).host(im.share_bit).jnz("found");
    f.lget(3).constant(1).sub().lset(3);
    f.jmp("scan"); // share == 0 is rejected at keygen; bit must exist.
    f.label("found");
    // acc = (base_x, base_y, 1)
    f.constant(layout::ACC_X)
        .constant(layout::BASE_X)
        .load64(0)
        .store64(0);
    f.constant(layout::ACC_Y)
        .constant(layout::BASE_Y)
        .load64(0)
        .store64(0);
    f.constant(layout::ACC_Z).host(im.one).store64(0);
    // for i-1 down to 0: acc = 2·acc; if bit(i): acc += base
    f.label("ladder");
    f.lget(3).jz("emit_point");
    f.lget(3).constant(1).sub().lset(3);
    f.call(1); // double
    f.lget(3).host(im.share_bit).jz("ladder");
    f.call(2); // add_base
    f.jmp("ladder");
    // Emit the compressed point and return its length.
    f.label("emit_point");
    f.constant(layout::ACC_X).load64(0);
    f.constant(layout::ACC_Y).load64(0);
    f.constant(layout::ACC_Z).load64(0);
    f.host(im.emit).ret();

    let handle_idx = mb.function(f.build().expect("signer guest builds"));
    let double_idx = mb.function(build_double(&im));
    let add_idx = mb.function(build_add_base(&im));
    debug_assert_eq!((handle_idx, double_idx, add_idx), (0, 1, 2));
    mb.export(distrust_core::abi::HANDLE_EXPORT, handle_idx);
    mb.build()
}

/// Host-side state for one trust domain: its key share and the Fp-element
/// slot table the guest addresses by handle.
pub struct SignerHost {
    share: KeyShare,
    share_bits: [u64; 4],
    slots: Vec<Fp>,
}

impl SignerHost {
    /// Wraps a share.
    pub fn new(share: KeyShare) -> Self {
        Self {
            share_bits: share.value.to_canonical_limbs(),
            share,
            slots: Vec::new(),
        }
    }

    fn push_slot(&mut self, v: Fp) -> u64 {
        self.slots.push(v);
        (self.slots.len() - 1) as u64
    }

    fn slot(&self, h: u64) -> Result<Fp, String> {
        self.slots
            .get(h as usize)
            .copied()
            .ok_or_else(|| format!("invalid field handle {h}"))
    }
}

impl AppHost for SignerHost {
    fn call(&mut self, name: &str, args: &[u64], memory: &mut Memory) -> Result<Vec<u64>, String> {
        match name {
            "bls.hash_msg" => {
                let (addr, len) = (args[0], args[1]);
                let msg = memory.read(addr, len).map_err(|e| e.to_string())?.to_vec();
                self.slots.clear();
                let h = hash_to_g1(&msg, distrust_crypto::bls::MSG_DST).to_affine();
                let hx = self.push_slot(h.x);
                let hy = self.push_slot(h.y);
                Ok(vec![hx, hy])
            }
            "fp.sq" => {
                let a = self.slot(args[0])?;
                Ok(vec![self.push_slot(a.square())])
            }
            "fp.mul" => {
                let (a, b) = (self.slot(args[0])?, self.slot(args[1])?);
                Ok(vec![self.push_slot(a.mul(&b))])
            }
            "fp.add" => {
                let (a, b) = (self.slot(args[0])?, self.slot(args[1])?);
                Ok(vec![self.push_slot(a.add(&b))])
            }
            "fp.sub" => {
                let (a, b) = (self.slot(args[0])?, self.slot(args[1])?);
                Ok(vec![self.push_slot(a.sub(&b))])
            }
            "fp.dbl" => {
                let a = self.slot(args[0])?;
                Ok(vec![self.push_slot(a.double())])
            }
            "fp.tpl" => {
                let a = self.slot(args[0])?;
                Ok(vec![self.push_slot(a.double().add(&a))])
            }
            "fp.one" => Ok(vec![self.push_slot(Fp::ONE)]),
            "fp.is_zero" => {
                let a = self.slot(args[0])?;
                Ok(vec![a.is_zero() as u64])
            }
            "bls.share_bit" => {
                let i = args[0];
                if i >= 256 {
                    return Err(format!("share bit index {i} out of range"));
                }
                let bit = (self.share_bits[(i / 64) as usize] >> (i % 64)) & 1;
                Ok(vec![bit])
            }
            "bls.emit" => {
                let point = G1Projective {
                    x: self.slot(args[0])?,
                    y: self.slot(args[1])?,
                    z: self.slot(args[2])?,
                };
                let bytes = point.to_affine().to_compressed();
                memory
                    .write(OUTBOX_ADDR, &bytes)
                    .map_err(|e| e.to_string())?;
                Ok(vec![bytes.len() as u64])
            }
            "bls.share_index" => Ok(vec![self.share.index as u64]),
            other => Err(format!("unknown import {other:?}")),
        }
    }
}

/// Public parameters of a threshold-signing deployment.
#[derive(Clone, Debug)]
pub struct ThresholdPublic {
    /// Signing threshold `t`.
    pub threshold: usize,
    /// The group public key (a standard BLS key).
    pub public_key: PublicKey,
    /// Feldman commitments for partial-signature verification.
    pub commitments: FeldmanCommitments,
}

/// Dealer setup: generates shares for `n` domains with threshold `t` and
/// packages the [`AppSpec`] (module + per-domain hosts) plus the public
/// parameters.
pub fn setup<R: rand::RngCore + ?Sized>(
    t: usize,
    n: usize,
    rng: &mut R,
) -> Result<(AppSpec, ThresholdPublic), ThresholdError> {
    let keys = threshold::generate(t, n, rng)?;
    // Every share holder verifies its share against the commitments before
    // accepting it (Feldman VSS — see DESIGN.md §5).
    for share in &keys.shares {
        assert!(
            keys.commitments.verify_share(share),
            "dealer produced an invalid share"
        );
    }
    let hosts: Vec<Box<dyn AppHost>> = keys
        .shares
        .iter()
        .map(|s| Box::new(SignerHost::new(*s)) as Box<dyn AppHost>)
        .collect();
    let spec = AppSpec {
        name: "bls-threshold-signer".to_string(),
        module: signer_module(),
        notes: "v1: BLS threshold signing service".to_string(),
        hosts,
        limits: Limits::default(),
    };
    Ok((
        spec,
        ThresholdPublic {
            threshold: t,
            public_key: keys.public_key,
            commitments: keys.commitments,
        },
    ))
}

/// Errors from the signing client.
#[derive(Debug)]
pub enum SignError {
    /// Too few domains answered with valid partial signatures.
    NotEnoughPartials {
        /// Valid partials collected.
        got: usize,
        /// Threshold required.
        need: usize,
    },
    /// Aggregation failed.
    Threshold(ThresholdError),
    /// Transport failure talking to a domain.
    Client(ClientError),
    /// The aggregate did not verify under the group key.
    AggregateInvalid,
}

impl core::fmt::Display for SignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NotEnoughPartials { got, need } => {
                write!(f, "only {got} valid partial signatures, need {need}")
            }
            Self::Threshold(e) => write!(f, "aggregation failed: {e}"),
            Self::Client(e) => write!(f, "transport failure: {e}"),
            Self::AggregateInvalid => write!(f, "aggregate signature invalid"),
        }
    }
}

impl std::error::Error for SignError {}

/// Client-side signing orchestration: request partial signatures from
/// domains, verify each against the Feldman commitments, aggregate the
/// first `t` valid ones, and verify the result under the group key.
pub struct ThresholdSigningClient {
    /// Public parameters.
    pub public: ThresholdPublic,
}

impl ThresholdSigningClient {
    /// Creates the client.
    pub fn new(public: ThresholdPublic) -> Self {
        Self { public }
    }

    /// Requests one partial signature from one domain (domain `d` holds
    /// share index `d + 1`).
    pub fn partial_from_domain(
        &self,
        session: &mut Session<'_>,
        domain: u32,
        message: &[u8],
    ) -> Result<PartialSignature, SignError> {
        let payload = session
            .call(domain, METHOD_SIGN, message)
            .map_err(SignError::Client)?;
        Self::parse_partial(domain, &payload)
    }

    fn parse_partial(domain: u32, payload: &[u8]) -> Result<PartialSignature, SignError> {
        let bytes: [u8; 48] = payload
            .try_into()
            .map_err(|_| SignError::Client(ClientError::Unexpected("bad sig length".into())))?;
        let value = Signature::from_bytes(&bytes)
            .ok_or_else(|| SignError::Client(ClientError::Unexpected("bad sig point".into())))?;
        Ok(PartialSignature {
            index: (domain + 1) as u8,
            value,
        })
    }

    /// Full signing flow across the deployment.
    ///
    /// The message is broadcast to every domain in one pipelined fan-out
    /// under [`distrust_core::QuorumPolicy::Threshold`]`(t)` (via
    /// [`Session::fanout_collect`]): all `n` sign requests are in flight
    /// at once and the call returns as soon as `t` valid partials arrive
    /// — a slow or dead domain does not delay the signature as long as
    /// `t` domains are healthy. Each collected partial is verified
    /// against the Feldman commitments before it counts; domains whose
    /// responses were abandoned are re-asked if some partials fail
    /// verification.
    pub fn sign(&self, session: &mut Session<'_>, message: &[u8]) -> Result<Signature, SignError> {
        let t = self.public.threshold;
        let partials = session
            .fanout_collect(METHOD_SIGN, message.to_vec(), t, |d, payload| {
                Self::parse_partial(d, payload)
                    .ok()
                    .filter(|p| threshold::verify_partial(&self.public.commitments, message, p))
            })
            .map_err(SignError::Client)?;
        if partials.len() < t {
            return Err(SignError::NotEnoughPartials {
                got: partials.len(),
                need: t,
            });
        }
        let signature = threshold::aggregate(t, &partials).map_err(SignError::Threshold)?;
        if !self.public.public_key.verify(message, &signature) {
            return Err(SignError::AggregateInvalid);
        }
        Ok(signature)
    }
}

/// Runs the signing ladder directly on an instance (no deployment, no
/// sockets) — the "Sandbox" row of Table 3.
pub fn sign_in_sandbox(
    instance: &mut distrust_sandbox::Instance,
    import_names: &[String],
    host: &mut SignerHost,
    message: &[u8],
) -> Result<Signature, String> {
    let out = distrust_core::abi::app_call(instance, import_names, host, METHOD_SIGN, message)
        .map_err(|e| e.to_string())?;
    let bytes: [u8; 48] = out
        .as_slice()
        .try_into()
        .map_err(|_| "bad length".to_string())?;
    Signature::from_bytes(&bytes).ok_or_else(|| "bad point".to_string())
}

/// Native partial signing — the "Baseline" row of Table 3.
pub fn sign_native(share: &KeyShare, message: &[u8]) -> Signature {
    threshold::partial_sign(share, message).value
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrust_core::abi::import_names;
    use distrust_crypto::drbg::HmacDrbg;
    use distrust_sandbox::Instance;

    #[test]
    fn guest_ladder_matches_native_partial_sign() {
        let mut rng = HmacDrbg::new(b"signer tests", b"ladder");
        let keys = threshold::generate(2, 3, &mut rng).unwrap();
        let module = signer_module();
        let names = import_names(&module);
        for share in &keys.shares {
            let mut inst = Instance::new(module.clone(), Limits::default()).unwrap();
            let mut host = SignerHost::new(*share);
            let msg = b"table 3 workload";
            let guest_sig = sign_in_sandbox(&mut inst, &names, &mut host, msg).unwrap();
            let native_sig = sign_native(share, msg);
            assert_eq!(guest_sig, native_sig, "share {}", share.index);
        }
    }

    #[test]
    fn guest_ladder_many_messages() {
        let mut rng = HmacDrbg::new(b"signer tests", b"many");
        let keys = threshold::generate(1, 1, &mut rng).unwrap();
        let share = keys.shares[0];
        let module = signer_module();
        let names = import_names(&module);
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        let mut host = SignerHost::new(share);
        for i in 0..5 {
            let msg = format!("message number {i}");
            let guest = sign_in_sandbox(&mut inst, &names, &mut host, msg.as_bytes()).unwrap();
            assert_eq!(guest, sign_native(&share, msg.as_bytes()), "msg {i}");
        }
    }

    #[test]
    fn guest_partials_aggregate_to_valid_group_signature() {
        let mut rng = HmacDrbg::new(b"signer tests", b"aggregate");
        let keys = threshold::generate(3, 5, &mut rng).unwrap();
        let module = signer_module();
        let names = import_names(&module);
        let msg = b"joint statement";
        let mut partials = Vec::new();
        for share in &keys.shares[1..4] {
            let mut inst = Instance::new(module.clone(), Limits::default()).unwrap();
            let mut host = SignerHost::new(*share);
            let sig = sign_in_sandbox(&mut inst, &names, &mut host, msg).unwrap();
            partials.push(PartialSignature {
                index: share.index,
                value: sig,
            });
        }
        let agg = threshold::aggregate(3, &partials).unwrap();
        assert!(keys.public_key.verify(msg, &agg));
    }

    #[test]
    fn share_index_method() {
        let mut rng = HmacDrbg::new(b"signer tests", b"index");
        let keys = threshold::generate(1, 2, &mut rng).unwrap();
        let module = signer_module();
        let names = import_names(&module);
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        let mut host = SignerHost::new(keys.shares[1]);
        let out =
            distrust_core::abi::app_call(&mut inst, &names, &mut host, METHOD_INDEX, b"").unwrap();
        assert_eq!(out, vec![2u8]);
    }

    #[test]
    fn unknown_method_traps_cleanly() {
        let mut rng = HmacDrbg::new(b"signer tests", b"unknown");
        let keys = threshold::generate(1, 1, &mut rng).unwrap();
        let module = signer_module();
        let names = import_names(&module);
        let mut inst = Instance::new(module, Limits::default()).unwrap();
        let mut host = SignerHost::new(keys.shares[0]);
        let err = distrust_core::abi::app_call(&mut inst, &names, &mut host, 99, b"");
        assert!(err.is_err());
    }

    #[test]
    fn setup_produces_consistent_public() {
        let mut rng = HmacDrbg::new(b"signer tests", b"setup");
        let (spec, public) = setup(2, 4, &mut rng).unwrap();
        assert_eq!(spec.hosts.len(), 4);
        assert_eq!(public.threshold, 2);
        assert_eq!(public.commitments.public_key(), public.public_key);
    }

    #[test]
    fn small_scalar_edge_cases() {
        // Shares with tiny values exercise the top-bit scan.
        let module = signer_module();
        let names = import_names(&module);
        for v in [1u64, 2, 3, 255] {
            let share = KeyShare {
                index: 1,
                value: distrust_crypto::fr::Fr::from_u64(v),
            };
            let mut inst = Instance::new(module.clone(), Limits::default()).unwrap();
            let mut host = SignerHost::new(share);
            let guest = sign_in_sandbox(&mut inst, &names, &mut host, b"edge").unwrap();
            assert_eq!(guest, sign_native(&share, b"edge"), "scalar {v}");
        }
    }
}
