//! Prio-style private analytics (§2: "Privacy-preserving analytics").
//!
//! Clients additively secret-share a vector of counters across the trust
//! domains; each domain accumulates its shares locally (pure guest code —
//! no host imports at all); the analyst sums the per-domain accumulators,
//! and the shares cancel: only the totals are revealed. No single domain
//! (including the developer's own domain 0) learns any individual
//! client's values.
//!
//! Simplification vs. Prio proper: no zero-knowledge range proofs on
//! submissions (SNIPs); a malicious client can skew totals but privacy is
//! unaffected. Documented in DESIGN.md.
//!
//! Method ids: `1` = submit (payload = `k` little-endian u64 shares), `2`
//! = aggregate (response = `k` u64 totals), `3` = submission count.

use distrust_core::abi::{AppHost, NoImports, OUTBOX_ADDR};
use distrust_core::deploy::AppSpec;
use distrust_core::session::{FanoutCall, Session};
use distrust_core::ClientError;
use distrust_sandbox::{FuncBuilder, Instr, Limits, Module, ModuleBuilder};

/// Method id: submit one share vector.
pub const METHOD_SUBMIT: u64 = 1;
/// Method id: read the accumulator vector.
pub const METHOD_AGGREGATE: u64 = 2;
/// Method id: read the submission count.
pub const METHOD_COUNT: u64 = 3;

/// Maximum dimensions per deployment (bounded by outbox size).
pub const MAX_DIMS: u64 = 1024;

mod layout {
    /// Number of dimensions (fixed by the first submission).
    pub const NDIMS: u64 = 40944;
    /// Submission counter.
    pub const COUNT: u64 = 40952;
    /// Accumulator array (u64 × MAX_DIMS).
    pub const ACC: u64 = 40960;
}

/// Builds the analytics guest module (no host imports: the aggregation
/// logic is entirely auditable guest code).
pub fn analytics_module() -> Module {
    let mut mb = ModuleBuilder::new(1, 1);

    // handle(method, addr, len); locals: 3 = i, 4 = k (dims in request).
    let mut f = FuncBuilder::new(3, 2, 1);
    f.lget(0)
        .constant(METHOD_SUBMIT)
        .op(Instr::Eq)
        .jnz("submit");
    f.lget(0)
        .constant(METHOD_AGGREGATE)
        .op(Instr::Eq)
        .jnz("aggregate");
    f.lget(0).constant(METHOD_COUNT).op(Instr::Eq).jnz("count");
    f.op(Instr::Trap);

    // --- SUBMIT.
    f.label("submit");
    // k = len / 8; reject empty, non-multiple-of-8, or oversized vectors.
    f.lget(2).constant(8).op(Instr::RemU).jnz("malformed");
    f.lget(2).constant(8).op(Instr::DivU).lset(4);
    f.lget(4).jz("malformed");
    f.lget(4).constant(MAX_DIMS).op(Instr::GtU).jnz("malformed");
    // First submission fixes the dimensionality.
    f.constant(layout::NDIMS).load64(0).jnz("check_dims");
    f.constant(layout::NDIMS).lget(4).store64(0);
    f.jmp("accumulate");
    f.label("check_dims");
    f.constant(layout::NDIMS)
        .load64(0)
        .lget(4)
        .op(Instr::Ne)
        .jnz("malformed");
    // acc[i] += share[i] (wrapping), i in 0..k
    f.label("accumulate");
    f.constant(0).lset(3);
    f.label("acc_loop");
    f.lget(3).lget(4).op(Instr::GeU).jnz("acc_done");
    // target address = ACC + 8i
    f.lget(3)
        .constant(8)
        .op(Instr::Mul)
        .constant(layout::ACC)
        .add();
    f.op(Instr::Dup).load64(0);
    // + share_i at addr + 8i
    f.lget(1).lget(3).constant(8).op(Instr::Mul).add().load64(0);
    f.add().store64(0);
    f.lget(3).constant(1).add().lset(3).jmp("acc_loop");
    f.label("acc_done");
    // count += 1; status 0.
    f.constant(layout::COUNT)
        .constant(layout::COUNT)
        .load64(0)
        .constant(1)
        .add()
        .store64(0);
    f.constant(OUTBOX_ADDR).constant(0).store8(0);
    f.constant(1).ret();

    // --- AGGREGATE: copy k u64s to the outbox.
    f.label("aggregate");
    f.constant(layout::NDIMS).load64(0).lset(4);
    f.constant(0).lset(3);
    f.label("copy_loop");
    f.lget(3).lget(4).op(Instr::GeU).jnz("copy_done");
    f.constant(OUTBOX_ADDR)
        .lget(3)
        .constant(8)
        .op(Instr::Mul)
        .add();
    f.lget(3)
        .constant(8)
        .op(Instr::Mul)
        .constant(layout::ACC)
        .add()
        .load64(0);
    f.store64(0);
    f.lget(3).constant(1).add().lset(3).jmp("copy_loop");
    f.label("copy_done");
    f.lget(4).constant(8).op(Instr::Mul).ret();

    // --- COUNT.
    f.label("count");
    f.constant(OUTBOX_ADDR)
        .constant(layout::COUNT)
        .load64(0)
        .store64(0);
    f.constant(8).ret();

    f.label("malformed");
    f.constant(OUTBOX_ADDR).constant(4).store8(0);
    f.constant(1).ret();

    let idx = mb.function(f.build().expect("analytics guest builds"));
    mb.export(distrust_core::abi::HANDLE_EXPORT, idx);
    mb.build()
}

/// Packages the [`AppSpec`] for an `n`-domain analytics deployment.
pub fn app_spec(n: usize) -> AppSpec {
    AppSpec {
        name: "private-analytics".to_string(),
        module: analytics_module(),
        notes: "v1: additive-share private aggregation".to_string(),
        hosts: (0..n)
            .map(|_| Box::new(NoImports) as Box<dyn AppHost>)
            .collect(),
        limits: Limits::default(),
    }
}

/// Splits `values` into `n` additive shares (mod 2⁶⁴).
pub fn share_values<R: rand::RngCore + ?Sized>(
    values: &[u64],
    n: usize,
    rng: &mut R,
) -> Vec<Vec<u64>> {
    assert!(n >= 1);
    let mut shares = vec![vec![0u64; values.len()]; n];
    for (dim, &v) in values.iter().enumerate() {
        let mut acc = 0u64;
        for share in shares.iter_mut().take(n - 1) {
            let r = rng.next_u64();
            share[dim] = r;
            acc = acc.wrapping_add(r);
        }
        shares[n - 1][dim] = v.wrapping_sub(acc);
    }
    shares
}

fn decode_u64s(bytes: &[u8]) -> Result<Vec<u64>, ClientError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(ClientError::Unexpected(format!(
            "aggregate payload of {} bytes",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

/// User-side submission + analyst-side aggregation.
pub struct AnalyticsClient {
    /// Number of counters per submission.
    pub dims: usize,
}

impl AnalyticsClient {
    /// Creates a client for `dims`-dimensional reports.
    pub fn new(dims: usize) -> Self {
        Self { dims }
    }

    /// Submits one report, privately: each domain receives one additive
    /// share that individually carries zero information about `values`.
    ///
    /// All `n` shares are in flight before any acknowledgement is read
    /// (one round-trip for the whole submission), and every domain must
    /// accept: a partially landed report would skew the totals, so the
    /// fan-out runs under [`distrust_core::QuorumPolicy::All`].
    pub fn submit<R: rand::RngCore + ?Sized>(
        &self,
        session: &mut Session<'_>,
        values: &[u64],
        rng: &mut R,
    ) -> Result<(), ClientError> {
        assert_eq!(values.len(), self.dims);
        let n = session.domain_count();
        let shares = share_values(values, n, rng);
        let payloads: Vec<Vec<u8>> = shares
            .iter()
            .map(|share| share.iter().flat_map(|v| v.to_le_bytes()).collect())
            .collect();
        let report = session.fanout(&FanoutCall::per_domain(METHOD_SUBMIT, payloads))?;
        report.require()?;
        for (d, resp) in report.successes() {
            if resp != [0] {
                return Err(ClientError::Unexpected(format!(
                    "submit rejected by domain {d}: {resp:?}"
                )));
            }
        }
        Ok(())
    }

    /// Analyst: sums per-domain accumulators; shares cancel, revealing
    /// only the totals. Also cross-checks that every domain saw the same
    /// number of submissions. Both queries are broadcast fan-outs — every
    /// accumulator is needed for the masks to cancel, so the quorum is
    /// [`distrust_core::QuorumPolicy::All`].
    pub fn aggregate(&self, session: &mut Session<'_>) -> Result<(Vec<u64>, u64), ClientError> {
        let acc_report = session.fanout(&FanoutCall::broadcast(METHOD_AGGREGATE, Vec::new()))?;
        acc_report.require()?;
        let mut totals = vec![0u64; self.dims];
        for (d, resp) in acc_report.successes() {
            let acc = decode_u64s(resp)?;
            if acc.len() != self.dims {
                return Err(ClientError::Unexpected(format!(
                    "domain {d} returned {} dims, expected {}",
                    acc.len(),
                    self.dims
                )));
            }
            for (t, v) in totals.iter_mut().zip(acc) {
                *t = t.wrapping_add(v);
            }
        }
        let count_report = session.fanout(&FanoutCall::broadcast(METHOD_COUNT, Vec::new()))?;
        count_report.require()?;
        let mut counts = Vec::new();
        for (_, resp) in count_report.successes() {
            counts.push(decode_u64s(resp)?.first().copied().unwrap_or(0));
        }
        let count = counts.first().copied().unwrap_or(0);
        if counts.iter().any(|&c| c != count) {
            return Err(ClientError::Unexpected(format!(
                "domains disagree on submission count: {counts:?}"
            )));
        }
        Ok((totals, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrust_core::abi::{app_call, import_names};
    use distrust_crypto::drbg::HmacDrbg;
    use distrust_sandbox::Instance;

    fn instance() -> (Instance, Vec<String>) {
        let module = analytics_module();
        let names = import_names(&module);
        (Instance::new(module, Limits::default()).unwrap(), names)
    }

    fn submit(inst: &mut Instance, names: &[String], shares: &[u64]) -> Vec<u8> {
        let payload: Vec<u8> = shares.iter().flat_map(|v| v.to_le_bytes()).collect();
        app_call(inst, names, &mut NoImports, METHOD_SUBMIT, &payload).unwrap()
    }

    #[test]
    fn accumulates_wrapping() {
        let (mut inst, names) = instance();
        assert_eq!(submit(&mut inst, &names, &[1, 2, 3]), vec![0]);
        assert_eq!(submit(&mut inst, &names, &[10, u64::MAX, 30]), vec![0]);
        let out = app_call(&mut inst, &names, &mut NoImports, METHOD_AGGREGATE, b"").unwrap();
        let totals = decode_u64s(&out).unwrap();
        assert_eq!(totals, vec![11, 1, 33]); // 2 + MAX wraps to 1
        let count = app_call(&mut inst, &names, &mut NoImports, METHOD_COUNT, b"").unwrap();
        assert_eq!(decode_u64s(&count).unwrap(), vec![2]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (mut inst, names) = instance();
        assert_eq!(submit(&mut inst, &names, &[1, 2]), vec![0]);
        assert_eq!(submit(&mut inst, &names, &[1, 2, 3]), vec![4]);
        // Original dims still accepted.
        assert_eq!(submit(&mut inst, &names, &[5, 6]), vec![0]);
    }

    #[test]
    fn malformed_submissions_rejected() {
        let (mut inst, names) = instance();
        // Not a multiple of 8.
        let out = app_call(&mut inst, &names, &mut NoImports, METHOD_SUBMIT, &[1, 2, 3]).unwrap();
        assert_eq!(out, vec![4]);
        // Empty.
        let out = app_call(&mut inst, &names, &mut NoImports, METHOD_SUBMIT, b"").unwrap();
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn shares_sum_to_values() {
        let mut rng = HmacDrbg::new(b"analytics", b"shares");
        let values = [5u64, 0, u64::MAX, 123_456_789];
        for n in 1..=5 {
            let shares = share_values(&values, n, &mut rng);
            assert_eq!(shares.len(), n);
            for dim in 0..values.len() {
                let sum = shares.iter().fold(0u64, |acc, s| acc.wrapping_add(s[dim]));
                assert_eq!(sum, values[dim], "n={n} dim={dim}");
            }
        }
    }

    #[test]
    fn single_share_reveals_nothing_structurally() {
        // With n >= 2 the first n-1 shares are uniform random draws
        // independent of the value; sanity-check that two different values
        // can produce the identical first share under the same randomness.
        let values_a = [100u64];
        let values_b = [999u64];
        let mut rng_a = HmacDrbg::new(b"analytics", b"same-seed");
        let mut rng_b = HmacDrbg::new(b"analytics", b"same-seed");
        let share_a = share_values(&values_a, 2, &mut rng_a);
        let share_b = share_values(&values_b, 2, &mut rng_b);
        assert_eq!(share_a[0], share_b[0], "first share independent of value");
        assert_ne!(share_a[1], share_b[1]);
    }

    #[test]
    fn aggregate_before_any_submission_is_empty() {
        let (mut inst, names) = instance();
        let out = app_call(&mut inst, &names, &mut NoImports, METHOD_AGGREGATE, b"").unwrap();
        assert!(out.is_empty(), "no dims fixed yet");
    }
}
