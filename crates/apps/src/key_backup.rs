//! Secret-key backup — the paper's motivating application (Figure 1).
//!
//! "The user splits its secret key across different trust domains via
//! secret sharing. Therefore, even if the attacker steals secret shares
//! from all but one of the trust domains, the attacker cannot learn users'
//! secret keys."
//!
//! The user GF(256)-shares a secret across the `n` domains (threshold
//! `t`), authenticated by a recovery token. The **sandboxed guest enforces
//! the security policy**: token verification (constant traffic shape) and
//! per-user rate limiting live in guest code that every auditor can read;
//! the host side only provides storage and SHA-256.
//!
//! Response status bytes: `0` ok (share follows), `1` bad token, `2`
//! unknown user, `3` rate limited, `4` malformed request, `5` already
//! stored.

use distrust_core::abi::{AppHost, OUTBOX_ADDR};
use distrust_core::deploy::AppSpec;
use distrust_core::session::{FanoutCall, Session};
use distrust_core::ClientError;
use distrust_crypto::gf256::{self, ByteShare};
use distrust_crypto::sha256::Digest;
use distrust_sandbox::vm::Memory;
use distrust_sandbox::{FuncBuilder, Instr, Limits, Module, ModuleBuilder};
use std::collections::HashMap;

/// Method id: store a share.
pub const METHOD_STORE: u64 = 1;
/// Method id: recover a share.
pub const METHOD_RECOVER: u64 = 2;

/// Per-user failed-attempt limit enforced in guest code.
pub const MAX_ATTEMPTS: u64 = 5;

/// Guest memory layout (outside the inbox/outbox windows).
mod layout {
    /// 256 per-user-bucket attempt counters (u64 each).
    pub const COUNTERS: u64 = 40960;
    /// Host writes the stored token hash here during `fetch`.
    pub const STORED_HASH: u64 = 43008;
    /// Host writes the freshly computed token hash here.
    pub const COMPUTED_HASH: u64 = 43072;
}

/// Builds the key-backup guest module.
pub fn backup_module() -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    let store = mb.import("backup.store", 2, 1);
    let fetch = mb.import("backup.fetch", 1, 1);
    let share_out = mb.import("backup.share_out", 1, 1);
    let sha256_to = mb.import("crypto.sha256_to", 3, 0);

    // handle(method, addr, len); locals: 3 = i, 4 = counter addr.
    let mut f = FuncBuilder::new(3, 2, 1);
    f.lget(0).constant(METHOD_STORE).op(Instr::Eq).jnz("store");
    f.lget(0)
        .constant(METHOD_RECOVER)
        .op(Instr::Eq)
        .jnz("recover");
    f.op(Instr::Trap);

    // --- STORE: forward to host storage after a length sanity check.
    f.label("store");
    // need user_id(8) + token_hash(32) + ≥1 byte of share
    f.lget(2).constant(41).op(Instr::LtU).jnz("malformed");
    f.lget(1).lget(2).host(store);
    f.constant(OUTBOX_ADDR).op(Instr::Swap).store8(0);
    f.constant(1).ret();

    // --- RECOVER.
    f.label("recover");
    f.lget(2).constant(40).op(Instr::Ne).jnz("malformed");
    // counter address = COUNTERS + 8 * user_id[0]
    f.lget(1)
        .load8(0)
        .constant(8)
        .op(Instr::Mul)
        .constant(layout::COUNTERS)
        .add()
        .lset(4);
    // rate limited?
    f.lget(4)
        .load64(0)
        .constant(MAX_ATTEMPTS)
        .op(Instr::GeU)
        .jnz("limited");
    // stored hash exists?
    f.lget(1).host(fetch).jz("unknown");
    // compute sha256(token) — token is the 32 bytes after the user id.
    f.lget(1)
        .constant(8)
        .add()
        .constant(32)
        .constant(layout::COMPUTED_HASH)
        .host(sha256_to);
    // compare the two hashes byte by byte.
    f.constant(0).lset(3);
    f.label("cmp");
    f.lget(3).constant(32).op(Instr::GeU).jnz("auth_ok");
    f.constant(layout::STORED_HASH).lget(3).add().load8(0);
    f.constant(layout::COMPUTED_HASH).lget(3).add().load8(0);
    f.op(Instr::Ne).jnz("bad_token");
    f.lget(3).constant(1).add().lset(3).jmp("cmp");

    f.label("bad_token");
    // counter += 1
    f.lget(4).lget(4).load64(0).constant(1).add().store64(0);
    f.constant(OUTBOX_ADDR).constant(1).store8(0);
    f.constant(1).ret();

    f.label("auth_ok");
    // reset the counter, emit status 0 + share
    f.lget(4).constant(0).store64(0);
    f.constant(OUTBOX_ADDR).constant(0).store8(0);
    f.lget(1).host(share_out).constant(1).add().ret();

    f.label("unknown");
    f.constant(OUTBOX_ADDR).constant(2).store8(0);
    f.constant(1).ret();

    f.label("limited");
    f.constant(OUTBOX_ADDR).constant(3).store8(0);
    f.constant(1).ret();

    f.label("malformed");
    f.constant(OUTBOX_ADDR).constant(4).store8(0);
    f.constant(1).ret();

    let idx = mb.function(f.build().expect("backup guest builds"));
    mb.export(distrust_core::abi::HANDLE_EXPORT, idx);
    mb.build()
}

/// Host-side storage for one trust domain.
#[derive(Default)]
pub struct BackupHost {
    records: HashMap<u64, ([u8; 32], Vec<u8>)>,
}

impl BackupHost {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored records (tests / compromise scenarios).
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// **Compromise API**: everything an attacker who owns this domain
    /// learns — used by the Figure 1 compromise test.
    pub fn dump(&self) -> Vec<(u64, [u8; 32], Vec<u8>)> {
        self.records
            .iter()
            .map(|(k, (h, s))| (*k, *h, s.clone()))
            .collect()
    }

    fn read_user_id(memory: &Memory, addr: u64) -> Result<u64, String> {
        let bytes = memory.read(addr, 8).map_err(|e| e.to_string())?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }
}

impl AppHost for BackupHost {
    fn call(&mut self, name: &str, args: &[u64], memory: &mut Memory) -> Result<Vec<u64>, String> {
        match name {
            "backup.store" => {
                let (addr, len) = (args[0], args[1]);
                let payload = memory.read(addr, len).map_err(|e| e.to_string())?.to_vec();
                let user_id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
                let mut token_hash = [0u8; 32];
                token_hash.copy_from_slice(&payload[8..40]);
                let share = payload[40..].to_vec();
                if self.records.contains_key(&user_id) {
                    return Ok(vec![5]);
                }
                self.records.insert(user_id, (token_hash, share));
                Ok(vec![0])
            }
            "backup.fetch" => {
                let user_id = Self::read_user_id(memory, args[0])?;
                match self.records.get(&user_id) {
                    Some((hash, _)) => {
                        memory
                            .write(layout::STORED_HASH, hash)
                            .map_err(|e| e.to_string())?;
                        Ok(vec![1])
                    }
                    None => Ok(vec![0]),
                }
            }
            "backup.share_out" => {
                let user_id = Self::read_user_id(memory, args[0])?;
                let (_, share) = self
                    .records
                    .get(&user_id)
                    .ok_or_else(|| "share_out for unknown user".to_string())?;
                memory
                    .write(OUTBOX_ADDR + 1, share)
                    .map_err(|e| e.to_string())?;
                Ok(vec![share.len() as u64])
            }
            "crypto.sha256_to" => {
                let (addr, len, out) = (args[0], args[1], args[2]);
                let data = memory.read(addr, len).map_err(|e| e.to_string())?.to_vec();
                let digest = distrust_crypto::sha256(&data);
                memory.write(out, &digest).map_err(|e| e.to_string())?;
                Ok(vec![])
            }
            other => Err(format!("unknown import {other:?}")),
        }
    }
}

/// Packages the [`AppSpec`] for an `n`-domain backup deployment.
pub fn app_spec(n: usize) -> AppSpec {
    AppSpec {
        name: "key-backup".to_string(),
        module: backup_module(),
        notes: "v1: secret-key backup with token auth + rate limiting".to_string(),
        hosts: (0..n)
            .map(|_| Box::new(BackupHost::new()) as Box<dyn AppHost>)
            .collect(),
        limits: Limits::default(),
    }
}

/// Outcome of a recovery attempt against one domain.
#[derive(Debug, PartialEq, Eq)]
pub enum RecoverStatus {
    /// Share returned.
    Ok(Vec<u8>),
    /// Token rejected.
    BadToken,
    /// No record for this user.
    UnknownUser,
    /// Too many failed attempts.
    RateLimited,
    /// Request malformed.
    Malformed,
    /// Share already stored (store path).
    AlreadyStored,
}

fn parse_response(payload: &[u8]) -> Result<RecoverStatus, ClientError> {
    match payload.split_first() {
        Some((0, rest)) => Ok(RecoverStatus::Ok(rest.to_vec())),
        Some((1, _)) => Ok(RecoverStatus::BadToken),
        Some((2, _)) => Ok(RecoverStatus::UnknownUser),
        Some((3, _)) => Ok(RecoverStatus::RateLimited),
        Some((4, _)) => Ok(RecoverStatus::Malformed),
        Some((5, _)) => Ok(RecoverStatus::AlreadyStored),
        _ => Err(ClientError::Unexpected("empty backup response".into())),
    }
}

/// User-side client: split, store, recover, verify.
pub struct KeyBackupClient {
    /// Recovery threshold.
    pub threshold: usize,
}

impl KeyBackupClient {
    /// Creates a client with recovery threshold `t`.
    pub fn new(threshold: usize) -> Self {
        Self { threshold }
    }

    /// Splits `secret` and stores one share per domain. Returns the
    /// integrity commitment the user keeps to validate recovery.
    ///
    /// All `n` store requests are pipelined (in flight before any
    /// acknowledgement is read); every domain must accept — a backup some
    /// domains never received would silently lower the recovery margin.
    pub fn backup<R: rand::RngCore + ?Sized>(
        &self,
        session: &mut Session<'_>,
        user_id: u64,
        token: &[u8; 32],
        secret: &[u8],
        rng: &mut R,
    ) -> Result<Digest, ClientError> {
        let n = session.domain_count();
        let shares = gf256::split(secret, self.threshold, n, rng)
            .map_err(|e| ClientError::Unexpected(format!("split failed: {e}")))?;
        let token_hash = distrust_crypto::sha256(token);
        let payloads: Vec<Vec<u8>> = shares
            .iter()
            .map(|share| {
                let mut payload = Vec::with_capacity(40 + share.data.len());
                payload.extend_from_slice(&user_id.to_le_bytes());
                payload.extend_from_slice(&token_hash);
                payload.extend_from_slice(&share.data);
                payload
            })
            .collect();
        let report = session.fanout(&FanoutCall::per_domain(METHOD_STORE, payloads))?;
        report.require()?;
        for (d, resp) in report.successes() {
            match parse_response(resp)? {
                RecoverStatus::Ok(_) => {}
                other => {
                    return Err(ClientError::Unexpected(format!(
                        "store on domain {d} failed: {other:?}"
                    )))
                }
            }
        }
        Ok(distrust_crypto::sha256(secret))
    }

    /// Attempts recovery from one domain.
    pub fn recover_share(
        &self,
        session: &mut Session<'_>,
        domain: u32,
        user_id: u64,
        token: &[u8; 32],
    ) -> Result<RecoverStatus, ClientError> {
        let resp = session.call(domain, METHOD_RECOVER, &recover_request(user_id, token))?;
        parse_response(&resp)
    }

    /// Full recovery: collect `t` shares, recombine, verify against the
    /// commitment from [`Self::backup`].
    ///
    /// The recovery request is broadcast under
    /// [`distrust_core::QuorumPolicy::Threshold`]`(t)` (via
    /// [`Session::fanout_collect`]): the fan-out returns as soon as `t`
    /// domains answer, so dead or slow domains cost nothing as long as
    /// `t` are alive. Domains that answered but refused (bad token,
    /// unknown user, malformed reply) do not yield shares and are not
    /// re-asked; only abandoned stragglers are.
    pub fn recover(
        &self,
        session: &mut Session<'_>,
        user_id: u64,
        token: &[u8; 32],
        commitment: &Digest,
    ) -> Result<Vec<u8>, ClientError> {
        let request = recover_request(user_id, token);
        let shares =
            session.fanout_collect(METHOD_RECOVER, request, self.threshold, |d, resp| {
                match parse_response(resp) {
                    Ok(RecoverStatus::Ok(data)) => Some(ByteShare {
                        x: (d + 1) as u8,
                        data,
                    }),
                    _ => None,
                }
            })?;
        let secret = gf256::combine(&shares, self.threshold)
            .map_err(|e| ClientError::Unexpected(format!("combine failed: {e}")))?;
        if &distrust_crypto::sha256(&secret) != commitment {
            return Err(ClientError::Unexpected(
                "recovered secret fails integrity check".into(),
            ));
        }
        Ok(secret)
    }
}

/// The wire payload of a recovery attempt (same bytes for every domain).
fn recover_request(user_id: u64, token: &[u8; 32]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(40);
    payload.extend_from_slice(&user_id.to_le_bytes());
    payload.extend_from_slice(token);
    payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrust_core::abi::{app_call, import_names};
    use distrust_sandbox::Instance;

    fn instance() -> (Instance, Vec<String>, BackupHost) {
        let module = backup_module();
        let names = import_names(&module);
        let inst = Instance::new(module, Limits::default()).unwrap();
        (inst, names, BackupHost::new())
    }

    fn store_payload(user_id: u64, token: &[u8; 32], share: &[u8]) -> Vec<u8> {
        let mut p = Vec::new();
        p.extend_from_slice(&user_id.to_le_bytes());
        p.extend_from_slice(&distrust_crypto::sha256(token));
        p.extend_from_slice(share);
        p
    }

    fn recover_payload(user_id: u64, token: &[u8; 32]) -> Vec<u8> {
        let mut p = Vec::new();
        p.extend_from_slice(&user_id.to_le_bytes());
        p.extend_from_slice(token);
        p
    }

    #[test]
    fn store_then_recover() {
        let (mut inst, names, mut host) = instance();
        let token = [7u8; 32];
        let out = app_call(
            &mut inst,
            &names,
            &mut host,
            METHOD_STORE,
            &store_payload(42, &token, b"share bytes"),
        )
        .unwrap();
        assert_eq!(out, vec![0]);
        let out = app_call(
            &mut inst,
            &names,
            &mut host,
            METHOD_RECOVER,
            &recover_payload(42, &token),
        )
        .unwrap();
        assert_eq!(out[0], 0);
        assert_eq!(&out[1..], b"share bytes");
    }

    #[test]
    fn wrong_token_denied_in_guest() {
        let (mut inst, names, mut host) = instance();
        let token = [7u8; 32];
        app_call(
            &mut inst,
            &names,
            &mut host,
            METHOD_STORE,
            &store_payload(1, &token, b"s"),
        )
        .unwrap();
        let out = app_call(
            &mut inst,
            &names,
            &mut host,
            METHOD_RECOVER,
            &recover_payload(1, &[8u8; 32]),
        )
        .unwrap();
        assert_eq!(out, vec![1], "bad token status");
    }

    #[test]
    fn rate_limit_enforced_in_guest() {
        let (mut inst, names, mut host) = instance();
        let token = [7u8; 32];
        app_call(
            &mut inst,
            &names,
            &mut host,
            METHOD_STORE,
            &store_payload(5, &token, b"s"),
        )
        .unwrap();
        // Burn through the attempt budget with a wrong token.
        for _ in 0..MAX_ATTEMPTS {
            let out = app_call(
                &mut inst,
                &names,
                &mut host,
                METHOD_RECOVER,
                &recover_payload(5, &[0u8; 32]),
            )
            .unwrap();
            assert_eq!(out, vec![1]);
        }
        // Even the CORRECT token is now refused.
        let out = app_call(
            &mut inst,
            &names,
            &mut host,
            METHOD_RECOVER,
            &recover_payload(5, &token),
        )
        .unwrap();
        assert_eq!(out, vec![3], "rate limited");
    }

    #[test]
    fn successful_auth_resets_counter() {
        let (mut inst, names, mut host) = instance();
        let token = [9u8; 32];
        app_call(
            &mut inst,
            &names,
            &mut host,
            METHOD_STORE,
            &store_payload(6, &token, b"s"),
        )
        .unwrap();
        for _ in 0..MAX_ATTEMPTS - 1 {
            app_call(
                &mut inst,
                &names,
                &mut host,
                METHOD_RECOVER,
                &recover_payload(6, &[0u8; 32]),
            )
            .unwrap();
        }
        let out = app_call(
            &mut inst,
            &names,
            &mut host,
            METHOD_RECOVER,
            &recover_payload(6, &token),
        )
        .unwrap();
        assert_eq!(out[0], 0);
        // Counter is reset: the budget is fresh again.
        for _ in 0..MAX_ATTEMPTS - 1 {
            let out = app_call(
                &mut inst,
                &names,
                &mut host,
                METHOD_RECOVER,
                &recover_payload(6, &[0u8; 32]),
            )
            .unwrap();
            assert_eq!(out, vec![1]);
        }
    }

    #[test]
    fn unknown_user_and_malformed() {
        let (mut inst, names, mut host) = instance();
        let out = app_call(
            &mut inst,
            &names,
            &mut host,
            METHOD_RECOVER,
            &recover_payload(404, &[0u8; 32]),
        )
        .unwrap();
        assert_eq!(out, vec![2]);
        let out = app_call(&mut inst, &names, &mut host, METHOD_RECOVER, b"short").unwrap();
        assert_eq!(out, vec![4]);
        let out = app_call(&mut inst, &names, &mut host, METHOD_STORE, b"short").unwrap();
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn duplicate_store_rejected() {
        let (mut inst, names, mut host) = instance();
        let token = [1u8; 32];
        let payload = store_payload(9, &token, b"first");
        assert_eq!(
            app_call(&mut inst, &names, &mut host, METHOD_STORE, &payload).unwrap(),
            vec![0]
        );
        assert_eq!(
            app_call(&mut inst, &names, &mut host, METHOD_STORE, &payload).unwrap(),
            vec![5]
        );
    }
}
