//! The Figure 2 scenario: the developer pushes a code update and every
//! client can audit exactly what happened — including catching a
//! malicious update attempt.
//!
//! ```sh
//! cargo run --release --example update_audit
//! ```

use distrust::core::abi::{AppHost, HANDLE_EXPORT, OUTBOX_ADDR};
use distrust::core::{AppSpec, Deployment, NoImports};
use distrust::crypto::schnorr::SigningKey;
use distrust::sandbox::{FuncBuilder, Limits, Module, ModuleBuilder};

/// A versioned greeter app: returns `version` as a single byte.
fn greeter(version: u64) -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    let mut f = FuncBuilder::new(3, 0, 1);
    f.constant(OUTBOX_ADDR)
        .constant(version)
        .store8(0)
        .constant(1)
        .ret();
    let idx = mb.function(f.build().unwrap());
    mb.export(HANDLE_EXPORT, idx);
    mb.build()
}

fn main() {
    println!("== Figure 2: auditable code updates ==\n");

    let spec = AppSpec {
        name: "greeter".into(),
        module: greeter(1),
        notes: "v1".into(),
        hosts: (0..3)
            .map(|_| Box::new(NoImports) as Box<dyn AppHost>)
            .collect(),
        limits: Limits::default(),
    };
    let deployment = Deployment::launch(spec, b"update audit example").expect("launch");
    let mut user = deployment.client(b"auditing user");
    // The user talks to the app through a trust-gated session: the audit
    // runs before the first call below, by construction. Developer-side
    // operations (update pushes, raw log queries) go through the un-gated
    // client underneath, deliberately.
    let mut session = user.session(distrust::core::TrustPolicy::audited());

    println!(
        "v1 deployed to 3 domains; app answers: {:?}",
        session.call(1, 1, b"").unwrap()
    );
    println!(
        "initial (gating) audit clean: {}\n",
        session.last_audit().unwrap().is_clean()
    );

    // -- A malicious actor (without the developer key) tries to push code.
    println!("-- mallory pushes an unsigned update --");
    let mallory = SigningKey::derive(b"mallory", b"key");
    let evil = distrust::core::SignedRelease::create("greeter", 2, "fix", &greeter(66), &mallory);
    for (d, result) in session.client().push_update(&evil).into_iter().enumerate() {
        println!(
            "  domain {d}: {}",
            match result {
                Err(e) => format!("REJECTED ({e})"),
                Ok(_) => "accepted (!!)".into(),
            }
        );
    }
    assert_eq!(session.call(1, 1, b"").unwrap(), vec![1], "still v1");

    // -- The real developer pushes v2. The release is encoded once and
    //    the same frame is fanned out to all 3 domains, pipelined.
    println!("\n-- the developer pushes signed v2 --");
    let v2 = deployment.sign_release(2, "v2: better greetings", &greeter(2));
    let v2_digest = v2.digest();
    for (d, result) in session.client().push_update(&v2).into_iter().enumerate() {
        let (log_size, _) = result.expect("accepted");
        println!("  domain {d}: accepted, log now has {log_size} entries");
    }
    println!("app now answers: {:?}", session.call(1, 1, b"").unwrap());

    // -- What the client can verify afterwards.
    println!("\n-- client-side verification --");
    let client = session.client();
    // 1. Update notices were issued (before the new code served anything).
    let notices = client.notices(0, 0).unwrap();
    for n in &notices {
        println!(
            "  notice: {} v{} digest {}… at log index {}",
            n.manifest.app_name,
            n.manifest.version,
            hex(&n.manifest.code_digest[..8]),
            n.log_index
        );
    }
    // 2. The append-only log on every domain contains both digests, and
    //    the histories are identical across domains.
    let reference = client.log_entries(0, 0).unwrap();
    for d in 1..3u32 {
        assert_eq!(client.log_entries(d, 0).unwrap(), reference);
    }
    println!("  digest histories identical across all 3 domains ✅");
    // 3. The post-update audit is clean. Each domain answers with a single
    //    BatchAudit round-trip: attestation + the new checkpoint + a
    //    consistency proof linking it to the pre-update checkpoint this
    //    client already verified (nothing below that prefix is re-checked).
    let report = client.audit(Some(&v2_digest));
    println!("  post-update audit clean: {} ✅", report.is_clean());
    assert!(report.is_clean());
    let stats = client.audit_stats();
    println!(
        "  audits served batched: {} domain-rounds ({} legacy fallbacks)",
        stats.batched_domains, stats.fallback_domains
    );

    println!("\nusers never had to trust the developer's word: every step is auditable.");
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
