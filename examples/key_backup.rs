//! The Figure 1 scenario: secret-key backup where the application
//! developer is not a central point of attack.
//!
//! ```sh
//! cargo run --release --example key_backup
//! ```

use distrust::apps::key_backup::{self, KeyBackupClient, RecoverStatus};
use distrust::core::{Deployment, TrustPolicy};
use distrust::crypto::drbg::HmacDrbg;
use distrust::crypto::gf256;

fn main() {
    println!("== Figure 1: secret-key backup with an untrusted developer ==\n");

    // n = 4 trust domains, recovery threshold t = 3.
    let deployment =
        Deployment::launch(key_backup::app_spec(4), b"key backup example").expect("launch");
    // Alice's session audits the deployment before her first request —
    // she never stores a share on an unverified domain.
    let mut user = deployment.client(b"alice");
    let mut alice = user.session(TrustPolicy::pinned(deployment.initial_app_digest));
    let backup = KeyBackupClient::new(3);

    // Alice backs up her messaging identity key: all 4 store requests are
    // pipelined in one round-trip.
    let secret = b"alice e2ee identity key material";
    let token = [0x5a; 32];
    let mut rng = HmacDrbg::new(b"alice entropy", b"");
    let commitment = backup
        .backup(&mut alice, 1001, &token, secret, &mut rng)
        .expect("backup");
    println!("alice split her key across 4 domains (any 3 recover)");

    // Recovery works for Alice — a Threshold(3) fan-out, so one dead
    // domain would not stop her.
    let recovered = backup
        .recover(&mut alice, 1001, &token, &commitment)
        .expect("recover");
    assert_eq!(recovered, secret);
    println!("alice recovered her key with her token ✅");

    // THE ATTACK (Figure 1, right): the developer is compromised. The
    // attacker fully controls trust domain 0 — including its stored share
    // — and holds the developer's credentials. It does NOT have Alice's
    // token or the other domains' state.
    println!("\n-- attacker compromises the developer (trust domain 0) --");

    // One share is information-theoretically useless: every candidate
    // secret is equally consistent with it.
    let shares = gf256::split(secret, 3, 4, &mut rng).expect("illustration split");
    let stolen = shares[0].clone();
    let mut candidates = std::collections::HashSet::new();
    for b in 0..=255u8 {
        let guess = gf256::combine(
            &[
                stolen.clone(),
                gf256::ByteShare {
                    x: 2,
                    data: vec![b; secret.len()],
                },
                gf256::ByteShare {
                    x: 3,
                    data: vec![0x11; secret.len()],
                },
            ],
            3,
        )
        .unwrap();
        candidates.insert(guess);
    }
    println!(
        "share stolen from domain 0 is consistent with {} distinct secrets (no information)",
        candidates.len()
    );

    // The honest domains' sandboxed guest code refuses recovery without
    // the token, then rate-limits.
    let mut attacker_client = deployment.client(b"attacker");
    let mut attacker = attacker_client.session(TrustPolicy::audited());
    let mut denied = 0;
    for attempt in 0..key_backup::MAX_ATTEMPTS {
        for d in 1..4u32 {
            let status = attacker_guess(&backup, &mut attacker, d, attempt as u8);
            if status == RecoverStatus::BadToken {
                denied += 1;
            }
        }
    }
    println!("attacker token guesses denied by guest auth: {denied}");
    for d in 1..4u32 {
        let status = attacker_guess(&backup, &mut attacker, d, 0x5a);
        assert_eq!(status, RecoverStatus::RateLimited);
    }
    println!("honest domains now rate-limit the attacker (guest-enforced) ✅");

    println!("\nconclusion: compromising the developer compromises at most");
    println!("one trust domain — below the threshold, Alice's key is safe. ✅");
}

fn attacker_guess(
    backup: &KeyBackupClient,
    session: &mut distrust::core::Session<'_>,
    domain: u32,
    guess_byte: u8,
) -> RecoverStatus {
    backup
        .recover_share(session, domain, 1001, &[guess_byte; 32])
        .expect("protocol")
}
