//! The paper's prototype application (§5), end to end: a BLS threshold
//! signing service across five trust domains (t = 3), with the signing
//! ladder executing inside each domain's sandbox.
//!
//! ```sh
//! cargo run --release --example threshold_signing
//! ```

use distrust::apps::threshold_signer::{self, ThresholdSigningClient};
use distrust::core::{Deployment, TrustPolicy};
use distrust::crypto::drbg::HmacDrbg;
use std::time::Instant;

fn main() {
    println!("== BLS threshold signing across 5 trust domains (t = 3) ==\n");

    // Dealer: generate shares + Feldman commitments, package the app.
    let mut rng = HmacDrbg::new(b"threshold example", b"dealer");
    let (spec, public) = threshold_signer::setup(3, 5, &mut rng).expect("setup");
    println!(
        "group public key: {}…",
        hex(&public.public_key.to_bytes()[..12])
    );

    let deployment = Deployment::launch(spec, b"threshold example seed").expect("launch");
    // The session's trust policy audits before the first sign request and
    // pins the published code digest — signing cannot happen against an
    // unverified deployment.
    let mut client = deployment.client(b"signing client");
    let mut session = client.session(TrustPolicy::pinned(deployment.initial_app_digest));

    // Collect partial signatures and aggregate: one pipelined fan-out,
    // returning as soon as t = 3 valid partials are in (the gating audit
    // runs inside this first call).
    let signer = ThresholdSigningClient::new(public.clone());
    let message = b"release v2.1.0 of the wallet firmware";

    let start = Instant::now();
    let signature = signer.sign(&mut session, message).expect("signing");
    let elapsed = start.elapsed();
    let report = session.last_audit().expect("audit ran");
    println!("gating audit clean: {}", report.is_clean());
    assert!(report.is_clean());

    println!(
        "\nsigned {:?}\n  signature: {}…\n  end-to-end latency (t=3 partials through TEE proxies): {:?}",
        String::from_utf8_lossy(message),
        hex(&signature.to_bytes()[..12]),
        elapsed
    );
    assert!(public.public_key.verify(message, &signature));
    println!("  verifies under the group public key ✅");

    // Show the t-of-n property: each partial alone is NOT a valid group
    // signature.
    let partial = signer
        .partial_from_domain(&mut session, 1, message)
        .expect("partial");
    assert!(!public.public_key.verify(message, &partial.value));
    println!("  a single domain's partial does not verify alone ✅");

    // Tamper check.
    assert!(!public
        .public_key
        .verify(b"release v9.9.9 (backdoored)", &signature));
    println!("  signature does not transfer to other messages ✅");
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
