//! Prio-style private analytics (§2's first deployed application class):
//! telemetry aggregation where no trust domain sees individual reports.
//!
//! ```sh
//! cargo run --release --example private_analytics
//! ```

use distrust::apps::analytics::{self, AnalyticsClient, METHOD_AGGREGATE};
use distrust::core::{Deployment, TrustPolicy};
use distrust::crypto::drbg::HmacDrbg;

fn main() {
    println!("== private telemetry: 2 trust domains, additive shares ==\n");

    // The classic Prio topology: exactly two non-colluding servers.
    let deployment =
        Deployment::launch(analytics::app_spec(2), b"analytics example").expect("launch");
    let dims = 3; // e.g. [crashed?, used_feature_x?, startup_ms]
    let analytics_client = AnalyticsClient::new(dims);

    // 100 simulated browsers submit telemetry through one trust-gated
    // session: the deployment is audited before the first report leaves
    // the client, and each submission fans its two shares out together.
    let mut client = deployment.client(b"browsers");
    let mut session = client.session(TrustPolicy::pinned(deployment.initial_app_digest));
    let mut rng = HmacDrbg::new(b"population", b"");
    let mut expected = [0u64; 3];
    for i in 0..100u64 {
        let report = [
            (i % 7 == 0) as u64, // ~14% crash rate
            (i % 3 == 0) as u64, // ~33% feature usage
            80 + (i * 13) % 40,  // startup times 80..120ms
        ];
        for (e, v) in expected.iter_mut().zip(&report) {
            *e += v;
        }
        analytics_client
            .submit(&mut session, &report, &mut rng)
            .expect("submit");
    }
    println!("100 clients submitted privately");

    // What each domain sees: a uniformly masked accumulator.
    let mut analyst_client = deployment.client(b"analyst");
    let mut analyst = analyst_client.session(TrustPolicy::audited());
    for d in 0..2u32 {
        let acc = analyst.call(d, METHOD_AGGREGATE, b"").expect("acc");
        let acc: Vec<u64> = acc
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        println!("domain {d} accumulator (masked): {acc:?}");
    }

    // The analyst combines both accumulators; the masks cancel.
    let (totals, count) = analytics_client.aggregate(&mut analyst).expect("aggregate");
    println!("\ncombined totals over {count} reports: {totals:?}");
    println!("expected:                             {expected:?}");
    assert_eq!(totals, expected.to_vec());
    println!(
        "\ncrash rate {}%, feature usage {}%, mean startup {:.1}ms ✅",
        totals[0],
        totals[1],
        totals[2] as f64 / count as f64
    );
}
