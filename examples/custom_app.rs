//! The full developer workflow: write application code in the sandbox
//! assembly language, assemble it, sign it, deploy it across trust
//! domains, audit, and call it — no Rust host functions required.
//!
//! This is the reproduction's analogue of the paper's "developer compiles
//! C++ to Wasm with Emscripten" pipeline (§5), at toy scale.
//!
//! ```sh
//! cargo run --release --example custom_app
//! ```

use distrust::core::abi::AppHost;
use distrust::core::{AppSpec, Deployment, FanoutCall, NoImports, TrustPolicy};
use distrust::sandbox::{assemble, Limits};

/// The application source a (non-Rust) developer would write and publish.
/// Method 1: checksum — single byte, sum of the payload mod 256.
/// Method 2: reverse — the payload, reversed.
const APP_SOURCE: &str = r#"
; checksum + reverse service, speaking the distrust framework ABI:
;   handle(method, inbox_addr, len) -> outbox length
; outbox lives at 20480.
memory 1 1

func handle params=3 locals=2 returns=1
  local.get 0
  const 1
  eq
  jnz @checksum
  local.get 0
  const 2
  eq
  jnz @reverse
  trap

@checksum:
  ; local 3 = i, local 4 = acc
  const 0
  local.set 3
  const 0
  local.set 4
@sum_loop:
  local.get 3
  local.get 2
  ge_u
  jnz @sum_done
  local.get 4
  local.get 1
  local.get 3
  add
  load8 0
  add
  local.set 4
  local.get 3
  const 1
  add
  local.set 3
  jmp @sum_loop
@sum_done:
  const 20480
  local.get 4
  const 0xff
  and
  store8 0
  const 1
  return

@reverse:
  ; outbox[i] = inbox[len - 1 - i]
  const 0
  local.set 3
@rev_loop:
  local.get 3
  local.get 2
  ge_u
  jnz @rev_done
  const 20480
  local.get 3
  add
  local.get 1
  local.get 2
  add
  const 1
  sub
  local.get 3
  sub
  load8 0
  store8 0
  local.get 3
  const 1
  add
  local.set 3
  jmp @rev_loop
@rev_done:
  local.get 2
  return
end

export handle handle
"#;

fn main() {
    println!("== custom app: assembly → signed release → audited deployment ==\n");

    // 1. "Compile" the published source. Anyone can re-run this and check
    //    the digest — that is the whole auditability story.
    let module = assemble(APP_SOURCE).expect("assembles");
    let digest = module.digest();
    println!(
        "assembled {} bytes of module, code digest {}…",
        distrust::wire::Encode::to_wire(&module).len(),
        hex(&digest[..8])
    );

    // 2. Deploy across three trust domains.
    let spec = AppSpec {
        name: "checksum-service".into(),
        module,
        notes: "v1: checksum + reverse".into(),
        hosts: (0..3)
            .map(|_| Box::new(NoImports) as Box<dyn AppHost>)
            .collect(),
        limits: Limits::default(),
    };
    let deployment = Deployment::launch(spec, b"custom app seed").expect("launch");
    let mut client = deployment.client(b"user");

    // 3. Open a session pinned to the digest of the source we just
    //    compiled ourselves: the audit runs before the first call and the
    //    attested digest must equal our local build, or nothing is served.
    let mut session = client.session(TrustPolicy::pinned(digest));

    // 4. Use it.
    let payload = b"hello distributed trust";
    let checksum = session.call(1, 1, payload).expect("checksum");
    let expected: u8 = payload.iter().fold(0u8, |a, b| a.wrapping_add(*b));
    println!(
        "checksum({:?}) = {} (expected {})",
        String::from_utf8_lossy(payload),
        checksum[0],
        expected
    );
    assert_eq!(checksum, vec![expected]);
    let report = session.last_audit().expect("audit ran before the call");
    assert!(report.is_clean());
    assert_eq!(deployment.initial_app_digest, report.app_digest.unwrap());
    println!("gating audit clean; attested digest matches locally compiled source ✅\n");

    let reversed = session.call(2, 2, payload).expect("reverse");
    println!("reverse  = {:?}", String::from_utf8_lossy(&reversed));
    assert_eq!(reversed, payload.iter().rev().copied().collect::<Vec<u8>>());

    // All domains agree, of course — one pipelined fan-out asks them all.
    let fanout = session
        .fanout(&FanoutCall::broadcast(1, payload.to_vec()))
        .expect("fanout");
    fanout.require().expect("all domains answered");
    for (d, resp) in fanout.successes() {
        assert_eq!(resp, &[expected], "domain {d}");
    }
    println!("\nall 3 domains serve identical, audited code ✅");
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
