//! Quickstart: bootstrap an auditable distributed-trust deployment in a
//! few lines, audit it, and call the application.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distrust::apps::analytics::{self, AnalyticsClient};
use distrust::core::Deployment;
use distrust::crypto::drbg::HmacDrbg;

fn main() {
    println!("== distrust quickstart ==\n");

    // 1. The developer bootstraps a 3-domain deployment of the private
    //    analytics app. Domain 0 is her own machine (no secure hardware);
    //    domains 1-2 run inside simulated TEEs from different vendors.
    let deployment =
        Deployment::launch(analytics::app_spec(3), b"quickstart seed").expect("launch");
    println!("deployed {} trust domains:", deployment.domain_count());
    for d in &deployment.descriptor.domains {
        match d.vendor {
            Some(v) => println!("  domain {}: TEE ({}) at {}", d.index, v.name(), d.addr),
            None => println!(
                "  domain {}: developer-run, unattested, at {}",
                d.index, d.addr
            ),
        }
    }

    // 2. A user audits before trusting: every TEE domain must attest the
    //    framework measurement and all domains must agree on the digest of
    //    the running application code.
    let mut client = deployment.client(b"quickstart user");
    let report = client.audit(Some(&deployment.initial_app_digest));
    println!("\naudit clean: {}", report.is_clean());
    for d in &report.domains {
        println!(
            "  domain {}: attested={} app_digest={}",
            d.index,
            d.attested,
            d.status
                .as_ref()
                .map(|s| hex(&s.app_digest[..8]))
                .unwrap_or_else(|| "?".into())
        );
    }
    assert!(report.is_clean());

    // 3. Use the application: submit a private report, aggregate.
    let analytics_client = AnalyticsClient::new(3);
    let mut rng = HmacDrbg::new(b"user entropy", b"");
    for values in [[1u64, 0, 10], [0, 1, 20], [1, 1, 30]] {
        analytics_client
            .submit(&mut client, &values, &mut rng)
            .expect("submit");
    }
    let (totals, count) = analytics_client.aggregate(&mut client).expect("aggregate");
    println!("\naggregated {count} private reports → totals {totals:?}");
    assert_eq!(totals, vec![2, 2, 60]);

    println!("\nquickstart complete: deployed, audited, used. ✅");
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
