//! Quickstart: bootstrap an auditable distributed-trust deployment in a
//! few lines and use it through a trust-gated session — the audit happens
//! before the first application call, *by construction*.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distrust::apps::analytics::{self, AnalyticsClient};
use distrust::core::{Deployment, TrustPolicy};
use distrust::crypto::drbg::HmacDrbg;

fn main() {
    println!("== distrust quickstart ==\n");

    // 1. The developer bootstraps a 3-domain deployment of the private
    //    analytics app. Domain 0 is her own machine (no secure hardware);
    //    domains 1-2 run inside simulated TEEs from different vendors.
    let deployment =
        Deployment::launch(analytics::app_spec(3), b"quickstart seed").expect("launch");
    println!("deployed {} trust domains:", deployment.domain_count());
    for d in &deployment.descriptor.domains {
        match d.vendor {
            Some(v) => println!("  domain {}: TEE ({}) at {}", d.index, v.name(), d.addr),
            None => println!(
                "  domain {}: developer-run, unattested, at {}",
                d.index, d.addr
            ),
        }
    }

    // 2. A user opens a trust-gated session. The policy pins the digest of
    //    the code the user (re)built from published source; the session
    //    will not let a single application byte through until every TEE
    //    domain attests the framework measurement, all domains agree on
    //    that digest, and the transparency-log checkpoints verify. No
    //    separate "remember to audit" step exists to forget.
    let mut client = deployment.client(b"quickstart user");
    let mut session = client.session(TrustPolicy::pinned(deployment.initial_app_digest));

    // 3. Use the application: submit private reports, aggregate. The
    //    first `submit` triggers the audit; each submission then fans its
    //    3 shares out in one round-trip (every domain's request in flight
    //    before any acknowledgement is read).
    let analytics_client = AnalyticsClient::new(3);
    let mut rng = HmacDrbg::new(b"user entropy", b"");
    for values in [[1u64, 0, 10], [0, 1, 20], [1, 1, 30]] {
        analytics_client
            .submit(&mut session, &values, &mut rng)
            .expect("submit");
    }
    let (totals, count) = analytics_client.aggregate(&mut session).expect("aggregate");
    println!("\naggregated {count} private reports → totals {totals:?}");
    assert_eq!(totals, vec![2, 2, 60]);

    // 4. The gating audit is inspectable after the fact.
    let report = session.last_audit().expect("audit ran before first call");
    println!("\ngating audit was clean: {}", report.is_clean());
    for d in &report.domains {
        println!(
            "  domain {}: attested={} app_digest={}",
            d.index,
            d.attested,
            d.status
                .as_ref()
                .map(|s| hex(&s.app_digest[..8]))
                .unwrap_or_else(|| "?".into())
        );
    }
    assert!(report.is_clean());
    assert_eq!(session.trusted_domains(), vec![0, 1, 2]);

    // What the audit actually verified: each domain's append-only log is
    // a set of Merkle shards under one top-level commitment, and every
    // shard head **rolls up into the signed checkpoint** — the domain
    // signs `(total_size, shard_heads_root)`, so one signature vouches
    // for every shard at once and a per-shard inclusion proof ties any
    // shard head back to it. This deployment uses the default single
    // shard, where the commitment IS the tree root (byte-compatible with
    // pre-shard auditors); `Deployment::launch_sharded(spec, seed, n)`
    // spreads apps across `n` shards for parallel appends, and the same
    // session code audits either layout transparently.

    println!("\nquickstart complete: deployed, audited-by-construction, used. ✅");
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
