//! Offline stand-in for the `bytes` crate: just enough of [`Buf`] and
//! [`BufMut`] for the canonical codec, over plain `Vec<u8>` / `&[u8]`.

/// Read-side cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes remaining to be consumed.
    fn remaining(&self) -> usize;
    /// A view of the unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side sink for contiguous bytes.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buf_over_slice() {
        let data = [1u8, 2, 3];
        let mut buf: &[u8] = &data;
        assert_eq!(buf.remaining(), 3);
        buf.advance(2);
        assert_eq!(buf.chunk(), &[3]);
    }

    #[test]
    fn bufmut_over_vec() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_slice(&[8, 9]);
        assert_eq!(out, vec![7, 8, 9]);
    }
}
