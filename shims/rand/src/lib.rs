//! Offline stand-in for `rand` 0.8: the trait surface the workspace uses
//! (`RngCore`, `CryptoRng`, `SeedableRng`) plus a deterministic
//! [`rngs::StdRng`]. The StdRng here is splitmix64 — statistically fine for
//! tests, NOT cryptographically secure; production randomness in this
//! workspace always comes from `distrust_crypto::drbg::HmacDrbg`.

/// Error type for fallible RNG operations (never produced by this shim's
/// own generators, but part of the `RngCore` contract).
#[derive(Debug)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// A source of random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (infallible for in-memory generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker: the generator is cryptographically secure.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}
impl<R: CryptoRng + ?Sized> CryptoRng for Box<R> {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Instantiates from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Instantiates from a `u64` (spread across the seed via splitmix64).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (test-quality randomness).
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            // Fold the seed into the 64-bit state.
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut b = [0u8; 8];
                b[..chunk.len()].copy_from_slice(chunk);
                state = state.rotate_left(17) ^ u64::from_le_bytes(b);
            }
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
