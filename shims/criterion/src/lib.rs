//! Offline stand-in for `criterion`: the subset of the API the workspace's
//! benches use — `Criterion`, benchmark groups, `Bencher::{iter,
//! iter_batched}`, `BenchmarkId`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark runs a warm-up pass
//! and then `sample_size` timed samples, and a mean/median line is printed
//! per benchmark. No statistical regression analysis, no plots.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// How an `iter_batched` input is sized (the shim treats all variants the
/// same: one setup per routine invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration, always.
    PerIteration,
}

/// Identifier of a benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id with only a parameter (the group name carries context).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function: name,
            parameter: None,
        }
    }
}

/// Times the closure under test.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Times `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass (not timed).
        black_box(routine());
        let mut durations = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            durations.push(start.elapsed());
        }
        report(&durations);
    }

    /// Times `routine` on a fresh input from `setup` each sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut durations = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            durations.push(start.elapsed());
        }
        report(&durations);
    }
}

fn report(durations: &[Duration]) {
    let mut sorted = durations.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "    samples={} mean={mean:?} median={median:?}",
        sorted.len()
    );
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// CLI-argument configuration is a no-op in the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("bench: {}", id.render());
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Prints the final summary (no-op in the shim).
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (ignored: the shim is sample-driven).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("bench: {}/{}", self.name, id.render());
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        println!("bench: {}/{}", self.name, id.render());
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b, input);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group function invoking each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u32;
        c.bench_function("counts", |b| b.iter(|| ran += 1));
        // one warm-up + two samples
        assert_eq!(ran, 3);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| b.iter(|| seen = x));
        group.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut b = Bencher { samples: 3 };
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 4]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 4);
    }
}
