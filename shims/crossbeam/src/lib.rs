//! Offline stand-in for `crossbeam`: the unbounded channel API used by the
//! in-process transport, backed by `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned when sending on a channel whose receiver is gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving on a channel whose senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails once all senders are gone
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner.try_recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(5u32).unwrap();
            assert_eq!(rx.recv(), Ok(5));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1u8).is_err());
        }
    }
}
