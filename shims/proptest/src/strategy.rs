//! Value-generation strategies: ranges, constants, tuples, maps, unions.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `map` to every generated value.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map }
    }

    /// Erases the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Wraps a non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            // All arithmetic is widened through i128/u128 so that signed
            // ranges, ranges spanning more than the target type's positive
            // half, and full-domain inclusive ranges (span 2^64) are all
            // handled without overflow. `% span` is exact when span == 2^64
            // and mildly biased otherwise — fine for test-case generation.
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let lo = self.start as i128;
                    let span = (self.end as i128 - lo) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo + offset as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo + offset as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy tests")
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let x = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let y = (1u8..=255).generate(&mut rng);
            assert!(y >= 1);
            let z = (0usize..1).generate(&mut rng);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn signed_and_full_domain_ranges() {
        let mut rng = rng();
        let mut saw_negative = false;
        for _ in 0..200 {
            let a = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&a));
            saw_negative |= a < 0;
            let b = (-100i8..100).generate(&mut rng);
            assert!((-100..100).contains(&b));
            let c = (i64::MIN..=i64::MAX).generate(&mut rng);
            let _ = c; // whole domain: any value is in range
            let d = (0u64..=u64::MAX).generate(&mut rng);
            let _ = d;
        }
        assert!(saw_negative, "signed range never produced a negative value");
    }

    #[test]
    fn map_and_just() {
        let mut rng = rng();
        let doubled = (1u32..5).prop_map(|x| x * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && doubled < 10);
        assert_eq!(Just(9u8).generate(&mut rng), 9);
    }

    #[test]
    fn union_picks_every_arm_eventually() {
        let mut rng = rng();
        let union = Union::new(vec![Just(0u8).boxed(), Just(1u8).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[union.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = rng();
        let (a, b) = (0u8..4, 10u8..14).generate(&mut rng);
        assert!(a < 4 && (10..14).contains(&b));
    }
}
