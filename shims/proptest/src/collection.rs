//! Collection strategies: length-ranged `Vec` generation.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of permissible collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        Self {
            lo: range.start,
            hi: range.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *range.start(),
            hi: *range.end() + 1,
        }
    }
}

/// Strategy generating vectors whose length falls in a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::from_name("collection lengths");
        let strategy = vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn nested_vectors_work() {
        let mut rng = TestRng::from_name("collection nested");
        let strategy = vec(vec(any::<u8>(), 0..4), 1..3);
        let v = strategy.generate(&mut rng);
        assert!(!v.is_empty());
    }

    #[test]
    fn exact_size_from_usize() {
        let mut rng = TestRng::from_name("collection exact");
        let v = vec(any::<u8>(), 3).generate(&mut rng);
        assert_eq!(v.len(), 3);
    }
}
