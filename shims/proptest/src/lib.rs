//! Offline stand-in for `proptest`: the macro and strategy surface this
//! workspace's tests use, with **deterministic** case generation.
//!
//! Every `proptest!`-declared test derives its RNG seed from the test
//! function's name, so a failing case reproduces on every run on every
//! machine — there is no persistence file and no shrinking. That trade-off
//! is deliberate: the tier-1 gate for this repository requires reproducible
//! runs (see `tests/determinism.rs`).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a `proptest!` test module needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_oneof, proptest};
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among the listed strategies (all must share a value
/// type). Real proptest supports weights; the shim does not.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares deterministic property tests.
///
/// Supports the common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u8..16, v in proptest::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 16);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_item! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_item! {
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_item {
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(&($config), stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                let __outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                __outcome
            });
        }
        $crate::__proptest_item! { @config ($config) $($rest)* }
    };
}
