//! Deterministic case runner: a splitmix64 RNG seeded from the test name.

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs did not satisfy a `prop_assume!`; draw another.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }

    /// Builds a rejection (input precondition unmet).
    pub fn reject(_reason: impl Into<String>) -> Self {
        Self::Reject
    }
}

/// Result of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic splitmix64 generator used for all case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a), typically the test name, so
    /// each test draws a distinct but fully reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: hash }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`. `bound` must be nonzero. Modulo
    /// bias is acceptable for test-case generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Runs `case` until `config.cases` cases pass, panicking on the first
/// failure. Rejected cases (via `prop_assume!`) are redrawn, with a cap to
/// catch assumptions that can never be satisfied.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // `PROPTEST_CASES` (same knob as real proptest) raises the case count
    // as a floor: CI's release-mode deep-fuzz step sets it to run every
    // property test harder than the debug-build default, without tests
    // configured *above* the floor losing coverage. Generation stays
    // deterministic — more cases just walks the same seeded stream
    // further.
    let target = match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        Some(floor) => config.cases.max(floor),
        None => config.cases,
    };
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = target.saturating_mul(16).max(1024);
    while passed < target {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest '{name}': {rejected} rejections with only {passed} passes — \
                     the prop_assume! precondition is unsatisfiable"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest '{name}' failed after {passed} passing cases: {message}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("case");
        let mut b = TestRng::from_name("case");
        let mut c = TestRng::from_name("other");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn run_cases_counts_passes() {
        let mut runs = 0u32;
        run_cases(&ProptestConfig::with_cases(10), "counting", |_| {
            runs += 1;
            Ok(())
        });
        assert_eq!(runs, 10);
    }

    #[test]
    fn rejections_redraw() {
        let mut draws = 0u32;
        run_cases(&ProptestConfig::with_cases(4), "rejecting", |rng| {
            draws += 1;
            if rng.next_u64() % 2 == 0 {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(draws >= 4);
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic() {
        run_cases(&ProptestConfig::with_cases(4), "failing", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
