//! `any::<T>()`: full-range generation for primitive types and arrays.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types that can be generated uniformly over their whole domain.
pub trait Arbitrary {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy generating any value of `T` (returned by [`any`]).
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_fill_every_slot() {
        let mut rng = TestRng::from_name("arbitrary arrays");
        let a: [u8; 96] = any().generate(&mut rng);
        assert!(a.iter().any(|&b| b != 0), "96 zero bytes is implausible");
    }

    #[test]
    fn ints_cover_high_bits() {
        let mut rng = TestRng::from_name("arbitrary ints");
        let mut high = false;
        for _ in 0..64 {
            high |= u64::arbitrary(&mut rng) > u64::from(u32::MAX);
        }
        assert!(high, "u64 generation never exceeded 32 bits");
    }
}
