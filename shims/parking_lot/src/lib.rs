//! Offline stand-in for `parking_lot`: a [`Mutex`] with the non-poisoning
//! `lock()` signature, backed by `std::sync::Mutex`. A panic while a guard
//! is held does not poison the lock for later users (matching parking_lot).

pub use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
