//! # distrust
//!
//! A Rust reproduction of **“Reflections on trusting distributed trust”**
//! (Dauterman, Fang, Crooks, Popa — HotNets ’22): a framework that lets a
//! single application developer bootstrap a distributed-trust deployment
//! that users can *audit*, built from two application-independent building
//! blocks — secure hardware and an append-only log.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`crypto`] — BLS12-381, BLS threshold signatures, Shamir/Feldman,
//!   GF(256) sharing, SHA-256, Schnorr (all from scratch).
//! * [`wire`] — deterministic codec, framing, transports.
//! * [`sandbox`] — the bytecode VM standing in for Wasm.
//! * [`tee`] — simulated heterogeneous secure hardware.
//! * [`log`] — hash-chain + Merkle append-only logs, auditing.
//! * [`core`] — the framework: trust domains, clients, deployments.
//! * [`gossip`] — checkpoint gossip, transferable evidence, witness
//!   cosigning.
//! * [`apps`] — threshold signing, key backup, private analytics.
//!
//! ## Quickstart
//!
//! ```no_run
//! use distrust::apps::threshold_signer;
//! use distrust::core::{Deployment, TrustPolicy};
//! use distrust::crypto::drbg::HmacDrbg;
//!
//! let mut rng = HmacDrbg::new(b"demo seed", b"");
//! let (spec, public) = threshold_signer::setup(3, 5, &mut rng).unwrap();
//! let deployment = Deployment::launch(spec, b"demo seed").unwrap();
//! let mut client = deployment.client(b"client seed");
//!
//! // Audit before trusting — by construction: the session's trust policy
//! // runs the audit before the first application call and refuses
//! // domains that fail it (every TEE domain must attest the framework
//! // and all domains must agree on the pinned code digest).
//! let mut session = client.session(TrustPolicy::pinned(deployment.initial_app_digest));
//!
//! // Jointly sign with t-of-n trust domains: one pipelined fan-out,
//! // returning as soon as t valid partial signatures arrive.
//! let signer = threshold_signer::ThresholdSigningClient::new(public);
//! let sig = signer.sign(&mut session, b"hello distributed trust").unwrap();
//! assert!(session.last_audit().unwrap().is_clean());
//! ```

pub use distrust_apps as apps;
pub use distrust_core as core;
pub use distrust_crypto as crypto;
pub use distrust_gossip as gossip;
pub use distrust_log as log;
pub use distrust_sandbox as sandbox;
pub use distrust_tee as tee;
pub use distrust_wire as wire;
