//! Fan-out deadline budgets: a hung-but-connected domain must time out
//! into [`DomainOutcome::Failed`] instead of stalling an `All` quorum
//! forever (ROADMAP, PR 4 "Remaining").
//!
//! The hung domain here is the nastiest kind: it *accepts* the TCP
//! connection and *reads* nothing-visible-to-the-client — the request
//! vanishes into its socket buffer and no response ever comes. Connect
//! timeouts, error frames, and dead sockets all surface on their own;
//! only a silent, live connection needs the wall-clock budget.

use distrust::core::abi::{AppHost, NoImports, HANDLE_EXPORT, OUTBOX_ADDR};
use distrust::core::client::DeploymentClient;
use distrust::core::session::{DomainOutcome, FanoutCall, QuorumPolicy, TrustPolicy};
use distrust::core::{AppSpec, Deployment};
use distrust::crypto::drbg::HmacDrbg;
use distrust::sandbox::{FuncBuilder, Limits, Module, ModuleBuilder};
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

/// Method 1 echoes `input[0] + 1`.
fn echo_module() -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    let mut f = FuncBuilder::new(3, 0, 1);
    f.constant(OUTBOX_ADDR)
        .lget(1)
        .load8(0)
        .constant(1)
        .add()
        .store8(0)
        .constant(1)
        .ret();
    let idx = mb.function(f.build().unwrap());
    mb.export(HANDLE_EXPORT, idx);
    mb.build()
}

/// A listener that accepts every connection and never writes a byte back
/// — the sockets are parked alive for the life of the test process.
fn hung_listener() -> SocketAddr {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::Builder::new()
        .name("hung-domain".into())
        .spawn(move || {
            let mut parked = Vec::new();
            for conn in listener.incoming().flatten() {
                parked.push(conn);
            }
        })
        .expect("spawn");
    addr
}

/// A real 3-domain deployment whose domain 1 is swapped for a hung
/// listener in the client's descriptor — connected, silent, alive.
fn deployment_with_hung_domain() -> (Deployment, DeploymentClient) {
    let spec = AppSpec {
        name: "echo".into(),
        module: echo_module(),
        notes: "v1".into(),
        hosts: (0..3)
            .map(|_| Box::new(NoImports) as Box<dyn AppHost>)
            .collect(),
        limits: Limits::default(),
    };
    let deployment = Deployment::launch(spec, b"fanout deadline").expect("launch");
    let mut descriptor = deployment.descriptor.clone();
    descriptor.domains[1].addr = hung_listener();
    let client = DeploymentClient::new(
        descriptor,
        Box::new(HmacDrbg::new(b"fanout deadline", b"client-rng")),
    );
    (deployment, client)
}

#[test]
fn hung_domain_times_out_instead_of_stalling_all_quorum() {
    let (deployment, mut client) = deployment_with_hung_domain();
    // An open policy: the trust gate must not touch the hung domain
    // before the fan-out does (the gating audit would hang on it too —
    // it shares the same budget machinery only through fanout here).
    let mut session = client.session(TrustPolicy::open());

    let budget = Duration::from_millis(400);
    let started = Instant::now();
    let report = session
        .fanout(&FanoutCall::broadcast(1, vec![5]).deadline(budget))
        .expect("fanout runs");
    let elapsed = started.elapsed();

    // The healthy domains answered; the hung one failed on the deadline.
    assert!(matches!(&report.outcomes[0], DomainOutcome::Ok(p) if p == &vec![6u8]));
    assert!(matches!(&report.outcomes[2], DomainOutcome::Ok(p) if p == &vec![6u8]));
    match &report.outcomes[1] {
        DomainOutcome::Failed(why) => {
            assert!(
                why.contains("deadline"),
                "failure must name the deadline: {why}"
            )
        }
        other => panic!("hung domain must fail on deadline, got {other:?}"),
    }
    assert!(!report.satisfied, "All quorum cannot be satisfied");
    assert!(report.require().is_err());
    // The collection respected the budget (generous upper bound for slow
    // CI boxes) instead of blocking forever.
    assert!(
        elapsed < budget + Duration::from_secs(5),
        "fanout took {elapsed:?} against a {budget:?} budget"
    );

    // The session survives: a second deadline-bounded round still serves
    // the healthy domains (the hung connection owes an abandoned response
    // and simply times out again).
    let report = session
        .fanout(&FanoutCall::broadcast(1, vec![7]).deadline(budget))
        .expect("fanout runs again");
    assert!(matches!(&report.outcomes[0], DomainOutcome::Ok(p) if p == &vec![8u8]));
    assert!(matches!(&report.outcomes[1], DomainOutcome::Failed(_)));
    assert!(matches!(&report.outcomes[2], DomainOutcome::Ok(p) if p == &vec![8u8]));

    drop(session);
    drop(deployment);
}

#[test]
fn threshold_quorum_races_past_hung_domain_within_deadline() {
    let (deployment, mut client) = deployment_with_hung_domain();
    let mut session = client.session(TrustPolicy::open());

    let report = session
        .fanout(
            &FanoutCall::broadcast(1, vec![10])
                .quorum(QuorumPolicy::Threshold(2))
                .deadline(Duration::from_secs(10)),
        )
        .expect("fanout runs");
    // Two healthy answers satisfy the quorum long before the deadline;
    // the hung domain's response is abandoned, not failed.
    assert!(report.satisfied);
    assert_eq!(report.ok_count(), 2);
    assert_eq!(report.abandoned(), vec![1]);

    drop(session);
    drop(deployment);
}

#[test]
fn deadline_generous_enough_changes_nothing() {
    // With no hung domain and a roomy budget, a deadline-bounded fan-out
    // behaves exactly like an unbounded one.
    let spec = AppSpec {
        name: "echo".into(),
        module: echo_module(),
        notes: "v1".into(),
        hosts: (0..3)
            .map(|_| Box::new(NoImports) as Box<dyn AppHost>)
            .collect(),
        limits: Limits::default(),
    };
    let deployment = Deployment::launch(spec, b"healthy deadline").expect("launch");
    let mut client = deployment.client(b"client");
    let mut session = client.session(TrustPolicy::audited());
    let report = session
        .fanout(&FanoutCall::broadcast(1, vec![1]).deadline(Duration::from_secs(30)))
        .expect("fanout runs");
    assert!(report.satisfied, "{report:?}");
    assert_eq!(report.ok_count(), 3);
}
