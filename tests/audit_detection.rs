//! Detection tests: a misbehaving trust domain is caught by the client's
//! audit, and equivocation yields a transferable cryptographic proof —
//! the paper's core guarantee ("the user will be able to detect whenever
//! the system does not execute the expected code … and will obtain a
//! publicly verifiable proof of misbehavior").

use distrust::core::protocol::{Request, Response};
use distrust::core::server::DirectHost;
use distrust::core::{DeploymentClient, DeploymentDescriptor, DomainInfo};
use distrust::crypto::drbg::HmacDrbg;
use distrust::crypto::schnorr::SigningKey;
use distrust::log::auditor::Misbehavior;
use distrust::log::checkpoint::{log_id, CheckpointBody, SignedCheckpoint};
use distrust::tee::host::EnclaveService;
use distrust::tee::vendor::VendorRoots;
use distrust::wire::{Decode, Encode};

/// A malicious trust domain: answers status/attest like an honest
/// unattested domain, but signs a DIFFERENT log head on every checkpoint
/// request — classic equivocation (showing different histories to
/// different clients).
struct EquivocatingDomain {
    key: SigningKey,
    log_id: [u8; 32],
    flip: bool,
}

impl EnclaveService for EquivocatingDomain {
    fn handle(&mut self, request: Vec<u8>) -> Vec<u8> {
        let response = match Request::from_wire(&request) {
            Ok(Request::Attest { nonce }) => {
                let status = distrust::core::DomainStatus {
                    domain_index: 0,
                    app_digest: [1; 32],
                    app_version: 1,
                    log_size: 1,
                    log_head: [0xaa; 32],
                    framework_measurement: [2; 32],
                };
                let _ = nonce;
                Response::Unattested(status)
            }
            Ok(Request::GetCheckpoint) => {
                self.flip = !self.flip;
                let head = if self.flip { [0xaa; 32] } else { [0xbb; 32] };
                Response::Checkpoint(SignedCheckpoint::sign(
                    CheckpointBody {
                        log_id: self.log_id,
                        size: 1,
                        head,
                        logical_time: 1,
                    },
                    &self.key,
                ))
            }
            Ok(_) => Response::Error("not implemented".into()),
            Err(e) => Response::Error(format!("{e}")),
        };
        response.to_wire()
    }
}

#[test]
fn equivocating_domain_yields_transferable_proof() {
    let key = SigningKey::derive(b"equivocator", b"checkpoint");
    let lid = log_id(b"evil-deploy", 0);
    let mut host = DirectHost::spawn(EquivocatingDomain {
        key,
        log_id: lid,
        flip: false,
    })
    .expect("spawn");

    let descriptor = DeploymentDescriptor {
        app_name: "any".into(),
        developer_key: SigningKey::derive(b"dev", b"k").verifying_key(),
        vendor_roots: VendorRoots::new(vec![]),
        domains: vec![DomainInfo {
            index: 0,
            addr: host.addr(),
            vendor: None,
            checkpoint_key: key.verifying_key(),
        }],
    };
    let mut client = DeploymentClient::new(descriptor, Box::new(HmacDrbg::new(b"auditor", b"")));

    // First audit: checkpoint says head 0xaa — fine so far (matches the
    // status the fake domain reports).
    let first = client.audit(None);
    assert!(
        first.misbehavior.is_empty(),
        "first view is internally consistent: {first:?}"
    );

    // Second audit: same size, different head. The auditor holds both
    // signed checkpoints → equivocation proof.
    let second = client.audit(None);
    let equivocation = second
        .misbehavior
        .iter()
        .find_map(|m| match m {
            Misbehavior::Equivocation { proof, .. } => Some(proof.clone()),
            _ => None,
        })
        .expect("equivocation detected");

    // This mock predates BatchAudit: both audits must have fallen back to
    // the legacy per-step path — detection works identically there.
    assert_eq!(client.audit_stats().fallback_domains, 2);
    assert_eq!(client.audit_stats().batched_domains, 0);

    // The proof is PUBLICLY verifiable: serialize, hand to a third party
    // knowing only the domain's public key, verify.
    let wire = equivocation.to_wire();
    let transported =
        distrust::log::checkpoint::EquivocationProof::from_wire(&wire).expect("decodes");
    assert!(transported.verify(&key.verifying_key()));
    // And it does not frame an innocent domain.
    let innocent = SigningKey::derive(b"innocent", b"k");
    assert!(!transported.verify(&innocent.verifying_key()));

    host.shutdown();
}

/// A domain that rewrites history: reports a log that is not an extension
/// of what it previously showed.
struct RewritingDomain {
    key: SigningKey,
    log_id: [u8; 32],
    phase: u64,
}

impl EnclaveService for RewritingDomain {
    fn handle(&mut self, request: Vec<u8>) -> Vec<u8> {
        let response = match Request::from_wire(&request) {
            Ok(Request::Attest { .. }) => {
                self.phase += 1;
                // Two different "histories": sizes grow but heads are
                // unrelated and no consistency proof will be offered.
                let (size, head) = if self.phase == 1 {
                    (1u64, [0x10u8; 32])
                } else {
                    (2u64, [0x20u8; 32])
                };
                Response::Unattested(distrust::core::DomainStatus {
                    domain_index: 0,
                    app_digest: [1; 32],
                    app_version: 1,
                    log_size: size,
                    log_head: head,
                    framework_measurement: [2; 32],
                })
            }
            Ok(Request::GetCheckpoint) => {
                let (size, head) = if self.phase <= 1 {
                    (1u64, [0x10u8; 32])
                } else {
                    (2u64, [0x20u8; 32])
                };
                Response::Checkpoint(SignedCheckpoint::sign(
                    CheckpointBody {
                        log_id: self.log_id,
                        size,
                        head,
                        logical_time: self.phase,
                    },
                    &self.key,
                ))
            }
            Ok(Request::GetConsistency { .. }) => Response::Error("no proof available".into()),
            Ok(_) => Response::Error("not implemented".into()),
            Err(e) => Response::Error(format!("{e}")),
        };
        response.to_wire()
    }
}

#[test]
fn history_rewrite_without_proof_is_flagged() {
    let key = SigningKey::derive(b"rewriter", b"checkpoint");
    let lid = log_id(b"rewrite-deploy", 0);
    let mut host = DirectHost::spawn(RewritingDomain {
        key,
        log_id: lid,
        phase: 0,
    })
    .expect("spawn");

    let descriptor = DeploymentDescriptor {
        app_name: "any".into(),
        developer_key: SigningKey::derive(b"dev", b"k").verifying_key(),
        vendor_roots: VendorRoots::new(vec![]),
        domains: vec![DomainInfo {
            index: 0,
            addr: host.addr(),
            vendor: None,
            checkpoint_key: key.verifying_key(),
        }],
    };
    let mut client = DeploymentClient::new(descriptor, Box::new(HmacDrbg::new(b"auditor", b"")));

    let first = client.audit(None);
    assert!(first.misbehavior.is_empty(), "{first:?}");
    let second = client.audit(None);
    assert!(
        second
            .misbehavior
            .iter()
            .any(|m| matches!(m, Misbehavior::InconsistentGrowth { .. })),
        "rewrite must be flagged: {second:?}"
    );

    host.shutdown();
}

/// An honest pre-BatchAudit server: answers the per-step protocol
/// correctly and errors on everything newer, counting how often it gets
/// probed with the batched request.
struct LegacyOnlyDomain {
    key: SigningKey,
    log_id: [u8; 32],
    batch_probes: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl EnclaveService for LegacyOnlyDomain {
    fn handle(&mut self, request: Vec<u8>) -> Vec<u8> {
        use distrust::core::protocol::Request::*;
        let head = [0x77; 32];
        let response = match Request::from_wire(&request) {
            Ok(BatchAudit { .. }) => {
                self.batch_probes
                    .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Response::Error("unknown request".into())
            }
            Ok(Attest { .. }) => Response::Unattested(distrust::core::DomainStatus {
                domain_index: 0,
                app_digest: [1; 32],
                app_version: 1,
                log_size: 1,
                log_head: head,
                framework_measurement: [2; 32],
            }),
            Ok(GetCheckpoint) => Response::Checkpoint(SignedCheckpoint::sign(
                CheckpointBody {
                    log_id: self.log_id,
                    size: 1,
                    head,
                    logical_time: 1,
                },
                &self.key,
            )),
            Ok(_) => Response::Error("not implemented".into()),
            Err(e) => Response::Error(format!("{e}")),
        };
        response.to_wire()
    }
}

#[test]
fn legacy_domain_is_probed_once_then_served_per_step() {
    let key = SigningKey::derive(b"legacy-only", b"checkpoint");
    let lid = log_id(b"legacy-deploy", 0);
    let probes = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut host = DirectHost::spawn(LegacyOnlyDomain {
        key,
        log_id: lid,
        batch_probes: std::sync::Arc::clone(&probes),
    })
    .expect("spawn");

    let descriptor = DeploymentDescriptor {
        app_name: "any".into(),
        developer_key: SigningKey::derive(b"dev", b"k").verifying_key(),
        vendor_roots: VendorRoots::new(vec![]),
        domains: vec![DomainInfo {
            index: 0,
            addr: host.addr(),
            vendor: None,
            checkpoint_key: key.verifying_key(),
        }],
    };
    let mut client = DeploymentClient::new(descriptor, Box::new(HmacDrbg::new(b"auditor", b"")));

    // Three audit rounds against an honest legacy server: all succeed via
    // the per-step fallback...
    for _ in 0..3 {
        let report = client.audit(None);
        assert!(
            report.domains[0].failure.is_none() && !report.domains[0].batched,
            "{report:?}"
        );
    }
    assert_eq!(client.audit_stats().fallback_domains, 3);
    // ...but the batched probe was paid exactly once; later rounds on the
    // same connection skip it.
    assert_eq!(probes.load(std::sync::atomic::Ordering::SeqCst), 1);

    host.shutdown();
}

#[test]
fn checkpoint_signed_by_wrong_key_is_flagged() {
    let real_key = SigningKey::derive(b"hijacked", b"real");
    let attacker_key = SigningKey::derive(b"hijacked", b"attacker");
    let lid = log_id(b"hijack-deploy", 0);
    // The domain signs with the attacker's key (e.g. after host takeover
    // of an unattested domain).
    let mut host = DirectHost::spawn(EquivocatingDomain {
        key: attacker_key,
        log_id: lid,
        flip: false,
    })
    .expect("spawn");

    let descriptor = DeploymentDescriptor {
        app_name: "any".into(),
        developer_key: SigningKey::derive(b"dev", b"k").verifying_key(),
        vendor_roots: VendorRoots::new(vec![]),
        domains: vec![DomainInfo {
            index: 0,
            addr: host.addr(),
            vendor: None,
            // Client pins the REAL key.
            checkpoint_key: real_key.verifying_key(),
        }],
    };
    let mut client = DeploymentClient::new(descriptor, Box::new(HmacDrbg::new(b"auditor", b"")));
    let report = client.audit(None);
    assert!(
        report
            .misbehavior
            .iter()
            .any(|m| matches!(m, Misbehavior::BadSignature { .. })),
        "{report:?}"
    );
    host.shutdown();
}
