//! Split-view detection through client gossip.
//!
//! The strongest attack an equivocating domain can mount is to keep every
//! individual client's view internally consistent while showing different
//! clients different histories. Detection then requires clients (or
//! third-party auditors) to compare notes — the same gossip mechanism
//! Certificate Transparency relies on, which the paper inherits by
//! building on CT-style logs.

use distrust::core::protocol::{Request, Response};
use distrust::core::server::DirectHost;
use distrust::core::{DeploymentClient, DeploymentDescriptor, DomainInfo};
use distrust::crypto::drbg::HmacDrbg;
use distrust::crypto::schnorr::SigningKey;
use distrust::log::auditor::Misbehavior;
use distrust::log::checkpoint::{log_id, CheckpointBody, SignedCheckpoint};
use distrust::tee::host::EnclaveService;
use distrust::tee::vendor::VendorRoots;
use distrust::wire::{Decode, Encode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A domain that serves a *consistent* fork per connection: even-numbered
/// connections see history A, odd ones history B. Each client's repeated
/// audits are self-consistent — only gossip can expose the fork.
struct SplitViewDomain {
    key: SigningKey,
    log_id: [u8; 32],
    my_branch: u64,
}

impl SplitViewDomain {
    fn head(&self) -> [u8; 32] {
        if self.my_branch.is_multiple_of(2) {
            [0xaa; 32]
        } else {
            [0xbb; 32]
        }
    }
}

impl EnclaveService for SplitViewDomain {
    fn handle(&mut self, request: Vec<u8>) -> Vec<u8> {
        let response = match Request::from_wire(&request) {
            Ok(Request::Attest { .. }) => Response::Unattested(distrust::core::DomainStatus {
                domain_index: 0,
                app_digest: [1; 32],
                app_version: 1,
                log_size: 1,
                log_head: self.head(),
                framework_measurement: [2; 32],
            }),
            Ok(Request::GetCheckpoint) => Response::Checkpoint(SignedCheckpoint::sign(
                CheckpointBody {
                    log_id: self.log_id,
                    size: 1,
                    head: self.head(),
                    logical_time: 1,
                },
                &self.key,
            )),
            Ok(_) => Response::Error("not implemented".into()),
            Err(e) => Response::Error(format!("{e}")),
        };
        response.to_wire()
    }
}

/// Wrapper that picks a branch per *served connection* by handing each new
/// service clone a branch id. DirectHost uses a single service behind a
/// mutex, so instead we branch on a shared request counter every audit
/// round (2 requests per audit: attest + checkpoint).
struct BranchingService {
    key: SigningKey,
    log_id: [u8; 32],
    rounds: Arc<AtomicU64>,
}

impl EnclaveService for BranchingService {
    fn handle(&mut self, request: Vec<u8>) -> Vec<u8> {
        // Each audit makes exactly two requests; allocate a branch per
        // audit round so a single client always sees one branch.
        let round = self.rounds.fetch_add(1, Ordering::SeqCst) / 2;
        let mut inner = SplitViewDomain {
            key: self.key,
            log_id: self.log_id,
            my_branch: round,
        };
        inner.handle(request)
    }
}

#[test]
fn gossip_exposes_split_view() {
    let key = SigningKey::derive(b"split view", b"checkpoint");
    let lid = log_id(b"split-deploy", 0);
    let mut host = DirectHost::spawn(BranchingService {
        key,
        log_id: lid,
        rounds: Arc::new(AtomicU64::new(0)),
    })
    .expect("spawn");

    let descriptor = DeploymentDescriptor {
        app_name: "any".into(),
        developer_key: SigningKey::derive(b"dev", b"k").verifying_key(),
        vendor_roots: VendorRoots::new(vec![]),
        domains: vec![DomainInfo {
            index: 0,
            addr: host.addr(),
            vendor: None,
            checkpoint_key: key.verifying_key(),
        }],
    };

    // Client A audits: sees branch 0 ([0xaa]) — internally consistent.
    let mut client_a = DeploymentClient::new(
        descriptor.clone(),
        Box::new(HmacDrbg::new(b"client a", b"")),
    );
    let report_a = client_a.audit(None);
    assert!(
        report_a.misbehavior.is_empty(),
        "client A alone sees a consistent view: {report_a:?}"
    );

    // Client B audits: sees branch 1 ([0xbb]) — also internally consistent.
    let mut client_b = DeploymentClient::new(
        descriptor.clone(),
        Box::new(HmacDrbg::new(b"client b", b"")),
    );
    let report_b = client_b.audit(None);
    assert!(
        report_b.misbehavior.is_empty(),
        "client B alone sees a consistent view: {report_b:?}"
    );

    // The two views must actually differ for this test to mean anything.
    let head_a = client_a.gossip_payload()[0].1.body.head;
    let head_b = client_b.gossip_payload()[0].1.body.head;
    assert_ne!(head_a, head_b, "domain forked its history");

    // Gossip: B relays its checkpoints to A → equivocation proof.
    let evidence = client_a.ingest_gossip(&client_b.gossip_payload());
    let proof = evidence
        .iter()
        .find_map(|m| match m {
            Misbehavior::Equivocation { proof, .. } => Some(proof.clone()),
            _ => None,
        })
        .expect("split view detected through gossip");
    assert!(proof.verify(&key.verifying_key()));

    // The proof is transferable: any third party verifies it from bytes.
    let wire = proof.to_wire();
    let transported =
        distrust::log::checkpoint::EquivocationProof::from_wire(&wire).expect("decodes");
    assert!(transported.verify(&key.verifying_key()));

    host.shutdown();
}

#[test]
fn gossip_between_honest_clients_is_quiet() {
    // Against an honest deployment, gossip produces no evidence.
    let deployment = distrust::core::Deployment::launch(
        distrust::apps::analytics::app_spec(3),
        b"honest gossip seed",
    )
    .expect("launch");
    let mut a = deployment.client(b"client a");
    let mut b = deployment.client(b"client b");
    assert!(a.audit(None).is_clean());
    assert!(b.audit(None).is_clean());
    assert!(a.ingest_gossip(&b.gossip_payload()).is_empty());
    assert!(b.ingest_gossip(&a.gossip_payload()).is_empty());
}
