//! Split-view detection through client gossip, plus batched-path
//! regressions.
//!
//! The strongest attack an equivocating domain can mount is to keep every
//! individual client's view internally consistent while showing different
//! clients different histories. Detection then requires clients (or
//! third-party auditors) to compare notes — the same gossip mechanism
//! Certificate Transparency relies on, which the paper inherits by
//! building on CT-style logs.
//!
//! Since the batched audit landed, misbehavior can also hide *inside* a
//! proof bundle (two conflicting checkpoints in one response) or behind a
//! stale server-side bundle cache; both must be flagged exactly as the
//! per-step path would flag them.

use distrust::core::protocol::{AuditBundle, BundleAttestation, Request, Response};
use distrust::core::server::DirectHost;
use distrust::core::{DeploymentClient, DeploymentDescriptor, DomainInfo, DomainStatus};
use distrust::crypto::drbg::HmacDrbg;
use distrust::crypto::schnorr::SigningKey;
use distrust::log::auditor::Misbehavior;
use distrust::log::batch::{CheckpointBundle, ProofBundle};
use distrust::log::checkpoint::{log_id, CheckpointBody, SignedCheckpoint};
use distrust::log::merkle::MerkleLog;
use distrust::tee::host::EnclaveService;
use distrust::tee::vendor::VendorRoots;
use distrust::wire::{Decode, Encode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn descriptor_for(host: &DirectHost, key: &SigningKey) -> DeploymentDescriptor {
    DeploymentDescriptor {
        app_name: "any".into(),
        developer_key: SigningKey::derive(b"dev", b"k").verifying_key(),
        vendor_roots: VendorRoots::new(vec![]),
        domains: vec![DomainInfo {
            index: 0,
            addr: host.addr(),
            vendor: None,
            checkpoint_key: key.verifying_key(),
        }],
    }
}

fn client(descriptor: &DeploymentDescriptor, seed: &[u8]) -> DeploymentClient {
    DeploymentClient::new(descriptor.clone(), Box::new(HmacDrbg::new(seed, b"")))
}

fn status_with(head: [u8; 32], size: u64) -> DomainStatus {
    DomainStatus {
        domain_index: 0,
        app_digest: [1; 32],
        app_version: 1,
        log_size: size,
        log_head: head,
        framework_measurement: [2; 32],
    }
}

/// A domain that serves a *consistent* fork per audit round: even rounds
/// see history A, odd rounds history B, over the batched single-request
/// audit. Each client's one audit is self-consistent — only gossip can
/// expose the fork.
struct BranchingService {
    key: SigningKey,
    log_id: [u8; 32],
    rounds: Arc<AtomicU64>,
}

impl BranchingService {
    fn head_for(branch: u64) -> [u8; 32] {
        if branch.is_multiple_of(2) {
            [0xaa; 32]
        } else {
            [0xbb; 32]
        }
    }
}

impl EnclaveService for BranchingService {
    fn handle(&mut self, request: Vec<u8>) -> Vec<u8> {
        let response = match Request::from_wire(&request) {
            Ok(Request::BatchAudit { request_id, .. }) => {
                // One batched request per audit round: allocate the branch
                // here, so a single client always sees one branch.
                let branch = self.rounds.fetch_add(1, Ordering::SeqCst);
                let head = Self::head_for(branch);
                let cp = SignedCheckpoint::sign(
                    CheckpointBody {
                        log_id: self.log_id,
                        size: 1,
                        head,
                        logical_time: 1,
                    },
                    &self.key,
                );
                Response::AuditBundle(Box::new(AuditBundle {
                    request_id,
                    attestation: BundleAttestation::Unattested(status_with(head, 1)),
                    bundle: CheckpointBundle {
                        checkpoints: vec![cp],
                        proof: ProofBundle::default(),
                    },
                }))
            }
            Ok(_) => Response::Error("not implemented".into()),
            Err(e) => Response::Error(format!("{e}")),
        };
        response.to_wire()
    }
}

#[test]
fn gossip_exposes_split_view() {
    let key = SigningKey::derive(b"split view", b"checkpoint");
    let lid = log_id(b"split-deploy", 0);
    let mut host = DirectHost::spawn(BranchingService {
        key,
        log_id: lid,
        rounds: Arc::new(AtomicU64::new(0)),
    })
    .expect("spawn");
    let descriptor = descriptor_for(&host, &key);

    // Client A audits: sees branch 0 ([0xaa]) — internally consistent.
    let mut client_a = client(&descriptor, b"client a");
    let report_a = client_a.audit(None);
    assert!(
        report_a.misbehavior.is_empty(),
        "client A alone sees a consistent view: {report_a:?}"
    );
    assert!(
        report_a.domains[0].batched,
        "this domain speaks the batched audit"
    );

    // Client B audits: sees branch 1 ([0xbb]) — also internally consistent.
    let mut client_b = client(&descriptor, b"client b");
    let report_b = client_b.audit(None);
    assert!(
        report_b.misbehavior.is_empty(),
        "client B alone sees a consistent view: {report_b:?}"
    );

    // The two views must actually differ for this test to mean anything.
    let head_a = client_a.gossip_payload()[0].1.body.head;
    let head_b = client_b.gossip_payload()[0].1.body.head;
    assert_ne!(head_a, head_b, "domain forked its history");

    // Gossip: B relays its checkpoints to A → equivocation proof.
    let evidence = client_a.ingest_gossip(&client_b.gossip_payload());
    let proof = evidence
        .iter()
        .find_map(|m| match m {
            Misbehavior::Equivocation { proof, .. } => Some(proof.clone()),
            _ => None,
        })
        .expect("split view detected through gossip");
    assert!(proof.verify(&key.verifying_key()));

    // The proof is transferable: any third party verifies it from bytes.
    let wire = proof.to_wire();
    let transported =
        distrust::log::checkpoint::EquivocationProof::from_wire(&wire).expect("decodes");
    assert!(transported.verify(&key.verifying_key()));

    host.shutdown();
}

/// A domain that equivocates *inside* one proof bundle: two correctly
/// signed checkpoints for the same size with different heads in a single
/// `AuditBundle`.
struct EquivocatingBundleDomain {
    key: SigningKey,
    log_id: [u8; 32],
}

impl EnclaveService for EquivocatingBundleDomain {
    fn handle(&mut self, request: Vec<u8>) -> Vec<u8> {
        let response = match Request::from_wire(&request) {
            Ok(Request::BatchAudit { request_id, .. }) => {
                let sign = |head: [u8; 32]| {
                    SignedCheckpoint::sign(
                        CheckpointBody {
                            log_id: self.log_id,
                            size: 1,
                            head,
                            logical_time: 1,
                        },
                        &self.key,
                    )
                };
                Response::AuditBundle(Box::new(AuditBundle {
                    request_id,
                    attestation: BundleAttestation::Unattested(status_with([0xaa; 32], 1)),
                    bundle: CheckpointBundle {
                        checkpoints: vec![sign([0xaa; 32]), sign([0xbb; 32])],
                        proof: ProofBundle::default(),
                    },
                }))
            }
            Ok(_) => Response::Error("not implemented".into()),
            Err(e) => Response::Error(format!("{e}")),
        };
        response.to_wire()
    }
}

#[test]
fn equivocation_inside_one_bundle_yields_transferable_proof() {
    // In the per-step path this fork needs two audits (or two clients +
    // gossip) to surface; a bundle carrying both checkpoints convicts the
    // domain in a single round, with the same transferable evidence.
    let key = SigningKey::derive(b"bundle equivocation", b"checkpoint");
    let lid = log_id(b"bundle-equiv-deploy", 0);
    let mut host = DirectHost::spawn(EquivocatingBundleDomain { key, log_id: lid }).expect("spawn");
    let descriptor = descriptor_for(&host, &key);

    let mut auditor = client(&descriptor, b"auditor");
    let report = auditor.audit(None);
    assert!(report.domains[0].batched, "served via the batched path");
    let proof = report
        .misbehavior
        .iter()
        .find_map(|m| match m {
            Misbehavior::Equivocation { domain: 0, proof } => Some(proof.clone()),
            _ => None,
        })
        .expect("in-bundle equivocation flagged");
    // Exactly the evidence the per-step path produces: publicly
    // verifiable from bytes alone.
    let transported =
        distrust::log::checkpoint::EquivocationProof::from_wire(&proof.to_wire()).expect("decodes");
    assert!(transported.verify(&key.verifying_key()));
    assert!(!report.is_clean());

    host.shutdown();
}

/// A domain whose bundle cache went stale: after showing a client size 2,
/// it serves a (correctly signed, internally valid) bundle for size 1.
struct StaleCacheDomain {
    key: SigningKey,
    log_id: [u8; 32],
    log: MerkleLog,
    audits: u64,
}

impl EnclaveService for StaleCacheDomain {
    fn handle(&mut self, request: Vec<u8>) -> Vec<u8> {
        let response = match Request::from_wire(&request) {
            Ok(Request::BatchAudit { request_id, .. }) => {
                self.audits += 1;
                let cp = |size: usize, time: u64, log: &MerkleLog, key: &SigningKey, lid| {
                    SignedCheckpoint::sign(
                        CheckpointBody {
                            log_id: lid,
                            size: size as u64,
                            head: log.root_of_prefix(size),
                            logical_time: time,
                        },
                        key,
                    )
                };
                let (bundle, status) = if self.audits == 1 {
                    // Fresh view: both epochs plus the real 1→2 proof.
                    let proof = self.log.prove_consistency_range(&[1, 2]).expect("proof");
                    (
                        CheckpointBundle {
                            checkpoints: vec![
                                cp(1, 1, &self.log, &self.key, self.log_id),
                                cp(2, 2, &self.log, &self.key, self.log_id),
                            ],
                            proof,
                        },
                        status_with(self.log.root(), 2),
                    )
                } else {
                    // Stale cached prefix: an old, size-1 view.
                    (
                        CheckpointBundle {
                            checkpoints: vec![cp(1, 1, &self.log, &self.key, self.log_id)],
                            proof: ProofBundle::default(),
                        },
                        status_with(self.log.root_of_prefix(1), 1),
                    )
                };
                Response::AuditBundle(Box::new(AuditBundle {
                    request_id,
                    attestation: BundleAttestation::Unattested(status),
                    bundle,
                }))
            }
            Ok(_) => Response::Error("not implemented".into()),
            Err(e) => Response::Error(format!("{e}")),
        };
        response.to_wire()
    }
}

#[test]
fn stale_cached_prefix_is_flagged_as_rollback() {
    let key = SigningKey::derive(b"stale cache", b"checkpoint");
    let lid = log_id(b"stale-deploy", 0);
    let mut log = MerkleLog::new();
    log.append(b"v1");
    log.append(b"v2");
    let mut host = DirectHost::spawn(StaleCacheDomain {
        key,
        log_id: lid,
        log,
        audits: 0,
    })
    .expect("spawn");
    let descriptor = descriptor_for(&host, &key);

    let mut auditor = client(&descriptor, b"auditor");
    // First audit verifies up to size 2.
    let first = auditor.audit(None);
    assert!(
        first.misbehavior.is_empty() && first.domains[0].failure.is_none(),
        "fresh view is consistent: {first:?}"
    );
    // Second audit gets the stale size-1 bundle: exactly what the
    // per-step path flags when a checkpoint goes backwards.
    let second = auditor.audit(None);
    assert!(
        second.misbehavior.iter().any(|m| matches!(
            m,
            Misbehavior::Rollback {
                domain: 0,
                trusted_size: 2,
                offered_size: 1,
            }
        )),
        "stale prefix must be flagged as rollback: {second:?}"
    );
    assert!(!second.is_clean());

    host.shutdown();
}

#[test]
fn gossip_between_honest_clients_is_quiet() {
    // Against an honest deployment, gossip produces no evidence — and the
    // real servers all answer the batched audit, no fallback.
    let deployment = distrust::core::Deployment::launch(
        distrust::apps::analytics::app_spec(3),
        b"honest gossip seed",
    )
    .expect("launch");
    let mut a = deployment.client(b"client a");
    let mut b = deployment.client(b"client b");
    assert!(a.audit(None).is_clean());
    assert!(b.audit(None).is_clean());
    assert_eq!(a.audit_stats().batched_domains, 3);
    assert_eq!(a.audit_stats().fallback_domains, 0);
    assert!(a.ingest_gossip(&b.gossip_payload()).is_empty());
    assert!(b.ingest_gossip(&a.gossip_payload()).is_empty());
}
