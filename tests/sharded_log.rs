//! Sharded-log integration: the 1-shard compatibility contract and the
//! multi-shard deployment path, end to end.
//!
//! The sharding tentpole's acceptance criterion is that a 1-shard
//! [`ShardedLog`] is **wire- and proof-compatible** with the pre-shard
//! single-tree format: an auditor built for the legacy path accepts new
//! 1-shard checkpoints and bundles, and vice versa, byte for byte. Beyond
//! one shard, deployments sign shard-head commitments, serve
//! `ShardAuditBundle`s, and clients track per-shard verified prefixes —
//! all exercised here over real sockets.

use distrust::core::abi::{AppHost, NoImports, HANDLE_EXPORT, OUTBOX_ADDR};
use distrust::core::session::TrustPolicy;
use distrust::core::{AppSpec, Deployment, Request, Response};
use distrust::crypto::schnorr::SigningKey;
use distrust::log::auditor::Auditor;
use distrust::log::batch::{CheckpointBundle, ProofBundle};
use distrust::log::checkpoint::{log_id, CheckpointBody, SignedCheckpoint};
use distrust::log::StorageConfig;
use distrust::log::{MerkleLog, ShardedLog};
use distrust::sandbox::{FuncBuilder, Limits, Module, ModuleBuilder};
use distrust::wire::Encode;
use proptest::prelude::*;

/// Method 1 returns `base + input[0]` — a minimal versioned app.
fn adder_module(base: u64) -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    let mut f = FuncBuilder::new(3, 0, 1);
    f.constant(OUTBOX_ADDR)
        .lget(1)
        .load8(0)
        .constant(base)
        .add()
        .store8(0)
        .constant(1)
        .ret();
    let idx = mb.function(f.build().unwrap());
    mb.export(HANDLE_EXPORT, idx);
    mb.build()
}

fn launch_sharded(seed: &[u8], n: usize, shards: u32) -> Deployment {
    let spec = AppSpec {
        name: "adder".into(),
        module: adder_module(100),
        notes: "v1".into(),
        hosts: (0..n)
            .map(|_| Box::new(NoImports) as Box<dyn AppHost>)
            .collect(),
        limits: Limits::default(),
    };
    Deployment::launch_sharded(spec, seed, shards).expect("launch")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For a random append sequence, a 1-shard `ShardedLog` produces
    /// byte-identical checkpoint bodies and consistency proofs to the
    /// legacy single `MerkleLog` — the invariant old/new interop rests on.
    #[test]
    fn one_shard_log_is_byte_identical_to_legacy(
        leaf_count in 1usize..40,
        old_seed in any::<u64>(),
    ) {
        let sharded = ShardedLog::new(1);
        let mut plain = MerkleLog::new();
        let lid = log_id(b"compat", 0);
        for i in 0..leaf_count {
            let leaf = format!("digest-{i}");
            sharded.append(0, leaf.as_bytes()).unwrap();
            plain.append(leaf.as_bytes());
            // Checkpoint bodies (the signed bytes!) are identical.
            let snap = sharded.snapshot();
            let new_body = CheckpointBody {
                log_id: lid,
                size: snap.total(),
                head: snap.commitment(),
                logical_time: i as u64,
            };
            let legacy_body = CheckpointBody {
                log_id: lid,
                size: plain.len() as u64,
                head: plain.root(),
                logical_time: i as u64,
            };
            prop_assert_eq!(new_body.to_wire(), legacy_body.to_wire());
        }
        // Consistency proofs between random sizes are identical too.
        let old = 1 + (old_seed as usize) % leaf_count;
        let new_proof = sharded.prove_shard_consistency(0, old as u64, leaf_count as u64);
        let legacy_proof = plain.prove_consistency(old, leaf_count);
        prop_assert_eq!(&new_proof, &legacy_proof);
        if let (Some(a), Some(b)) = (new_proof, legacy_proof) {
            prop_assert_eq!(a.to_wire_proof(), b.to_wire_proof());
        }
    }

    /// Cross-acceptance: an auditor fed by a **legacy** server (plain
    /// MerkleLog bundles) and one fed by a **new 1-shard** server accept
    /// each other's artifacts interchangeably — one auditor consumes an
    /// alternating mix of both and stays consistent throughout.
    #[test]
    fn old_and_new_one_shard_bundles_interoperate(ops in proptest::collection::vec(any::<bool>(), 1..10)) {
        let sk = SigningKey::derive(b"interop", b"cp");
        let lid = log_id(b"interop", 0);
        let sharded = ShardedLog::new(1);
        let mut plain = MerkleLog::new();
        let mut epochs: Vec<SignedCheckpoint> = Vec::new();
        let mut auditor = Auditor::new(vec![sk.verifying_key()]);

        for (i, from_new_server) in ops.iter().enumerate() {
            // Both logs receive the identical append (they mirror one
            // deployment's history).
            let leaf = format!("digest-{i}");
            sharded.append(0, leaf.as_bytes()).unwrap();
            plain.append(leaf.as_bytes());
            let time = (i + 1) as u64;
            // The epoch checkpoint is signed over whichever representation
            // the serving path uses — the bytes must agree regardless.
            let (size, head) = if *from_new_server {
                let snap = sharded.snapshot();
                (snap.total(), snap.commitment())
            } else {
                (plain.len() as u64, plain.root())
            };
            epochs.push(SignedCheckpoint::sign(
                CheckpointBody { log_id: lid, size, head, logical_time: time },
                &sk,
            ));
            // Serve a bundle from the chosen implementation and feed the
            // one shared auditor.
            let verified = auditor.latest(0).map(|cp| cp.body.size).unwrap_or(0);
            let checkpoints: Vec<SignedCheckpoint> = epochs
                .iter()
                .filter(|cp| cp.body.size > verified)
                .cloned()
                .collect();
            let mut sizes: Vec<usize> = Vec::new();
            if verified >= 1 {
                sizes.push(verified as usize);
            }
            sizes.extend(checkpoints.iter().map(|cp| cp.body.size as usize));
            let proof = if *from_new_server {
                sharded
                    .lock_shard(0)
                    .prove_consistency_range(&sizes)
                    .unwrap_or_default()
            } else {
                plain.prove_consistency_range(&sizes).unwrap_or_default()
            };
            let bundle = CheckpointBundle { checkpoints, proof };
            prop_assert!(
                auditor.observe_bundle(0, &bundle).is_consistent(),
                "bundle from {} server rejected at epoch {i}",
                if *from_new_server { "new 1-shard" } else { "legacy" }
            );
            prop_assert_eq!(auditor.latest(0).unwrap().body.size, (i + 1) as u64);
        }
    }
}

/// `ConsistencyProof` has no standalone Encode impl (it rides inside
/// responses); compare the canonical response encoding instead.
trait WireProof {
    fn to_wire_proof(&self) -> Vec<u8>;
}

impl WireProof for distrust::log::ConsistencyProof {
    fn to_wire_proof(&self) -> Vec<u8> {
        Response::Consistency(self.clone()).to_wire()
    }
}

#[test]
fn sharded_deployment_audits_clean_end_to_end() {
    // A real 4-shard deployment over real sockets: audits flow through
    // `Response::ShardAuditBundle`, clients track per-shard prefixes, and
    // sessions gate trust exactly as on the legacy layout.
    let mut deployment = launch_sharded(b"sharded e2e", 3, 4);
    let mut client = deployment.client(b"auditor");

    let report = client.audit(Some(&deployment.initial_app_digest));
    assert!(report.is_clean(), "{report:?}");
    assert!(
        report.domains.iter().all(|d| d.batched),
        "sharded audits must ride the batched path: {report:?}"
    );
    // The auditor tracked per-shard prefixes for every domain.
    for d in 0..3u32 {
        let cache = client.auditor_prefix_cache(d).expect("domain exists");
        let prefixes = cache.shard_prefixes().expect("sharded audit ran");
        assert_eq!(prefixes.len(), 4, "one prefix per shard");
        assert_eq!(
            prefixes.iter().map(|(s, _)| *s).sum::<u64>(),
            1,
            "v1 is one leaf in one shard"
        );
    }

    // Updates keep flowing and re-audits stay clean (and cheap).
    let release = deployment.sign_release(2, "v2", &adder_module(200));
    for result in client.push_update(&release) {
        result.expect("update accepted");
    }
    let report = client.audit(None);
    assert!(report.is_clean(), "{report:?}");

    // Steady state: an unchanged sharded log re-audits with zero fresh
    // signature verifications.
    let before = client
        .auditor_prefix_cache(0)
        .unwrap()
        .signatures_verified();
    let report = client.audit(None);
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(
        client
            .auditor_prefix_cache(0)
            .unwrap()
            .signatures_verified(),
        before,
        "unchanged sharded log must not cost signature re-verification"
    );

    // Sessions work unchanged on top.
    let mut session = client.session(TrustPolicy::audited());
    assert_eq!(session.call(1, 1, &[5]).unwrap(), vec![205u8]);
    drop(session);

    // Old-style clients can still fetch the flattened log.
    let entries = client.log_entries(0, 0).unwrap();
    assert_eq!(entries.len(), 2, "v1 + v2 digests");

    deployment.shutdown();
}

#[test]
fn shard_entries_and_fallback() {
    // New request against a sharded deployment: per-shard slices come
    // back; out-of-range shards error; and on a 1-shard deployment shard 0
    // equals the legacy whole-log fetch.
    let sharded = launch_sharded(b"shard entries", 2, 4);
    let mut client = sharded.client(b"reader");
    let flattened = client.log_entries(0, 0).unwrap();
    assert_eq!(flattened.len(), 1, "v1 digest");
    let mut per_shard = Vec::new();
    for s in 0..4u32 {
        per_shard.extend(client.shard_entries(0, s, 0).unwrap());
    }
    assert_eq!(per_shard, flattened, "shard slices concatenate to the log");
    assert!(
        client.shard_entries(0, 9, 0).is_err(),
        "out-of-range shard must error"
    );
    // An out-of-range offset within a real shard surfaces the server's
    // error — it must NOT fall back to the globally-flattened log and
    // present that as shard data (shard-aware servers only get the
    // fallback on the "malformed request" frame old servers answer with).
    let routed = ShardedLog::new(4).shard_for(b"adder");
    for s in 0..4u32 {
        if s == routed {
            continue;
        }
        assert!(
            client.shard_entries(0, s, 1).is_err(),
            "offset past empty shard {s} must error, not fall back"
        );
    }

    let legacy = launch_sharded(b"shard entries legacy", 2, 1);
    let mut client = legacy.client(b"reader");
    assert_eq!(
        client.shard_entries(0, 0, 0).unwrap(),
        client.log_entries(0, 0).unwrap(),
        "shard 0 of a 1-shard log IS the log"
    );
}

#[test]
fn shard_unaware_prefix_relinks_through_batched_audit() {
    // A verifier can trust a sharded domain's `(size, head)` without ever
    // having seen its per-shard decomposition — e.g. its previous round
    // fell back to the per-step path (`GetCheckpoint` serves the plain
    // top-level checkpoint). The next batched audit must re-link: the
    // server leads the bundle with the client's verified epoch (snapshot
    // included, binding checked against the already-trusted head), so the
    // walk re-learns the baseline instead of wedging into a permanent
    // false `InconsistentGrowth`.
    use distrust::core::abi::NoImports as Host;
    use distrust::core::framework::{EnclaveFramework, FrameworkConfig};
    let dev = SigningKey::derive(b"relink", b"dev");
    let cp_key = SigningKey::derive(b"relink", b"cp");
    let cp_vk = cp_key.verifying_key();
    let mut fw = EnclaveFramework::open(
        FrameworkConfig {
            domain_index: 0,
            app_name: "adder".into(),
            developer_key: dev.verifying_key(),
            log_id: log_id(b"relink", 0),
            limits: Limits::default(),
            log_shards: 4,
            storage: StorageConfig::Ephemeral,
        },
        None,
        cp_key,
        Box::new(Host),
    )
    .unwrap();
    let v1 = distrust::core::SignedRelease::create("adder", 1, "", &adder_module(100), &dev);
    fw.apply_update(&v1).expect("v1 applies");

    // Legacy-path observation: top-level checkpoint only, no shard info.
    let mut auditor = Auditor::new(vec![cp_vk]);
    let cp = fw.checkpoint().unwrap();
    assert!(auditor.observe(0, cp, None).is_consistent());
    assert!(
        auditor.prefix_cache(0).unwrap().shard_prefixes().is_none(),
        "per-step path learns no shard decomposition"
    );

    // The log grows; the batched round must re-link from the trusted
    // (but shard-opaque) prefix.
    let v2 = distrust::core::SignedRelease::create("adder", 2, "", &adder_module(200), &dev);
    fw.apply_update(&v2).expect("v2 applies");
    let verified = auditor.latest(0).unwrap().body.size;
    let bundle = match fw.handle(Request::BatchAudit {
        request_id: 1,
        nonce: [1; 32],
        verified_size: verified,
    }) {
        Response::ShardAuditBundle(b) => b.bundle,
        other => panic!("expected sharded bundle, got {other:?}"),
    };
    assert!(
        auditor.observe_shard_bundle(0, &bundle).is_consistent(),
        "shard-unaware prefix must re-link, not wedge"
    );
    assert_eq!(auditor.latest(0).unwrap().body.size, 2);
    assert!(auditor.prefix_cache(0).unwrap().shard_prefixes().is_some());
}

#[test]
fn one_shard_deployment_byte_compatible_on_the_wire() {
    // The serving side of the compatibility contract: a 1-shard
    // deployment answers BatchAudit with the *legacy* bundle shape (tag
    // 12) and GetConsistency with real proofs — nothing about sharding
    // leaks into the wire format old clients parse.
    let deployment = launch_sharded(b"one shard wire", 2, 1);
    let mut client = deployment.client(b"prober");
    match client
        .exchange(
            0,
            &Request::BatchAudit {
                request_id: 42,
                nonce: [9; 32],
                verified_size: 0,
            },
        )
        .unwrap()
    {
        Response::AuditBundle(b) => assert_eq!(b.request_id, 42),
        other => panic!("1-shard deployment must answer the legacy bundle, got {other:?}"),
    }
    // And the multi-shard deployment answers the sharded shape.
    let deployment = launch_sharded(b"four shard wire", 2, 4);
    let mut client = deployment.client(b"prober");
    match client
        .exchange(
            0,
            &Request::BatchAudit {
                request_id: 43,
                nonce: [9; 32],
                verified_size: 0,
            },
        )
        .unwrap()
    {
        Response::ShardAuditBundle(b) => {
            assert_eq!(b.request_id, 43);
            assert!(b.bundle.epochs.iter().all(|e| e.well_formed()));
        }
        other => panic!("4-shard deployment must answer the sharded bundle, got {other:?}"),
    }
}

#[test]
fn legacy_per_step_audit_still_works_on_one_shard_deployment() {
    // An "old client" that never sends BatchAudit (per-step path only)
    // must audit a new 1-shard deployment unchanged.
    let deployment = launch_sharded(b"per-step compat", 2, 1);
    let mut client = deployment.client(b"old-auditor");
    let mut auditor = Auditor::new(
        deployment
            .descriptor
            .domains
            .iter()
            .map(|d| d.checkpoint_key)
            .collect(),
    );
    for d in 0..2u32 {
        let cp = match client.exchange(d, &Request::GetCheckpoint).unwrap() {
            Response::Checkpoint(cp) => cp,
            other => panic!("unexpected {other:?}"),
        };
        assert!(auditor.observe(d, cp, None).is_consistent());
    }
    // Growth with a per-step consistency proof.
    let release = deployment.sign_release(2, "v2", &adder_module(200));
    let mut dev_client = deployment.client(b"developer");
    for result in dev_client.push_update(&release) {
        result.expect("accepted");
    }
    for d in 0..2u32 {
        let proof = match client
            .exchange(d, &Request::GetConsistency { old_size: 1 })
            .unwrap()
        {
            Response::Consistency(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        let cp = match client.exchange(d, &Request::GetCheckpoint).unwrap() {
            Response::Checkpoint(cp) => cp,
            other => panic!("unexpected {other:?}"),
        };
        assert!(
            auditor.observe(d, cp, Some(&proof)).is_consistent(),
            "per-step audit of domain {d} failed"
        );
    }

    // An empty `ProofBundle` (what an old client's tooling would build
    // from the per-step responses) is accepted by the batched ingest too.
    let _ = ProofBundle::default();
}
