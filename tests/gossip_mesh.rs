//! Convergence property of the gossip mesh: over ANY connected topology
//! of honest auditors, an equivocating domain whose conflicting views
//! land anywhere in the mesh is detected by EVERY auditor within
//! O(diameter) synchronous rounds, and the conviction travels as
//! transferable evidence each auditor can re-verify alone.
//!
//! Everything here is deterministic — the mesh steps in synchronous
//! snapshot-then-deliver rounds (information moves at most one hop per
//! round), no sockets, no clocks, no sleeps — so the bound is exact:
//! the two conflicting views meet within `dist(a, b) <= diameter`
//! rounds, and the resulting evidence floods back out within `diameter`
//! more. `2 * diameter + 2` rounds therefore always suffice.

use distrust::crypto::schnorr::SigningKey;
use distrust::gossip::mesh::{GossipNode, Mesh};
use distrust::log::checkpoint::{log_id, CheckpointBody, SignedCheckpoint};
use proptest::prelude::*;

fn checkpoint(sk: &SigningKey, domain: u32, size: u64, fill: u8) -> SignedCheckpoint {
    SignedCheckpoint::sign(
        CheckpointBody {
            log_id: log_id(b"mesh-property", domain),
            size,
            head: [fill; 32],
            logical_time: size,
        },
        sk,
    )
}

/// A random connected topology over `k` nodes: a random spanning tree
/// (node `i` attaches to an earlier node chosen by `seeds`), plus up to
/// `extra` additional random edges. Connected by construction.
fn random_connected_edges(k: usize, seeds: &[u64]) -> Vec<(usize, usize)> {
    let seed_at = |i: usize| seeds.get(i % seeds.len().max(1)).copied().unwrap_or(1);
    let mut edges: Vec<(usize, usize)> = (1..k).map(|i| (i, (seed_at(i) as usize) % i)).collect();
    // Extra edges make the graph denser (shrinking the diameter); the
    // bound must hold for any of them.
    for (j, &s) in seeds.iter().enumerate() {
        let a = (s as usize) % k;
        let b = (s >> 32) as usize % k;
        if a != b && j % 2 == 0 {
            edges.push((a, b));
        }
    }
    edges
}

/// Exact graph diameter by BFS from every node (k is small).
fn diameter(k: usize, edges: &[(usize, usize)]) -> usize {
    let mut adj = vec![Vec::new(); k];
    for &(a, b) in edges {
        if a != b {
            adj[a].push(b);
            adj[b].push(a);
        }
    }
    let mut diameter = 0;
    for start in 0..k {
        let mut dist = vec![usize::MAX; k];
        dist[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        let far = *dist.iter().max().expect("non-empty");
        assert_ne!(far, usize::MAX, "topology must be connected");
        diameter = diameter.max(far);
    }
    diameter
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: any connected topology, any pair of
    /// injection points for the two conflicting views, every honest
    /// auditor convicts the equivocating domain within
    /// `2 * diameter + 2` rounds — and holds independently verifiable
    /// evidence, while an honest domain in the same mesh is never
    /// convicted by anyone.
    #[test]
    fn every_auditor_convicts_within_o_diameter_rounds(
        k in 2usize..9,
        seeds in proptest::collection::vec(any::<u64>(), 1..12),
        inject_a in any::<u64>(),
        inject_b in any::<u64>(),
    ) {
        let equivocator = SigningKey::derive(b"mesh-property", b"equivocator");
        let honest = SigningKey::derive(b"mesh-property", b"honest");
        let keys = vec![equivocator.verifying_key(), honest.verifying_key()];

        let edges = random_connected_edges(k, &seeds);
        let d = diameter(k, &edges);
        let nodes = (0..k).map(|_| GossipNode::new(keys.clone())).collect();
        let mut mesh = Mesh::new(nodes, edges);

        // Domain 0 shows fork A to one auditor and fork B to another
        // (possibly the same one — then detection is immediate and the
        // bound holds trivially). Domain 1 behaves: the same history,
        // observed at different staleness, is consistent everywhere.
        let a = (inject_a as usize) % k;
        let b = (inject_b as usize) % k;
        mesh.node_mut(a).observe_checkpoint(0, checkpoint(&equivocator, 0, 6, 0xaa));
        mesh.node_mut(b).observe_checkpoint(0, checkpoint(&equivocator, 0, 6, 0xbb));
        mesh.node_mut(a).observe_checkpoint(1, checkpoint(&honest, 1, 3, 0x33));
        mesh.node_mut(b).observe_checkpoint(1, checkpoint(&honest, 1, 5, 0x55));

        let budget = 2 * d + 2;
        let rounds = mesh.converge_on(0, budget);
        prop_assert!(
            rounds.is_some(),
            "k={} diameter={} did not converge within {} rounds", k, d, budget
        );

        for i in 0..mesh.len() {
            // Every auditor holds the conviction as TRANSFERABLE
            // evidence: it verifies against the domain's public key
            // alone, so auditor i can convince anyone else.
            let transferable = mesh
                .node(i)
                .evidence()
                .iter()
                .any(|bundle| bundle.domain == 0 && bundle.verify(&keys[0]));
            prop_assert!(transferable, "node {} lacks transferable evidence", i);
            // No auditor ever convicts the honest domain.
            prop_assert!(!mesh.node(i).convicted(1), "node {} framed domain 1", i);
        }
    }

    /// Liveness of the head flood itself: with no equivocation anywhere,
    /// a single directly-observed head reaches every auditor within
    /// `diameter` rounds and convicts nobody.
    #[test]
    fn honest_heads_flood_within_diameter_rounds(
        k in 2usize..9,
        seeds in proptest::collection::vec(any::<u64>(), 1..12),
        origin in any::<u64>(),
    ) {
        let honest = SigningKey::derive(b"mesh-property", b"honest");
        let keys = vec![honest.verifying_key()];
        let edges = random_connected_edges(k, &seeds);
        let d = diameter(k, &edges);
        let nodes = (0..k).map(|_| GossipNode::new(keys.clone())).collect();
        let mut mesh = Mesh::new(nodes, edges);

        let origin = (origin as usize) % k;
        mesh.node_mut(origin).observe_checkpoint(0, checkpoint(&honest, 0, 8, 0x88));
        for _ in 0..d {
            mesh.round();
        }
        for i in 0..mesh.len() {
            let heads = mesh.node(i).envelope().heads;
            prop_assert_eq!(heads.len(), 1);
            prop_assert_eq!(heads[0].checkpoint.body.size, 8);
            prop_assert!(!mesh.node(i).convicted(0));
        }
    }
}
