//! End-to-end tests for the key-backup and private-analytics applications
//! over full deployments (real sockets, TEE proxies, audits).

use distrust::apps::analytics::{self, AnalyticsClient};
use distrust::apps::key_backup::{self, KeyBackupClient, RecoverStatus};
use distrust::core::{Deployment, TrustPolicy};
use distrust::crypto::drbg::HmacDrbg;

#[test]
fn key_backup_full_cycle() {
    let deployment =
        Deployment::launch(key_backup::app_spec(4), b"backup e2e seed").expect("launch");
    let mut client = deployment.client(b"user");
    // The session audits before the first call — the user's whole reason
    // to trust the deployment, now enforced by construction.
    let mut session = client.session(TrustPolicy::pinned(deployment.initial_app_digest));
    let backup = KeyBackupClient::new(3);
    let mut rng = HmacDrbg::new(b"user rng", b"");

    let secret = b"0123456789abcdef0123456789abcdef"; // 32-byte key
    let token = [0x42u8; 32];
    let commitment = backup
        .backup(&mut session, 1001, &token, secret, &mut rng)
        .expect("backup");
    let report = session.last_audit().expect("gating audit ran");
    assert!(report.is_clean(), "{report:?}");

    // Recovery with the right token succeeds and matches.
    let recovered = backup
        .recover(&mut session, 1001, &token, &commitment)
        .expect("recover");
    assert_eq!(recovered, secret.to_vec());

    // Wrong token denied on every domain.
    for d in 0..4u32 {
        let status = backup
            .recover_share(&mut session, d, 1001, &[0u8; 32])
            .expect("protocol");
        assert_eq!(status, RecoverStatus::BadToken);
    }

    // Unknown users get a distinct (non-oracle) answer.
    let status = backup
        .recover_share(&mut session, 0, 99999, &token)
        .expect("protocol");
    assert_eq!(status, RecoverStatus::UnknownUser);

    // Two users don't interfere.
    let token2 = [0x43u8; 32];
    let secret2 = b"another users key...............";
    let c2 = backup
        .backup(&mut session, 2002, &token2, secret2, &mut rng)
        .expect("backup 2");
    assert_eq!(
        backup.recover(&mut session, 2002, &token2, &c2).unwrap(),
        secret2.to_vec()
    );
    assert_eq!(
        backup
            .recover(&mut session, 1001, &token, &commitment)
            .unwrap(),
        secret.to_vec()
    );
}

#[test]
fn key_backup_rate_limit_over_the_wire() {
    let deployment =
        Deployment::launch(key_backup::app_spec(3), b"ratelimit e2e seed").expect("launch");
    let mut client = deployment.client(b"user");
    let mut session = client.session(TrustPolicy::audited());
    let backup = KeyBackupClient::new(2);
    let mut rng = HmacDrbg::new(b"user rng", b"");
    let token = [9u8; 32];
    backup
        .backup(&mut session, 5, &token, b"sixteen byte key", &mut rng)
        .expect("backup");

    // Hammer domain 1 with wrong tokens until it locks.
    for _ in 0..key_backup::MAX_ATTEMPTS {
        assert_eq!(
            backup
                .recover_share(&mut session, 1, 5, &[1u8; 32])
                .unwrap(),
            RecoverStatus::BadToken
        );
    }
    assert_eq!(
        backup.recover_share(&mut session, 1, 5, &token).unwrap(),
        RecoverStatus::RateLimited
    );
    // Other domains are unaffected (independent guest state).
    assert!(matches!(
        backup.recover_share(&mut session, 2, 5, &token).unwrap(),
        RecoverStatus::Ok(_)
    ));
}

#[test]
fn analytics_aggregates_without_revealing_individuals() {
    let n_domains = 3;
    let deployment =
        Deployment::launch(analytics::app_spec(n_domains), b"analytics e2e seed").expect("launch");
    let analytics_client = AnalyticsClient::new(4);
    let mut rng = HmacDrbg::new(b"reporters", b"");

    // Ten users submit 4-dimensional reports.
    let reports: Vec<[u64; 4]> = (0..10)
        .map(|i| [i as u64, (i % 2) as u64, 100 + i as u64, 1])
        .collect();
    let mut expected = [0u64; 4];
    let mut submitter_client = deployment.client(b"submitter");
    let mut submitter = submitter_client.session(TrustPolicy::audited());
    for report in &reports {
        analytics_client
            .submit(&mut submitter, report, &mut rng)
            .expect("submit");
        for (e, v) in expected.iter_mut().zip(report) {
            *e = e.wrapping_add(*v);
        }
    }

    // The analyst aggregates: totals match, count matches.
    let mut analyst_client = deployment.client(b"analyst");
    let mut analyst = analyst_client.session(TrustPolicy::audited());
    let (totals, count) = analytics_client.aggregate(&mut analyst).expect("aggregate");
    assert_eq!(totals, expected.to_vec());
    assert_eq!(count, 10);

    // Privacy check: no single domain's accumulator equals the true
    // totals (each holds a uniformly masked vector).
    for d in 0..n_domains as u32 {
        let acc_bytes = analyst
            .call(d, analytics::METHOD_AGGREGATE, b"")
            .expect("per-domain accumulator");
        let acc: Vec<u64> = acc_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_ne!(acc, expected.to_vec(), "domain {d} saw masked data only");
    }
}

#[test]
fn analytics_audit_stays_clean_under_load() {
    let deployment =
        Deployment::launch(analytics::app_spec(2), b"analytics audit seed").expect("launch");
    let analytics_client = AnalyticsClient::new(2);
    let mut client = deployment.client(b"user");
    // max_staleness 4: every fifth call round re-runs the audit — the
    // session interleaves audits with traffic the way the old test did by
    // hand, and refuses traffic the moment an audit stops being clean.
    let mut session =
        client.session(TrustPolicy::pinned(deployment.initial_app_digest).with_max_staleness(4));
    let mut rng = HmacDrbg::new(b"load", b"");
    for i in 0..20u64 {
        analytics_client
            .submit(&mut session, &[i, 1], &mut rng)
            .expect("submit");
        let report = session.last_audit().expect("gating audit ran");
        assert!(report.is_clean(), "round {i}: {report:?}");
    }
    let (totals, count) = analytics_client.aggregate(&mut session).expect("aggregate");
    assert_eq!(count, 20);
    assert_eq!(totals[1], 20);
    assert_eq!(totals[0], (0..20).sum::<u64>());
}
