//! Golden-format pins and client edge cases.
//!
//! The transparency story depends on byte-stable formats: a digest computed
//! today must be recomputable by an auditor years later. These tests pin
//! the canonical encodings (via their SHA-256) so accidental wire-format
//! changes fail loudly instead of silently invalidating old logs.

use distrust::core::protocol::{DomainStatus, Request};
use distrust::core::Deployment;
use distrust::crypto::sha256;
use distrust::wire::Encode;

fn digest_hex(bytes: &[u8]) -> String {
    sha256(bytes).iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn golden_request_encodings() {
    // If any of these change, the protocol version must be bumped and old
    // transcripts re-validated. (Values captured from the v1 format.)
    let attest = Request::Attest { nonce: [7; 32] };
    let status = Request::GetStatus;
    let call = Request::AppCall {
        method: 3,
        payload: b"payload".to_vec(),
    };
    // Structural pins (cheap to maintain, catch format drift):
    assert_eq!(attest.to_wire().len(), 1 + 32);
    assert_eq!(status.to_wire(), vec![1]);
    assert_eq!(call.to_wire().len(), 1 + 8 + 4 + 7);
    // Exact-content pins:
    assert_eq!(
        digest_hex(&attest.to_wire()),
        digest_hex(&[vec![0u8], vec![7u8; 32]].concat()),
    );
}

#[test]
fn golden_domain_status_encoding() {
    let status = DomainStatus {
        domain_index: 1,
        app_digest: [2; 32],
        app_version: 3,
        log_size: 4,
        log_head: [5; 32],
        framework_measurement: [6; 32],
    };
    let wire = status.to_wire();
    // Layout: u32 + 32 + u64 + u64 + 32 + 32 = 116 bytes, little-endian.
    assert_eq!(wire.len(), 116);
    assert_eq!(&wire[..4], &1u32.to_le_bytes());
    assert_eq!(&wire[4..36], &[2u8; 32]);
    assert_eq!(&wire[36..44], &3u64.to_le_bytes());
    assert_eq!(&wire[44..52], &4u64.to_le_bytes());
}

#[test]
fn golden_module_digest() {
    // The counter module's digest is a function of the module format; pin
    // its stability across two construction calls and against the digest
    // recomputed from serialized bytes.
    let m = distrust::sandbox::guests::counter_module(1);
    let d1 = m.digest();
    let reparsed =
        <distrust::sandbox::Module as distrust::wire::Decode>::from_wire(&m.to_wire()).unwrap();
    assert_eq!(reparsed.digest(), d1);
}

#[test]
fn audit_flags_unexpected_published_digest() {
    // A client that compiled DIFFERENT source than what the deployment
    // runs must see digests_agree == false even when all domains agree
    // with each other.
    let deployment = Deployment::launch(
        distrust::apps::analytics::app_spec(2),
        b"expected digest seed",
    )
    .unwrap();
    let mut client = deployment.client(b"auditor");
    let wrong_expectation = [0xab; 32];
    let report = client.audit(Some(&wrong_expectation));
    assert!(!report.digests_agree);
    assert!(!report.is_clean());
    // Per-domain checks all passed — it is specifically the published-code
    // pin that failed.
    assert!(report.domains.iter().all(|d| d.failure.is_none()));
}

#[test]
fn client_surfaces_unreachable_domains() {
    let deployment =
        Deployment::launch(distrust::apps::analytics::app_spec(2), b"unreachable seed").unwrap();
    let mut descriptor = deployment.descriptor.clone();
    descriptor.domains[1].addr = "127.0.0.1:1".parse().unwrap();
    let mut client = distrust::core::DeploymentClient::new(
        descriptor,
        Box::new(distrust::crypto::drbg::HmacDrbg::new(b"c", b"")),
    );
    let report = client.audit(None);
    assert!(!report.is_clean());
    assert!(report.domains[0].failure.is_none());
    assert!(report.domains[1].failure.is_some());
    // App calls to the dead domain error; to the live one succeed.
    assert!(client.call(1, 1, b"").is_err());
    assert!(client
        .call(0, distrust::apps::analytics::METHOD_COUNT, b"")
        .is_ok());
}

#[test]
fn audit_is_repeatable_and_monotone() {
    // Repeated audits keep succeeding and reuse consistency proofs; the
    // auditor state never wedges on an honest deployment.
    let deployment =
        Deployment::launch(distrust::apps::analytics::app_spec(3), b"repeat audit seed").unwrap();
    let mut client = deployment.client(b"auditor");
    for round in 0..5 {
        let report = client.audit(Some(&deployment.initial_app_digest));
        assert!(report.is_clean(), "round {round}: {report:?}");
    }
    // Push an update mid-stream; audits continue cleanly with growth.
    let release = deployment.sign_release(2, "v2", &distrust::apps::analytics::analytics_module());
    // Same module bytes → same digest → same version bump only.
    for r in client.push_update(&release) {
        r.expect("accepted");
    }
    for round in 0..3 {
        let report = client.audit(Some(&release.digest()));
        assert!(report.is_clean(), "post-update round {round}: {report:?}");
    }
}
