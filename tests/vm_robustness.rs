//! Adversarial robustness of the sandbox: the framework feeds it
//! *developer-signed but otherwise arbitrary* code, so the VM must never
//! panic, hang, or corrupt host state regardless of input — only trap.
//!
//! Property-based tests drive the decoder, validator, and interpreter with
//! random bytes and random (structurally valid) instruction streams.

use distrust::sandbox::{Export, Function, Instance, Instr, Limits, Module, NoHost};
use distrust::wire::Decode;
use proptest::prelude::*;

/// Random instruction generator covering the whole ISA with plausible-ish
/// operand ranges (small indexes/targets so validation sometimes passes).
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        any::<u64>().prop_map(Instr::Const),
        (0u16..8).prop_map(Instr::LocalGet),
        (0u16..8).prop_map(Instr::LocalSet),
        Just(Instr::Add),
        Just(Instr::Sub),
        Just(Instr::Mul),
        Just(Instr::DivU),
        Just(Instr::RemU),
        Just(Instr::And),
        Just(Instr::Or),
        Just(Instr::Xor),
        Just(Instr::Shl),
        Just(Instr::ShrU),
        Just(Instr::Rotr),
        Just(Instr::Eq),
        Just(Instr::Ne),
        Just(Instr::LtU),
        Just(Instr::GtU),
        Just(Instr::LeU),
        Just(Instr::GeU),
        (0u32..40).prop_map(Instr::JumpIfZero),
        (0u32..40).prop_map(Instr::JumpIfNonZero),
        (0u32..40).prop_map(Instr::Jump),
        (0u16..3).prop_map(Instr::Call),
        (0u16..3).prop_map(Instr::HostCall),
        Just(Instr::Return),
        (0u32..100_000).prop_map(Instr::Load8),
        (0u32..100_000).prop_map(Instr::Load64),
        (0u32..100_000).prop_map(Instr::Store8),
        (0u32..100_000).prop_map(Instr::Store64),
        Just(Instr::MemSize),
        Just(Instr::MemGrow),
        Just(Instr::Drop),
        Just(Instr::Dup),
        Just(Instr::Swap),
        Just(Instr::Select),
        Just(Instr::Trap),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the module decoder.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Module::from_wire(&bytes);
    }

    /// Random instruction streams: either the validator rejects the module
    /// or execution terminates with a result/trap — never a panic, never a
    /// hang (fuel-bounded).
    #[test]
    fn random_programs_are_contained(
        code in proptest::collection::vec(arb_instr(), 1..64),
        params in 0u16..3,
        locals in 0u16..6,
        returns in 0u16..2,
        args in proptest::collection::vec(any::<u64>(), 0..3),
    ) {
        let module = Module {
            imports: vec![],
            functions: vec![Function { params, locals, returns, code }],
            exports: vec![Export { name: "f".into(), function: 0 }],
            data: vec![],
            initial_pages: 1,
            max_pages: 2,
        };
        if module.validate().is_err() {
            return Ok(()); // rejected statically — fine
        }
        let limits = Limits {
            fuel: 200_000,
            max_stack: 1024,
            max_call_depth: 16,
        };
        let Ok(mut inst) = Instance::new(module, limits) else {
            return Ok(());
        };
        if args.len() != params as usize {
            return Ok(()); // arity mismatch is tested elsewhere
        }
        // Must return, in bounded time, without panicking.
        let _ = inst.invoke("f", &args, &mut NoHost);
    }

    /// A random program can never write outside its linear memory: after
    /// execution, host-side memory beyond the instance is untouched (the
    /// type system guarantees this; here we assert the instance's own
    /// memory stays within its declared maximum).
    #[test]
    fn memory_never_exceeds_max(
        code in proptest::collection::vec(arb_instr(), 1..48),
    ) {
        let module = Module {
            imports: vec![],
            functions: vec![Function { params: 0, locals: 4, returns: 0, code }],
            exports: vec![Export { name: "f".into(), function: 0 }],
            data: vec![],
            initial_pages: 1,
            max_pages: 3,
        };
        if module.validate().is_err() {
            return Ok(());
        }
        let limits = Limits {
            fuel: 100_000,
            max_stack: 512,
            max_call_depth: 8,
        };
        let Ok(mut inst) = Instance::new(module, limits) else {
            return Ok(());
        };
        let _ = inst.invoke("f", &[], &mut NoHost);
        prop_assert!(inst.memory.len() <= 3 * distrust::sandbox::PAGE_SIZE);
    }
}

// Instruction round-trip fuzz: encode/decode of random instruction
// streams is the identity (the measurement hash depends on it).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn instruction_streams_round_trip(code in proptest::collection::vec(arb_instr(), 0..64)) {
        use distrust::wire::Encode;
        let module = Module {
            imports: vec![],
            functions: vec![Function { params: 0, locals: 0, returns: 0, code }],
            exports: vec![],
            data: vec![],
            initial_pages: 1,
            max_pages: 1,
        };
        let bytes = module.to_wire();
        let back = Module::from_wire(&bytes).expect("round trip");
        prop_assert_eq!(back, module);
    }
}
