//! Witness-cosigned trust end to end: a thin client establishes trust in
//! a full deployment by verifying ONE aggregated BLS signature, fetched
//! from a relay over a real socket, instead of auditing all `n` domains —
//! plus the evidence-poisoning regression: transferable misbehavior
//! evidence delivered *between* two fan-outs excludes the convicted
//! domain from the second one.

use distrust::apps::key_backup::{self, KeyBackupClient};
use distrust::core::witness::{exchange_gossip, fetch_witness_head, WitnessRelay};
use distrust::core::{Deployment, DomainOutcome, FanoutCall, TrustPolicy};
use distrust::crypto::drbg::HmacDrbg;
use distrust::crypto::schnorr::{SigningKey, VerifyingKey};
use distrust::crypto::threshold;
use distrust::gossip::envelope::GossipEnvelope;
use distrust::gossip::evidence::EvidenceBundle;
use distrust::gossip::witness::{QuorumAggregator, Witness};
use distrust::log::checkpoint::{CheckpointBody, EquivocationProof, SignedCheckpoint};

fn checkpoint_keys(deployment: &Deployment) -> Vec<VerifyingKey> {
    deployment
        .descriptor
        .domains
        .iter()
        .map(|d| d.checkpoint_key)
        .collect()
}

#[test]
fn thin_client_trusts_via_one_cosignature() {
    let deployment =
        Deployment::launch(key_backup::app_spec(3), b"witness e2e seed").expect("launch");
    let vks = checkpoint_keys(&deployment);

    // An operator-side auditor collects every domain's current signed
    // checkpoint the usual way (full batched audit).
    let mut operator = deployment.client(b"operator");
    let report = operator.audit(None);
    assert!(report.is_clean(), "{report:?}");
    let mut observed = operator.gossip_payload();
    observed.sort_by_key(|(d, _)| *d);
    assert_eq!(observed.len(), 3, "one head per domain");
    let heads: Vec<SignedCheckpoint> = observed.into_iter().map(|(_, cp)| cp).collect();

    // A 2-of-3 witness quorum independently verifies the head set and
    // cosigns it.
    let mut rng = HmacDrbg::new(b"witness e2e seed", b"quorum");
    let quorum = threshold::generate(2, 3, &mut rng).expect("keygen");
    let bodies: Vec<CheckpointBody> = heads.iter().map(|cp| cp.body.clone()).collect();
    let mut agg = QuorumAggregator::new(quorum.commitments.clone(), bodies);
    for share in quorum.shares.iter().take(2) {
        let mut witness = Witness::new(*share, vks.clone());
        let partial = witness.observe_and_sign(&heads).expect("honest heads");
        assert!(agg.add(partial));
    }
    assert!(agg.ready());
    let cosigned = agg.cosign().expect("aggregate");

    // The relay publishes the cosigned head; a thin client fetches it
    // over one socket exchange — relay mode: one response covers all n
    // domains.
    let relay = WitnessRelay::spawn(vks).expect("relay");
    relay.install(cosigned);
    let fetched = fetch_witness_head(relay.addr())
        .expect("relay reachable")
        .expect("head installed");

    // The thin client's whole trust establishment: one aggregated
    // signature verification. Zero audit traffic, batched or legacy.
    let mut thin = deployment.client(b"thin client");
    let mut session = thin.session(TrustPolicy::witnessed(quorum.public_key, 2));
    session
        .install_cosigned_head(&fetched)
        .expect("quorum signature verifies");
    let backup = KeyBackupClient::new(2);
    let mut user_rng = HmacDrbg::new(b"thin client rng", b"");
    let token = [7u8; 32];
    let commitment = backup
        .backup(&mut session, 42, &token, b"sixteen byte key", &mut user_rng)
        .expect("first app call under witnessed trust");
    assert_eq!(
        session.cosign_verifications(),
        1,
        "exactly one aggregated-signature verification establishes trust"
    );
    let stats = session.client().audit_stats();
    assert_eq!(
        (stats.batched_domains, stats.fallback_domains),
        (0, 0),
        "the witnessed session never audited any domain"
    );

    // The session keeps working (the head stays fresh by default policy).
    let recovered = backup
        .recover(&mut session, 42, &token, &commitment)
        .expect("recover");
    assert_eq!(recovered, b"sixteen byte key".to_vec());
    assert_eq!(session.cosign_verifications(), 1);

    // A forged cosignature (wrong quorum) is refused outright.
    let mut other_rng = HmacDrbg::new(b"witness e2e seed", b"other-quorum");
    let other = threshold::generate(2, 3, &mut other_rng).expect("keygen");
    let mut thin2 = deployment.client(b"thin client 2");
    let mut session2 = thin2.session(TrustPolicy::witnessed(other.public_key, 2));
    assert!(session2.install_cosigned_head(&fetched).is_err());
}

/// Forges domain 0's out-of-band equivocation. Domain 0 runs without
/// secure hardware and checkpoint-signs with a key derived from the
/// launch seed, so the test can play "domain 0 showed a different log to
/// somebody else" without touching the live deployment.
fn forged_evidence(seed: &[u8]) -> EvidenceBundle {
    let key = SigningKey::derive(seed, b"domain-0-checkpoint");
    let lid = distrust::log::checkpoint::log_id(b"out-of-band", 0);
    let cp = |head: u8| {
        SignedCheckpoint::sign(
            CheckpointBody {
                log_id: lid,
                size: 9,
                head: [head; 32],
                logical_time: 9,
            },
            &key,
        )
    };
    EvidenceBundle {
        domain: 0,
        proof: EquivocationProof {
            a: cp(0xaa),
            b: cp(0xbb),
        },
    }
}

#[test]
fn evidence_between_fanouts_untrusts_the_domain_mid_session() {
    let seed = b"evidence mid-session seed";
    let deployment = Deployment::launch(key_backup::app_spec(3), seed).expect("launch");
    let mut client = deployment.client(b"user");
    let mut session = client.session(TrustPolicy::audited());

    // First fan-out: the gating audit passes and domain 0 participates.
    let first = session
        .fanout(&FanoutCall::broadcast(key_backup::METHOD_RECOVER, vec![]))
        .expect("gate passes");
    assert!(
        !matches!(first.outcome(0), Some(DomainOutcome::Untrusted(_))),
        "domain 0 starts trusted: {first:?}"
    );

    // Between two fan-outs, transferable evidence arrives out of band —
    // gossip from a peer who caught domain 0 equivocating elsewhere.
    let bundle = forged_evidence(seed);
    assert!(session.ingest_evidence(&bundle), "evidence verifies");
    assert!(!session.ingest_evidence(&bundle), "duplicates are dropped");

    // The very next fan-out excludes the convicted domain — no re-audit
    // needed, and no waiting for staleness to expire.
    let second = session
        .fanout(&FanoutCall::broadcast(key_backup::METHOD_RECOVER, vec![]))
        .expect("other domains still serve");
    assert!(
        matches!(second.outcome(0), Some(DomainOutcome::Untrusted(_))),
        "convicted domain must be refused: {second:?}"
    );
    for d in 1..3u32 {
        assert!(
            !matches!(second.outcome(d), Some(DomainOutcome::Untrusted(_))),
            "innocent domain {d} stays trusted"
        );
    }
    assert!(session.client().convicted(0));

    // Poisoning survives a forced re-audit: a clean audit round does not
    // un-convict a domain with cryptographic evidence against it.
    session.refresh_trust().expect("audit still passes");
    assert_eq!(session.trusted_domains(), vec![1, 2]);

    // Framing an innocent domain fails: the same proof pointed at domain
    // 1 does not verify under domain 1's key.
    let mut frame = forged_evidence(seed);
    frame.domain = 1;
    assert!(!session.ingest_evidence(&frame));
    assert_eq!(session.trusted_domains(), vec![1, 2]);
}

#[test]
fn relay_spreads_transferable_evidence() {
    let seed = b"relay evidence seed";
    let deployment = Deployment::launch(key_backup::app_spec(2), seed).expect("launch");
    let vks = checkpoint_keys(&deployment);
    let mut relay = WitnessRelay::spawn(vks).expect("relay");

    // A peer who holds evidence pushes it to the relay…
    let mut victim = deployment.client(b"victim");
    assert!(victim.ingest_evidence(&forged_evidence(seed)));
    let reply = exchange_gossip(relay.addr(), &victim.gossip_envelope()).expect("push");
    assert_eq!(reply.evidence.len(), 1, "relay verified and holds it");
    assert_eq!(relay.convicted_domains(), vec![0]);

    // …and a fresh client who has never met the victim learns it from
    // the relay and convicts the same domain.
    let mut newcomer = deployment.client(b"newcomer");
    let news = exchange_gossip(relay.addr(), &GossipEnvelope::empty()).expect("pull");
    let discovered = newcomer.ingest_envelope(&news);
    assert!(!discovered.is_empty(), "evidence is news to the newcomer");
    assert!(newcomer.convicted(0));
    relay.shutdown();
}
