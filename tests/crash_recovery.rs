//! Crash-recovery: the durable store must make a restart indistinguishable
//! from a pause, for any way the process can die.
//!
//! Two layers are exercised. At the **log** layer, a kill-at-every-offset
//! matrix truncates (and bit-flips) the on-disk segment bytes and asserts
//! the invariant the recovery algorithm promises: the recovered shard
//! commitment equals the commitment of some *prefix* of the pre-crash
//! history — never a panic, never a root the log did not once have. At the
//! **framework** layer, a restarted domain must resume its *signed*
//! history: the persisted genesis/epoch checkpoints are reused (re-signing
//! would look like equivocation), so an auditing client holding the
//! pre-crash head sees ordinary growth.

use distrust::core::abi::{AppHost, NoImports, HANDLE_EXPORT, OUTBOX_ADDR};
use distrust::core::framework::{EnclaveFramework, FrameworkConfig};
use distrust::core::{AppSpec, Deployment, Request, Response, SignedRelease};
use distrust::crypto::schnorr::SigningKey;
use distrust::log::auditor::Auditor;
use distrust::log::checkpoint::log_id;
use distrust::log::{DurableOptions, MerkleLog, ShardedLog, StorageConfig, StoreError};
use distrust::sandbox::{FuncBuilder, Limits, Module, ModuleBuilder};
use std::path::{Path, PathBuf};

/// Method 1 returns `base + input[0]`.
fn adder_module(base: u64) -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    let mut f = FuncBuilder::new(3, 0, 1);
    f.constant(OUTBOX_ADDR)
        .lget(1)
        .load8(0)
        .constant(base)
        .add()
        .store8(0)
        .constant(1)
        .ret();
    let idx = mb.function(f.build().unwrap());
    mb.export(HANDLE_EXPORT, idx);
    mb.build()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "distrust-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable(dir: &Path, segment_bytes: u64) -> StorageConfig {
    StorageConfig::Durable(DurableOptions {
        dir: dir.to_path_buf(),
        segment_bytes,
        fsync_every: 1,
    })
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Shard-0 segment files of a 1-shard log, in segment order.
fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".dlog"))
        })
        .collect();
    files.sort();
    files
}

/// Builds a 1-shard durable log with enough leaves to span several
/// segments, returning its directory and a mirror of every prefix root:
/// `mirror.root_of_prefix(k)` is the commitment the log had at `k` leaves
/// (for one shard the snapshot commitment IS the tree root, byte for byte
/// — so this doubles as the legacy wire-format compatibility check).
fn seeded_log(tag: &str, leaves: usize) -> (PathBuf, MerkleLog) {
    let dir = tempdir(tag);
    let (log, meta) = ShardedLog::open(1, &durable(&dir, 192)).unwrap();
    assert!(meta.is_empty());
    let mut mirror = MerkleLog::new();
    for i in 0..leaves {
        let leaf = format!("leaf-{i:04}");
        log.append(0, leaf.as_bytes()).unwrap();
        mirror.append(leaf.as_bytes());
        assert_eq!(
            log.commitment(),
            mirror.root_of_prefix(i + 1),
            "1-shard durable log must stay byte-compatible with the plain tree"
        );
    }
    (dir, mirror)
}

/// Opens the (possibly damaged) copy and asserts the recovery invariant:
/// some prefix of the pre-crash history, identical commitment, and the
/// log keeps working. Returns the recovered length.
fn assert_recovers_to_prefix(dir: &Path, mirror: &MerkleLog, context: &str) -> usize {
    let (log, _) = ShardedLog::open(1, &durable(dir, 192))
        .unwrap_or_else(|e| panic!("{context}: recovery must not fail: {e}"));
    let recovered = log.total_len() as usize;
    assert!(
        recovered <= mirror.len(),
        "{context}: recovered {recovered} leaves, only {} ever existed",
        mirror.len()
    );
    assert_eq!(
        log.commitment(),
        mirror.root_of_prefix(recovered),
        "{context}: recovered root must be the exact pre-crash prefix root"
    );
    // The repaired log must accept appends and keep agreeing with a
    // mirror that took the same path.
    let mut extended = MerkleLog::new();
    for leaf in mirror.leaves_from(0).unwrap().iter().take(recovered) {
        extended.append(leaf);
    }
    log.append(0, b"post-crash").unwrap();
    extended.append(b"post-crash");
    assert_eq!(
        log.commitment(),
        extended.root(),
        "{context}: post-repair append diverged"
    );
    recovered
}

#[test]
fn truncating_the_tail_at_every_byte_offset_recovers_a_prefix() {
    let (dir, mirror) = seeded_log("trunc", 28);
    let files = segment_files(&dir);
    assert!(
        files.len() >= 3,
        "need rotation: got {} segments",
        files.len()
    );
    let tail = files.last().unwrap();
    let tail_name = tail.file_name().unwrap().to_owned();
    let tail_len = std::fs::metadata(tail).unwrap().len();

    // Leaves safely inside sealed segments survive any tail damage.
    let sealed_floor = {
        let scratch = tempdir("trunc-floor");
        copy_dir(&dir, &scratch);
        std::fs::remove_file(scratch.join(&tail_name)).unwrap();
        let (log, _) = ShardedLog::open(1, &durable(&scratch, 192)).unwrap();
        let floor = log.total_len() as usize;
        let _ = std::fs::remove_dir_all(&scratch);
        floor
    };

    let scratch = tempdir("trunc-case");
    for cut in 0..tail_len {
        copy_dir(&dir, &scratch);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(scratch.join(&tail_name))
            .unwrap();
        file.set_len(cut).unwrap();
        drop(file);
        let recovered =
            assert_recovers_to_prefix(&scratch, &mirror, &format!("truncated tail at {cut}"));
        assert!(
            recovered >= sealed_floor,
            "truncating the tail at {cut} lost sealed history: {recovered} < {sealed_floor}"
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipping_any_byte_anywhere_recovers_a_prefix() {
    let (dir, mirror) = seeded_log("flip", 28);
    let scratch = tempdir("flip-case");
    for file in segment_files(&dir) {
        let name = file.file_name().unwrap().to_owned();
        let len = std::fs::metadata(&file).unwrap().len();
        for at in 0..len {
            copy_dir(&dir, &scratch);
            let path = scratch.join(&name);
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[at as usize] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            assert_recovers_to_prefix(&scratch, &mirror, &format!("bit flip in {name:?} at {at}"));
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multi_shard_restart_resumes_identical_commitment() {
    let dir = tempdir("multishard");
    let storage = durable(&dir, 256);
    let (before_snapshot, before_lens) = {
        let (log, _) = ShardedLog::open(4, &storage).unwrap();
        for i in 0..40 {
            log.append_routed(format!("key-{i}").as_bytes(), format!("val-{i}").as_bytes())
                .unwrap();
        }
        log.sync().unwrap();
        let lens: Vec<u64> = (0..4).map(|s| log.shard_len(s).unwrap()).collect();
        (log.snapshot(), lens)
    };
    let (log, _) = ShardedLog::open(4, &storage).unwrap();
    assert_eq!(
        log.snapshot(),
        before_snapshot,
        "restart changed the snapshot"
    );
    for (s, len) in before_lens.iter().enumerate() {
        assert_eq!(log.shard_len(s as u32), Some(*len));
    }
    // Routing and appends continue where they left off.
    log.append_routed(b"key-40", b"val-40").unwrap();
    assert_eq!(log.total_len(), 41);
    let _ = std::fs::remove_dir_all(&dir);
}

fn framework_config(shards: u32, dev: &SigningKey, storage: StorageConfig) -> FrameworkConfig {
    FrameworkConfig {
        domain_index: 0,
        app_name: "adder".into(),
        developer_key: dev.verifying_key(),
        log_id: log_id(b"crash", 0),
        limits: Limits::default(),
        log_shards: shards,
        storage,
    }
}

/// The satellite regression: restart a domain, then re-audit with a
/// client that verified the pre-crash head. Any re-signing of old history
/// (fresh genesis, shifted epoch) would surface as misbehavior here.
fn restart_keeps_auditor_consistent(shards: u32) {
    let dir = tempdir(&format!("fw-restart-{shards}"));
    let storage = durable(&dir, 4 << 20);
    let dev = SigningKey::derive(b"crash", b"dev");
    let cp_key = SigningKey::derive(b"crash", b"cp");
    let mut auditor = Auditor::new(vec![cp_key.verifying_key()]);

    let observe = |auditor: &mut Auditor, fw: &mut EnclaveFramework, id: u64| {
        let verified = auditor.latest(0).map(|cp| cp.body.size).unwrap_or(0);
        let request = Request::BatchAudit {
            request_id: id,
            nonce: [id as u8; 32],
            verified_size: verified,
        };
        match fw.handle(request) {
            Response::AuditBundle(b) => auditor.observe_bundle(0, &b.bundle),
            Response::ShardAuditBundle(b) => auditor.observe_shard_bundle(0, &b.bundle),
            other => panic!("expected an audit bundle, got {other:?}"),
        }
    };

    let (pre_size, pre_head) = {
        let mut fw = EnclaveFramework::open(
            framework_config(shards, &dev, storage.clone()),
            None,
            cp_key,
            Box::new(NoImports),
        )
        .unwrap();
        let v1 = SignedRelease::create("adder", 1, "v1", &adder_module(100), &dev);
        fw.apply_update(&v1).expect("v1 applies");
        let v2 = SignedRelease::create("adder", 2, "v2", &adder_module(200), &dev);
        fw.apply_update(&v2).expect("v2 applies");
        assert!(
            observe(&mut auditor, &mut fw, 1).is_consistent(),
            "pre-crash audit must be clean"
        );
        let status = fw.status();
        (status.log_size, status.log_head)
    }; // domain crashes here

    let mut fw = EnclaveFramework::open(
        framework_config(shards, &dev, storage),
        None,
        cp_key,
        Box::new(NoImports),
    )
    .expect("restart recovers");

    // The log resumed exactly where it crashed, and the version floor
    // survived even though the app instance did not.
    let status = fw.status();
    assert_eq!(status.log_size, pre_size, "restart changed the log size");
    assert_eq!(status.log_head, pre_head, "restart changed the log head");
    assert_eq!(
        fw.current_version(),
        2,
        "recovered notices must floor the version"
    );
    let replay = SignedRelease::create("adder", 2, "v2 again", &adder_module(200), &dev);
    assert!(
        matches!(
            fw.apply_update(&replay),
            Err(distrust::core::ReleaseError::StaleVersion {
                current: 2,
                offered: 2
            })
        ),
        "a replayed pre-crash version must stay stale after restart"
    );

    // The pre-crash auditor sees ordinary growth — no equivocation, no
    // rollback — both right after the restart and across a new release.
    assert!(
        observe(&mut auditor, &mut fw, 2).is_consistent(),
        "restart must look like a pause to an auditor holding the pre-crash head"
    );
    assert_eq!(auditor.latest(0).unwrap().body.size, pre_size);
    let v3 = SignedRelease::create("adder", 3, "v3", &adder_module(300), &dev);
    fw.apply_update(&v3).expect("post-restart update applies");
    assert!(
        observe(&mut auditor, &mut fw, 3).is_consistent(),
        "post-restart growth must chain onto the recovered history"
    );
    assert_eq!(auditor.latest(0).unwrap().body.size, pre_size + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restarted_domain_resumes_signed_history_one_shard() {
    restart_keeps_auditor_consistent(1);
}

#[test]
fn restarted_domain_resumes_signed_history_four_shards() {
    restart_keeps_auditor_consistent(4);
}

#[test]
fn missing_log_behind_signed_history_refuses_to_boot() {
    // Signed checkpoints say two entries exist; the segment files are
    // gone. Serving the shorter log would equivocate against the domain's
    // own signatures, so boot must refuse — loudly, not by resetting.
    let dir = tempdir("lost-history");
    let storage = durable(&dir, 4 << 20);
    let dev = SigningKey::derive(b"lost", b"dev");
    let cp_key = SigningKey::derive(b"lost", b"cp");
    {
        let mut fw = EnclaveFramework::open(
            framework_config(1, &dev, storage.clone()),
            None,
            cp_key,
            Box::new(NoImports),
        )
        .unwrap();
        let v1 = SignedRelease::create("adder", 1, "v1", &adder_module(100), &dev);
        fw.apply_update(&v1).expect("v1 applies");
        let v2 = SignedRelease::create("adder", 2, "v2", &adder_module(200), &dev);
        fw.apply_update(&v2).expect("v2 applies");
    }
    for file in segment_files(&dir) {
        std::fs::remove_file(file).unwrap();
    }
    match EnclaveFramework::open(
        framework_config(1, &dev, storage),
        None,
        cp_key,
        Box::new(NoImports),
    ) {
        Err(StoreError::LostSignedHistory {
            signed: 2,
            recovered: 0,
        }) => {}
        Err(other) => panic!("expected LostSignedHistory, got {other:?}"),
        Ok(_) => panic!("boot must refuse a log shorter than its signed history"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_deployment_survives_a_full_restart_end_to_end() {
    // The whole stack over real sockets: launch durably, update, kill
    // every domain, relaunch on the same directory, and keep serving.
    let dir = tempdir("deploy");
    let spec = |base: u64| AppSpec {
        name: "adder".into(),
        module: adder_module(base),
        notes: "v1".into(),
        hosts: (0..2)
            .map(|_| Box::new(NoImports) as Box<dyn AppHost>)
            .collect(),
        limits: Limits::default(),
    };

    let mut deployment =
        Deployment::launch_durable(spec(100), b"durable e2e", 1, &dir).expect("fresh launch");
    let mut client = deployment.client(b"auditor");
    assert!(client
        .audit(Some(&deployment.initial_app_digest))
        .is_clean());
    let v2 = deployment.sign_release(2, "v2", &adder_module(200));
    for result in client.push_update(&v2) {
        result.expect("v2 accepted");
    }
    assert!(client.audit(None).is_clean());
    drop(client);
    deployment.shutdown();
    drop(deployment);

    // Relaunch over the recovered logs. Version 1 is not re-pushed (the
    // logs prove both domains already activated it); the app instance is
    // gone until the next release arrives.
    let deployment =
        Deployment::launch_durable(spec(100), b"durable e2e", 1, &dir).expect("relaunch recovers");
    let mut client = deployment.client(b"auditor-2");
    let v3 = deployment.sign_release(3, "v3", &adder_module(300));
    for result in client.push_update(&v3) {
        result.expect("post-restart update accepted");
    }
    let report = client.audit(None);
    assert!(report.is_clean(), "{report:?}");
    // The recovered log holds all three releases, not just the new one.
    let entries = client.log_entries(0, 0).unwrap();
    assert_eq!(
        entries.len(),
        3,
        "v1 + v2 + v3 digests survived the restart"
    );
    // And the app serves again on the new release.
    let mut session = client.session(distrust::core::session::TrustPolicy::audited());
    assert_eq!(
        session.call(1, 1, &[5]).unwrap(),
        vec![49u8],
        "300 + 5 = 305 = 0x131, low byte 0x31"
    );
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}
