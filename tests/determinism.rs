//! Determinism: reproducible deployments and canonical encodings.
//!
//! Auditing only works if both sides compute identical bytes: module
//! digests, log leaves, checkpoint signing preimages. These tests pin the
//! determinism assumptions the whole transparency story rests on.

use distrust::apps::{analytics, threshold_signer};
use distrust::core::Deployment;
use distrust::crypto::drbg::HmacDrbg;
use distrust::wire::Encode;

#[test]
fn same_seed_same_identities() {
    // Two deployments from one seed have identical keys, measurements and
    // app digests (only the ephemeral ports differ) — so descriptors can
    // be distributed out-of-band and re-derived by anyone with the seed.
    let d1 = Deployment::launch(analytics::app_spec(3), b"determinism seed").unwrap();
    let d2 = Deployment::launch(analytics::app_spec(3), b"determinism seed").unwrap();
    assert_eq!(
        d1.descriptor.developer_key.to_bytes(),
        d2.descriptor.developer_key.to_bytes()
    );
    assert_eq!(d1.initial_app_digest, d2.initial_app_digest);
    assert_eq!(
        d1.descriptor.expected_measurement(),
        d2.descriptor.expected_measurement()
    );
    for (a, b) in d1.descriptor.domains.iter().zip(&d2.descriptor.domains) {
        assert_eq!(a.vendor, b.vendor);
        assert_eq!(a.checkpoint_key.to_bytes(), b.checkpoint_key.to_bytes());
    }
    // Different seed → different identities.
    let d3 = Deployment::launch(analytics::app_spec(3), b"other seed").unwrap();
    assert_ne!(
        d1.descriptor.developer_key.to_bytes(),
        d3.descriptor.developer_key.to_bytes()
    );
}

#[test]
fn module_digests_are_stable_across_processes() {
    // The digest of a module built twice from the same source is
    // byte-identical — the property that lets auditors recompile published
    // code and compare against attested digests.
    let m1 = analytics::analytics_module();
    let m2 = analytics::analytics_module();
    assert_eq!(m1.digest(), m2.digest());
    assert_eq!(m1.to_wire(), m2.to_wire());

    let s1 = threshold_signer::signer_module();
    let s2 = threshold_signer::signer_module();
    assert_eq!(s1.digest(), s2.digest());
}

#[test]
fn partial_signatures_identical_across_execution_environments() {
    // The crux of the Table 3 comparison: all execution environments are
    // measuring the SAME computation. Native signing and the in-sandbox
    // field-call ladder must agree bit-for-bit on every share and message.
    use distrust::core::abi::import_names;
    use distrust::sandbox::{Instance, Limits};

    let mut rng = HmacDrbg::new(b"determinism", b"threshold");
    let keys = distrust::crypto::threshold::generate(2, 3, &mut rng).unwrap();
    let module = threshold_signer::signer_module();
    let names = import_names(&module);
    for share in &keys.shares {
        for msg in [b"alpha".as_slice(), b"beta", b"gamma"] {
            let native = threshold_signer::sign_native(share, msg);
            let mut inst = Instance::new(module.clone(), Limits::default()).unwrap();
            let mut host = threshold_signer::SignerHost::new(*share);
            let sandboxed =
                threshold_signer::sign_in_sandbox(&mut inst, &names, &mut host, msg).unwrap();
            assert_eq!(native, sandboxed, "share {} msg {:?}", share.index, msg);
        }
    }
}

#[test]
fn log_leaves_identical_across_domains() {
    // Every domain must compute the identical leaf bytes for the same
    // release, or cross-domain digest comparison would be vacuous.
    let deployment = Deployment::launch(analytics::app_spec(4), b"leaf determinism").unwrap();
    let mut client = deployment.client(b"auditor");
    let reference = client.log_entries(0, 0).unwrap();
    assert!(!reference.is_empty());
    for d in 1..4 {
        assert_eq!(client.log_entries(d, 0).unwrap(), reference, "domain {d}");
    }
}
