//! §3.3 lockdown: "for highly sensitive applications, a developer might
//! consider disabling her ability to push code updates to defend against
//! future compromise." A final release permanently locks every domain.

use distrust::core::abi::{AppHost, HANDLE_EXPORT, OUTBOX_ADDR};
use distrust::core::{AppSpec, ClientError, Deployment, NoImports};
use distrust::sandbox::{FuncBuilder, Limits, Module, ModuleBuilder};

fn versioned_module(version: u64) -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    let mut f = FuncBuilder::new(3, 0, 1);
    f.constant(OUTBOX_ADDR)
        .constant(version)
        .store8(0)
        .constant(1)
        .ret();
    let idx = mb.function(f.build().unwrap());
    mb.export(HANDLE_EXPORT, idx);
    mb.build()
}

#[test]
fn final_release_locks_all_domains() {
    let spec = AppSpec {
        name: "vault".into(),
        module: versioned_module(1),
        notes: "v1".into(),
        hosts: (0..3)
            .map(|_| Box::new(NoImports) as Box<dyn AppHost>)
            .collect(),
        limits: Limits::default(),
    };
    let deployment = Deployment::launch(spec, b"lockdown seed").expect("launch");
    let mut client = deployment.client(b"auditor");

    // Push the final release (v2) and verify activation.
    let final_release = deployment.sign_final_release(2, "v2 FINAL", &versioned_module(2));
    assert!(final_release.manifest.locks_updates);
    for r in client.push_update(&final_release) {
        r.expect("final release accepted");
    }
    assert_eq!(client.call(0, 1, b"").unwrap(), vec![2]);

    // Even the DEVELOPER cannot push v3 anymore — the whole point: a
    // future developer compromise cannot alter the running code.
    let v3 = deployment.sign_release(3, "post-lock", &versioned_module(3));
    for r in client.push_update(&v3) {
        match r {
            Err(ClientError::UpdateRejected(msg)) => {
                assert!(msg.contains("locked"), "unexpected: {msg}");
            }
            other => panic!("expected lock rejection, got {other:?}"),
        }
    }
    // Behaviour frozen at v2; audit stays clean; log history immutable at
    // two entries.
    assert_eq!(client.call(0, 1, b"").unwrap(), vec![2]);
    let report = client.audit(Some(&final_release.digest()));
    assert!(report.is_clean(), "{report:?}");
    for d in 0..3 {
        assert_eq!(client.log_entries(d, 0).unwrap().len(), 2);
    }
}

#[test]
fn lock_bit_is_covered_by_the_signature() {
    // An attacker cannot take a signed non-final release and flip the lock
    // bit (or vice versa): `locks_updates` is part of the signed manifest.
    let spec = AppSpec {
        name: "vault".into(),
        module: versioned_module(1),
        notes: "v1".into(),
        hosts: vec![Box::new(NoImports) as Box<dyn AppHost>],
        limits: Limits::default(),
    };
    let deployment = Deployment::launch(spec, b"lockbit seed").expect("launch");
    let mut client = deployment.client(b"auditor");

    let mut tampered = deployment.sign_release(2, "v2", &versioned_module(2));
    tampered.manifest.locks_updates = true; // flip after signing
    for r in client.push_update(&tampered) {
        match r {
            Err(ClientError::UpdateRejected(msg)) => {
                assert!(msg.contains("signature"), "unexpected: {msg}");
            }
            other => panic!("expected signature rejection, got {other:?}"),
        }
    }
}

#[test]
fn lockdown_survives_through_notices() {
    // Clients can see from the notice history that a deployment is locked
    // (the final manifest is in every notice list and log).
    let spec = AppSpec {
        name: "vault".into(),
        module: versioned_module(1),
        notes: "v1".into(),
        hosts: (0..2)
            .map(|_| Box::new(NoImports) as Box<dyn AppHost>)
            .collect(),
        limits: Limits::default(),
    };
    let deployment = Deployment::launch(spec, b"lock notice seed").expect("launch");
    let mut client = deployment.client(b"auditor");
    let final_release = deployment.sign_final_release(2, "FINAL", &versioned_module(2));
    for r in client.push_update(&final_release) {
        r.expect("accepted");
    }
    for d in 0..2 {
        let notices = client.notices(d, 0).unwrap();
        let last = notices.last().unwrap();
        assert!(
            last.manifest.locks_updates,
            "domain {d} notice carries lock bit"
        );
    }
}
