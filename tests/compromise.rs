//! The compromise matrix: which guarantees survive which corruptions.
//!
//! * Figure 1: a compromised application developer (full control of trust
//!   domain 0 + the developer credentials) cannot recover users' backed-up
//!   keys.
//! * §3.2: a single-vendor TEE exploit forges attestation for that
//!   vendor's domains only; heterogeneous hardware bounds the blast
//!   radius, and cross-domain digest comparison still detects divergence.

use distrust::apps::key_backup::{self, KeyBackupClient, RecoverStatus};
use distrust::core::framework::framework_measurement;
use distrust::core::protocol::{AttestationBinding, DomainStatus};
use distrust::core::{Deployment, TrustPolicy};
use distrust::crypto::drbg::HmacDrbg;
use distrust::crypto::gf256;
use distrust::tee::attest::{AttestationDocument, PlatformEvidence, Quote};
use distrust::tee::vendor::{DeviceCert, VendorKind};
use distrust::wire::Encode;

#[test]
fn figure1_compromised_developer_cannot_recover_user_key() {
    // n = 4 domains, recovery threshold t = 3.
    let deployment = Deployment::launch(key_backup::app_spec(4), b"figure 1 seed").expect("launch");
    let mut user_client = deployment.client(b"user");
    let mut user = user_client.session(TrustPolicy::pinned(deployment.initial_app_digest));
    let backup = KeyBackupClient::new(3);

    let secret = b"user signal identity key 0123456";
    let token = [0x5a; 32];
    let mut rng = HmacDrbg::new(b"user entropy", b"");
    let commitment = backup
        .backup(&mut user, 7777, &token, secret, &mut rng)
        .expect("backup");

    // Honest recovery works.
    let recovered = backup
        .recover(&mut user, 7777, &token, &commitment)
        .expect("recover");
    assert_eq!(recovered, secret);

    // THE ATTACK. The adversary compromises the developer: it owns trust
    // domain 0 outright (reads all its state) and holds the developer's
    // credentials. What it does NOT have: the user's token, or the state
    // of domains 1..3 (independent trust domains).
    //
    // (a) Domain 0's stored share alone is information-theoretically
    //     useless: any 2 < t shares are consistent with EVERY possible
    //     secret. We demonstrate by brute-force consistency: combining the
    //     attacker's share with arbitrary forged shares produces arbitrary
    //     "secrets".
    let mut rng = HmacDrbg::new(b"attacker", b"");
    let shares = gf256::split(secret, 3, 4, &mut rng).expect("re-split for illustration");
    let stolen = shares[0].clone(); // what domain 0 holds (x = 1)
    let mut candidates = std::collections::HashSet::new();
    for forged_byte in 0..=255u8 {
        let forged_a = gf256::ByteShare {
            x: 2,
            data: vec![forged_byte; secret.len()],
        };
        let forged_b = gf256::ByteShare {
            x: 3,
            data: vec![0x77; secret.len()],
        };
        let guess = gf256::combine(&[stolen.clone(), forged_a, forged_b], 3).unwrap();
        candidates.insert(guess);
    }
    // 256 distinct forgeries → 256 distinct "secrets": the share pins
    // nothing down.
    assert_eq!(candidates.len(), 256);

    // (b) The attacker cannot extract shares from the honest domains
    //     without the token: guest-side auth refuses, then rate-limits.
    let mut attacker_client = deployment.client(b"attacker-client");
    let mut attacker = attacker_client.session(TrustPolicy::audited());
    for attempt in 0..key_backup::MAX_ATTEMPTS {
        let wrong_token = [attempt as u8; 32];
        for d in 1..4u32 {
            let status = backup
                .recover_share(&mut attacker, d, 7777, &wrong_token)
                .expect("protocol works");
            assert_eq!(status, RecoverStatus::BadToken, "attempt {attempt}");
        }
    }
    // Budget exhausted: domains 1..3 now refuse even plausible guesses.
    for d in 1..4u32 {
        let status = backup
            .recover_share(&mut attacker, d, 7777, &[0x5a; 32])
            .expect("protocol works");
        assert_eq!(status, RecoverStatus::RateLimited);
    }

    // (c) The real user with the real token is also rate-limited now —
    //     availability is lost until reset, but CONFIDENTIALITY held: the
    //     attacker never obtained t shares. (The paper's threat model: the
    //     developer must not be a central point of *attack*.)
}

#[test]
fn vendor_exploit_forges_attestation_for_that_vendor_only() {
    // Launch any deployment to obtain a realistic descriptor + vendors.
    let deployment =
        Deployment::launch(key_backup::app_spec(4), b"vendor exploit seed").expect("launch");
    let descriptor = &deployment.descriptor;
    let measurement = framework_measurement(&descriptor.developer_key, &descriptor.app_name);

    // The attacker exploits the SGX-like vendor: leaks its root key.
    let sgx_vendor = deployment
        .vendors
        .iter()
        .find(|v| v.kind() == VendorKind::SgxSim)
        .expect("sgx vendor");
    let stolen_root = sgx_vendor.leak_root_key();

    // Forge a complete quote: fake device, fake cert, arbitrary claimed
    // status (e.g. claiming to run the honest code while running anything).
    let mut rng = HmacDrbg::new(b"attacker device", b"");
    let fake_device_key = distrust::crypto::schnorr::SigningKey::generate(&mut rng);
    let device_id = [0x66; 16];
    let cert_msg = {
        // Reconstruct the cert signing preimage via the public API: a
        // legitimately provisioned device yields the format; we forge by
        // signing the same structure with the stolen root.
        let mut out = b"distrust/tee/device-cert/v1".to_vec();
        VendorKind::SgxSim.encode(&mut out);
        device_id.encode(&mut out);
        out.extend_from_slice(&fake_device_key.verifying_key().to_bytes());
        out
    };
    let forged_cert = DeviceCert {
        vendor: VendorKind::SgxSim,
        device_id,
        device_key: fake_device_key.verifying_key(),
        signature: stolen_root.sign(&cert_msg),
    };
    let lying_status = DomainStatus {
        domain_index: 1,
        app_digest: [0xde; 32], // not what's really running anywhere
        app_version: 1,
        log_size: 1,
        log_head: [0xad; 32],
        framework_measurement: measurement,
    };
    let binding = AttestationBinding {
        nonce: [0x11; 32],
        status: lying_status,
    };
    let document = AttestationDocument {
        vendor: VendorKind::SgxSim,
        device_id,
        measurement,
        user_data: binding.to_wire(),
        logical_time: 1,
        evidence: PlatformEvidence::Sgx {
            mr_enclave: measurement,
            mr_signer: [0; 32],
            isv_svn: 1,
        },
    };
    let forged_quote = Quote {
        signature: fake_device_key.sign(&document.signing_bytes()),
        document,
        cert: forged_cert,
    };

    // The forged SGX quote passes verification — a vendor exploit defeats
    // attestation for THAT vendor (why the paper refuses to put the whole
    // system inside one TEE type).
    forged_quote
        .verify(&descriptor.vendor_roots, Some(&measurement), None)
        .expect("vendor compromise forges its own ecosystem");

    // But the same stolen root cannot forge Nitro or Keystone quotes: the
    // cert chains to the wrong pinned root.
    for other in [VendorKind::NitroSim, VendorKind::KeystoneSim] {
        let mut cross = forged_quote.clone();
        cross.document.vendor = other;
        cross.cert.vendor = other;
        cross.document.evidence = match other {
            VendorKind::NitroSim => PlatformEvidence::Nitro {
                pcrs: vec![measurement],
                module_id: "i-forged".into(),
            },
            _ => PlatformEvidence::Keystone {
                sm_hash: [0; 32],
                runtime_hash: measurement,
            },
        };
        cross.signature = fake_device_key.sign(&cross.document.signing_bytes());
        // Re-sign the cert with the stolen (SGX) root — but the verifier
        // checks against the *other* vendor's pinned root.
        assert!(
            cross
                .verify(&descriptor.vendor_roots, Some(&measurement), None)
                .is_err(),
            "{:?} quote must not verify with an SGX root signature",
            other
        );
    }
}

/// Trust gating: a session whose policy cannot be satisfied refuses to
/// let a single application byte through — and says why.
#[test]
fn trust_gate_refuses_calls_after_failed_audit() {
    use distrust::core::session::FanoutCall;
    use distrust::core::ClientError;

    let deployment =
        Deployment::launch(key_backup::app_spec(3), b"trust gate seed").expect("launch");
    let backup = KeyBackupClient::new(2);
    let mut rng = distrust::crypto::drbg::HmacDrbg::new(b"gated user", b"");

    // The user pins the digest of code the deployment is NOT running
    // (e.g. the developer published one source tree and deployed
    // another). The gating audit fails, and the session refuses the app
    // call — the user never stores a single share on the lying
    // deployment.
    let mut client = deployment.client(b"gated user");
    let mut session = client.session(TrustPolicy::pinned([0xee; 32]));
    let err = backup
        .backup(&mut session, 42, &[7u8; 32], b"secret", &mut rng)
        .expect_err("gate must refuse");
    assert!(
        matches!(err, ClientError::AuditFailed(_)),
        "expected AuditFailed, got {err:?}"
    );
    let report = session.last_audit().expect("the audit did run");
    assert!(!report.is_clean(), "pinned digest must fail the audit");
    assert!(session.trusted_domains().is_empty());

    // Single-domain calls are refused the same way.
    let err = session
        .call(0, key_backup::METHOD_RECOVER, b"")
        .unwrap_err();
    assert!(matches!(err, ClientError::AuditFailed(_)), "{err:?}");

    // Raw fan-outs too — the gate sits below every app entry point.
    let err = session
        .fanout(&FanoutCall::broadcast(key_backup::METHOD_RECOVER, vec![]))
        .unwrap_err();
    assert!(matches!(err, ClientError::AuditFailed(_)), "{err:?}");

    // Nothing reached any domain: every store is still empty... which we
    // verify by auditing correctly and recovering nothing.
    drop(session);
    let mut honest = client.session(TrustPolicy::pinned(deployment.initial_app_digest));
    let status = backup
        .recover_share(&mut honest, 0, 42, &[7u8; 32])
        .expect("protocol");
    assert_eq!(status, RecoverStatus::UnknownUser, "no share was stored");

    // And with the correct pin, the same user on the same deployment
    // works end to end: the gate is the only thing that changed.
    let commitment = backup
        .backup(&mut honest, 42, &[7u8; 32], b"secret", &mut rng)
        .expect("honest backup");
    let recovered = backup
        .recover(&mut honest, 42, &[7u8; 32], &commitment)
        .expect("honest recovery");
    assert_eq!(recovered, b"secret".to_vec());
}

#[test]
fn heterogeneity_bounds_the_blast_radius() {
    // In a 4-domain deployment (domain 0 unattested + 3 TEE domains round-
    // robin across 3 vendors), one vendor exploit undermines exactly one
    // attested domain. The client's cross-domain digest comparison spans
    // all n domains, so a lying minority is detected as divergence.
    let deployment =
        Deployment::launch(key_backup::app_spec(4), b"blast radius seed").expect("launch");
    let vendors: Vec<_> = deployment
        .descriptor
        .domains
        .iter()
        .map(|d| d.vendor)
        .collect();
    assert_eq!(vendors[0], None);
    let unique: std::collections::HashSet<_> = vendors[1..].iter().map(|v| v.unwrap()).collect();
    assert_eq!(unique.len(), 3, "three distinct vendors across 3 domains");

    // An honest audit is clean; the attested majority pins the true digest.
    let mut client = deployment.client(b"auditor");
    let report = client.audit(Some(&deployment.initial_app_digest));
    assert!(report.is_clean());
    // If one domain (vendor-compromised) were to report a different
    // digest, digests_agree would flip — exercised here structurally by
    // checking the comparison covers all four domains.
    assert_eq!(report.domains.len(), 4);
    let digests: Vec<_> = report
        .domains
        .iter()
        .map(|d| d.status.as_ref().unwrap().app_digest)
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
}
