//! Concurrency: a deployment must serve many clients at once without
//! corrupting state — audits, app calls, and updates interleaved from
//! multiple threads.

use distrust::apps::analytics::{self, AnalyticsClient};
use distrust::core::{Deployment, TrustPolicy};
use distrust::crypto::drbg::HmacDrbg;
use distrust::wire::rpc::{EventLoopRpcServer, RpcClient};
use distrust::wire::transport::max_open_files;
use std::sync::{Arc, Barrier};

/// 500 independent auditors batch-auditing one trust domain through the
/// readiness event loop, every request in flight at once, each response
/// matched back by request id and fully verified client-side — extends
/// PR 2's cross-connection regression to the batched audit path.
#[test]
fn event_loop_sustains_500_concurrent_batch_auditors() {
    use distrust::core::abi::NoImports;
    use distrust::core::framework::{EnclaveFramework, FrameworkConfig, FrameworkService};
    use distrust::core::protocol::{Request, Response};
    use distrust::core::server::DirectHost;
    use distrust::core::SignedRelease;
    use distrust::crypto::schnorr::SigningKey;
    use distrust::log::auditor::Auditor;
    use distrust::log::checkpoint::log_id;
    use distrust::log::StorageConfig;
    use distrust::sandbox::guests::counter_module;
    use distrust::sandbox::Limits;
    use distrust::wire::transport::{TcpTransport, Transport};
    use distrust::wire::{Decode, Encode};

    let dev = SigningKey::derive(b"batch audit load", b"developer");
    let checkpoint_key = SigningKey::derive(b"batch audit load", b"checkpoint");
    let mut fw = EnclaveFramework::open(
        FrameworkConfig {
            domain_index: 0,
            app_name: "audited".into(),
            developer_key: dev.verifying_key(),
            log_id: log_id(b"batch-load", 0),
            limits: Limits::default(),
            log_shards: 1,
            storage: StorageConfig::Ephemeral,
        },
        None,
        checkpoint_key,
        Box::new(NoImports),
    )
    .unwrap();
    let release = SignedRelease::create("audited", 1, "", &counter_module(1), &dev);
    let expected_status = fw.apply_update(&release).expect("v1 installs");
    // DirectHost serves through EventLoopRpcServer (raw-frame mode).
    let mut host = DirectHost::spawn(FrameworkService::new(fw)).expect("spawn");
    let addr = host.addr();
    let vk = checkpoint_key.verifying_key();

    let workers = 8usize;
    let mut per_worker = 63usize; // 8 × 63 = 504 concurrent auditors
    if let Some(limit) = max_open_files() {
        let budget = limit.saturating_sub(200) / 2 / workers;
        if budget < per_worker {
            per_worker = budget.max(1);
            eprintln!(
                "fd limit {limit}: scaling to {} concurrent auditors",
                workers * per_worker
            );
        }
    }
    let rounds = 2u64;
    let barrier = Arc::new(Barrier::new(workers));

    let mut joins = Vec::new();
    for w in 0..workers {
        let barrier = Arc::clone(&barrier);
        let expected_status = expected_status.clone();
        joins.push(std::thread::spawn(move || {
            let mut conns: Vec<(TcpTransport, Auditor)> = (0..per_worker)
                .map(|_| {
                    (
                        TcpTransport::connect(addr).expect("connect"),
                        Auditor::new(vec![vk]),
                    )
                })
                .collect();
            // All ~500 connections are open before any traffic flows.
            barrier.wait();
            for round in 0..rounds {
                // Phase 1: every auditor's request is in flight before any
                // response is read; ids are globally unique so a response
                // delivered to the wrong connection cannot go unnoticed.
                for (i, (t, auditor)) in conns.iter_mut().enumerate() {
                    let global = (w * per_worker + i) as u64;
                    let request_id = round * 1_000_000 + global + 1;
                    let mut nonce = [0u8; 32];
                    nonce[..8].copy_from_slice(&global.to_le_bytes());
                    nonce[8..16].copy_from_slice(&round.to_le_bytes());
                    let verified_size = auditor.latest(0).map(|cp| cp.body.size).unwrap_or(0);
                    t.send(
                        &Request::BatchAudit {
                            request_id,
                            nonce,
                            verified_size,
                        }
                        .to_wire(),
                    )
                    .expect("send");
                }
                // Phase 2: collect and fully verify.
                for (i, (t, auditor)) in conns.iter_mut().enumerate() {
                    let global = (w * per_worker + i) as u64;
                    let expected_id = round * 1_000_000 + global + 1;
                    let frame = t.recv().expect("recv");
                    let response = Response::from_wire(&frame).expect("decode");
                    let Response::AuditBundle(bundle) = response else {
                        panic!("expected audit bundle, got {response:?}");
                    };
                    assert_eq!(
                        bundle.request_id, expected_id,
                        "cross-client response mix-up (worker {w}, conn {i}, round {round})"
                    );
                    // The report is clean: bundle verifies and matches the
                    // installed release's attested status.
                    assert!(
                        auditor.observe_bundle(0, &bundle.bundle).is_consistent(),
                        "auditor {global} flagged an honest domain"
                    );
                    let last = bundle.bundle.checkpoints.last().expect("non-empty");
                    assert_eq!(last.body.size, expected_status.log_size);
                    assert_eq!(last.body.head, expected_status.log_head);
                }
            }
            // Round 2 was served entirely from the verified prefix: one
            // signature verified per auditor in total, never two.
            for (_, auditor) in &conns {
                let cache = auditor.prefix_cache(0).expect("domain 0");
                assert_eq!(cache.signatures_verified(), 1);
                assert!(cache.skipped() >= 1);
            }
        }));
    }
    for j in joins {
        j.join().expect("worker panicked");
    }
    host.shutdown();
}

#[test]
fn many_concurrent_submitters() {
    let n_domains = 3;
    let deployment = Arc::new(
        Deployment::launch(analytics::app_spec(n_domains), b"concurrency seed").expect("launch"),
    );
    let dims = 2;
    let threads = 6;
    let per_thread = 10u64;

    let mut joins = Vec::new();
    for t in 0..threads {
        let deployment = Arc::clone(&deployment);
        joins.push(std::thread::spawn(move || {
            let mut client = deployment.client(format!("client {t}").as_bytes());
            let mut session = client.session(TrustPolicy::audited());
            let analytics_client = AnalyticsClient::new(dims);
            let mut rng = HmacDrbg::new(b"thread rng", &[t as u8]);
            for i in 0..per_thread {
                analytics_client
                    .submit(&mut session, &[1, i], &mut rng)
                    .expect("submit");
            }
        }));
    }
    for j in joins {
        j.join().expect("thread panicked");
    }

    // All submissions landed exactly once on every domain.
    let mut analyst_client = deployment.client(b"analyst");
    let mut analyst = analyst_client.session(TrustPolicy::audited());
    let analytics_client = AnalyticsClient::new(dims);
    let (totals, count) = analytics_client.aggregate(&mut analyst).expect("aggregate");
    assert_eq!(count, threads as u64 * per_thread);
    assert_eq!(totals[0], threads as u64 * per_thread);
    let per_thread_sum: u64 = (0..per_thread).sum();
    assert_eq!(totals[1], threads as u64 * per_thread_sum);
}

#[test]
fn concurrent_audits_and_calls() {
    let deployment = Arc::new(
        Deployment::launch(analytics::app_spec(3), b"audit concurrency seed").expect("launch"),
    );
    let digest = deployment.initial_app_digest;
    let mut joins = Vec::new();
    // Three auditors and three submitters at once.
    for t in 0..3 {
        let deployment = Arc::clone(&deployment);
        joins.push(std::thread::spawn(move || {
            let mut client = deployment.client(format!("auditor {t}").as_bytes());
            for _ in 0..5 {
                let report = client.audit(Some(&digest));
                assert!(report.is_clean(), "{report:?}");
            }
        }));
    }
    for t in 0..3 {
        let deployment = Arc::clone(&deployment);
        joins.push(std::thread::spawn(move || {
            let mut client = deployment.client(format!("submitter {t}").as_bytes());
            let mut session = client.session(TrustPolicy::audited());
            let analytics_client = AnalyticsClient::new(1);
            let mut rng = HmacDrbg::new(b"s", &[t as u8]);
            for _ in 0..10 {
                analytics_client
                    .submit(&mut session, &[1], &mut rng)
                    .expect("submit");
            }
        }));
    }
    for j in joins {
        j.join().expect("thread panicked");
    }
}

#[test]
fn event_loop_sustains_1000_concurrent_clients() {
    // 1000 connections held open simultaneously, multiplexed on a fixed
    // pool: 4 reactor threads + 1 accept thread, far under the 1000 OS
    // threads the blocking server would need.
    let handler = Arc::new(|req: u64| -> Result<u64, String> { Ok(req.wrapping_mul(31) ^ 0xd15) });
    let mut server = EventLoopRpcServer::spawn::<u64, u64, _>(handler).expect("spawn");
    let addr = server.local_addr();

    let workers = 8usize;
    // 8 × 125 = 1000 concurrent connections, scaled down only when the fd
    // budget is too tight (stock 1024-fd boxes) to hold 2000 sockets plus
    // the process's own files.
    let mut per_worker = 125usize;
    if let Some(limit) = max_open_files() {
        let budget = limit.saturating_sub(200) / 2 / workers;
        if budget < per_worker {
            per_worker = budget.max(1);
            eprintln!(
                "fd limit {limit}: scaling to {} concurrent clients",
                workers * per_worker
            );
        }
    }
    let rounds = 3u64;
    let barrier = Arc::new(Barrier::new(workers));

    let mut joins = Vec::new();
    for w in 0..workers {
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            let mut clients: Vec<_> = (0..per_worker)
                .map(|_| RpcClient::connect(addr).expect("connect"))
                .collect();
            // All 1000 connections are open before any traffic flows.
            barrier.wait();
            for round in 0..rounds {
                for (i, client) in clients.iter_mut().enumerate() {
                    let req = (w * per_worker + i) as u64 * 10 + round;
                    let resp: u64 = client.call(&req).expect("call");
                    assert_eq!(resp, req.wrapping_mul(31) ^ 0xd15);
                }
            }
        }));
    }
    for j in joins {
        j.join().expect("worker panicked");
    }
    server.shutdown();
}

/// Fan-out under partial failure: one domain dies mid-session. A
/// `Threshold(t)` quorum keeps succeeding from the survivors; an `All`
/// fan-out reports exactly the dead domain (as a connection loss, not an
/// application error) while still returning every live domain's answer.
#[test]
fn fanout_tolerates_domain_death_mid_session() {
    use distrust::core::session::{DomainOutcome, FanoutCall, QuorumPolicy};

    let mut deployment =
        Deployment::launch(analytics::app_spec(4), b"fanout partial failure seed").expect("launch");
    let mut client = deployment.client(b"fanout user");
    let mut session = client.session(TrustPolicy::pinned(deployment.initial_app_digest));

    // Healthy deployment: an All fan-out reaches all four domains. (This
    // also runs the gating audit while everyone is still alive.)
    let report = session
        .fanout(&FanoutCall::broadcast(analytics::METHOD_COUNT, Vec::new()))
        .expect("fanout");
    assert!(report.satisfied, "{report:?}");
    assert_eq!(report.ok_count(), 4);

    // Kill domain 2 mid-session.
    deployment.shutdown_domain(2);

    // Threshold(3) still succeeds: the three survivors answer and the
    // dead domain's silence costs nothing but its own outcome slot.
    let report = session
        .fanout(
            &FanoutCall::broadcast(analytics::METHOD_COUNT, Vec::new())
                .quorum(QuorumPolicy::Threshold(3)),
        )
        .expect("fanout");
    assert!(report.satisfied, "{report:?}");
    assert!(report.ok_count() >= 3, "{report:?}");
    assert!(
        !report.outcomes[2].is_ok(),
        "dead domain cannot have answered: {report:?}"
    );

    // All reports exactly the dead domain — per-domain outcomes, not a
    // first-error bail-out, and the loss is distinguishable from an
    // application error.
    let report = session
        .fanout(&FanoutCall::broadcast(analytics::METHOD_COUNT, Vec::new()))
        .expect("fanout");
    assert!(!report.satisfied);
    assert!(matches!(
        report.require(),
        Err(distrust::core::ClientError::QuorumNotMet {
            satisfied: 3,
            required: 4
        })
    ));
    for d in [0u32, 1, 3] {
        assert!(
            report.outcomes[d as usize].is_ok(),
            "live domain {d}: {report:?}"
        );
    }
    assert!(
        matches!(
            &report.outcomes[2],
            DomainOutcome::ConnectionLost(_) | DomainOutcome::Failed(_)
        ),
        "dead domain outcome: {:?}",
        report.outcomes[2]
    );

    // The session as a whole keeps working for quorum-tolerant apps.
    let report = session
        .fanout(
            &FanoutCall::broadcast(analytics::METHOD_COUNT, Vec::new())
                .quorum(QuorumPolicy::First(1)),
        )
        .expect("fanout");
    assert!(report.satisfied);
}

#[test]
fn update_during_traffic_is_atomic() {
    // Clients calling during an update see either v1 or v2 behaviour,
    // never an error from a half-applied update; afterwards all domains
    // converge on v2.
    use distrust::core::abi::{AppHost, HANDLE_EXPORT, OUTBOX_ADDR};
    use distrust::core::{AppSpec, NoImports};
    use distrust::sandbox::{FuncBuilder, Limits, Module, ModuleBuilder};

    fn versioned(version: u64) -> Module {
        let mut mb = ModuleBuilder::new(1, 1);
        let mut f = FuncBuilder::new(3, 0, 1);
        f.constant(OUTBOX_ADDR)
            .constant(version)
            .store8(0)
            .constant(1)
            .ret();
        let idx = mb.function(f.build().unwrap());
        mb.export(HANDLE_EXPORT, idx);
        mb.build()
    }

    let spec = AppSpec {
        name: "atomic".into(),
        module: versioned(1),
        notes: "v1".into(),
        hosts: (0..2)
            .map(|_| Box::new(NoImports) as Box<dyn AppHost>)
            .collect(),
        limits: Limits::default(),
    };
    let deployment = Arc::new(Deployment::launch(spec, b"atomic seed").expect("launch"));

    let mut joins = Vec::new();
    // Callers hammer both domains.
    for t in 0..4 {
        let deployment = Arc::clone(&deployment);
        joins.push(std::thread::spawn(move || {
            let mut client = deployment.client(format!("caller {t}").as_bytes());
            for i in 0..50 {
                let out = client.call(i % 2, 1, b"").expect("call never errors");
                assert!(out == vec![1] || out == vec![2], "saw {out:?}");
            }
        }));
    }
    // The developer pushes v2 mid-traffic.
    {
        let deployment = Arc::clone(&deployment);
        joins.push(std::thread::spawn(move || {
            let release = deployment.sign_release(2, "v2", &versioned(2));
            let mut client = deployment.client(b"developer");
            for r in client.push_update(&release) {
                r.expect("update accepted");
            }
        }));
    }
    for j in joins {
        j.join().expect("thread panicked");
    }
    // Convergence.
    let mut client = deployment.client(b"final check");
    for d in 0..2 {
        assert_eq!(client.call(d, 1, b"").unwrap(), vec![2]);
    }
}
