//! Concurrency: a deployment must serve many clients at once without
//! corrupting state — audits, app calls, and updates interleaved from
//! multiple threads.

use distrust::apps::analytics::{self, AnalyticsClient};
use distrust::core::Deployment;
use distrust::crypto::drbg::HmacDrbg;
use distrust::wire::rpc::{EventLoopRpcServer, RpcClient};
use distrust::wire::transport::max_open_files;
use std::sync::{Arc, Barrier};

#[test]
fn many_concurrent_submitters() {
    let n_domains = 3;
    let deployment = Arc::new(
        Deployment::launch(analytics::app_spec(n_domains), b"concurrency seed").expect("launch"),
    );
    let dims = 2;
    let threads = 6;
    let per_thread = 10u64;

    let mut joins = Vec::new();
    for t in 0..threads {
        let deployment = Arc::clone(&deployment);
        joins.push(std::thread::spawn(move || {
            let mut client = deployment.client(format!("client {t}").as_bytes());
            let analytics_client = AnalyticsClient::new(dims);
            let mut rng = HmacDrbg::new(b"thread rng", &[t as u8]);
            for i in 0..per_thread {
                analytics_client
                    .submit(&mut client, &[1, i], &mut rng)
                    .expect("submit");
            }
        }));
    }
    for j in joins {
        j.join().expect("thread panicked");
    }

    // All submissions landed exactly once on every domain.
    let mut analyst = deployment.client(b"analyst");
    let analytics_client = AnalyticsClient::new(dims);
    let (totals, count) = analytics_client.aggregate(&mut analyst).expect("aggregate");
    assert_eq!(count, threads as u64 * per_thread);
    assert_eq!(totals[0], threads as u64 * per_thread);
    let per_thread_sum: u64 = (0..per_thread).sum();
    assert_eq!(totals[1], threads as u64 * per_thread_sum);
}

#[test]
fn concurrent_audits_and_calls() {
    let deployment = Arc::new(
        Deployment::launch(analytics::app_spec(3), b"audit concurrency seed").expect("launch"),
    );
    let digest = deployment.initial_app_digest;
    let mut joins = Vec::new();
    // Three auditors and three submitters at once.
    for t in 0..3 {
        let deployment = Arc::clone(&deployment);
        joins.push(std::thread::spawn(move || {
            let mut client = deployment.client(format!("auditor {t}").as_bytes());
            for _ in 0..5 {
                let report = client.audit(Some(&digest));
                assert!(report.is_clean(), "{report:?}");
            }
        }));
    }
    for t in 0..3 {
        let deployment = Arc::clone(&deployment);
        joins.push(std::thread::spawn(move || {
            let mut client = deployment.client(format!("submitter {t}").as_bytes());
            let analytics_client = AnalyticsClient::new(1);
            let mut rng = HmacDrbg::new(b"s", &[t as u8]);
            for _ in 0..10 {
                analytics_client
                    .submit(&mut client, &[1], &mut rng)
                    .expect("submit");
            }
        }));
    }
    for j in joins {
        j.join().expect("thread panicked");
    }
}

#[test]
fn event_loop_sustains_1000_concurrent_clients() {
    // 1000 connections held open simultaneously, multiplexed on a fixed
    // pool: 4 reactor threads + 1 accept thread, far under the 1000 OS
    // threads the blocking server would need.
    let handler = Arc::new(|req: u64| -> Result<u64, String> { Ok(req.wrapping_mul(31) ^ 0xd15) });
    let mut server = EventLoopRpcServer::spawn::<u64, u64, _>(handler).expect("spawn");
    let addr = server.local_addr();

    let workers = 8usize;
    // 8 × 125 = 1000 concurrent connections, scaled down only when the fd
    // budget is too tight (stock 1024-fd boxes) to hold 2000 sockets plus
    // the process's own files.
    let mut per_worker = 125usize;
    if let Some(limit) = max_open_files() {
        let budget = limit.saturating_sub(200) / 2 / workers;
        if budget < per_worker {
            per_worker = budget.max(1);
            eprintln!(
                "fd limit {limit}: scaling to {} concurrent clients",
                workers * per_worker
            );
        }
    }
    let rounds = 3u64;
    let barrier = Arc::new(Barrier::new(workers));

    let mut joins = Vec::new();
    for w in 0..workers {
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            let mut clients: Vec<_> = (0..per_worker)
                .map(|_| RpcClient::connect(addr).expect("connect"))
                .collect();
            // All 1000 connections are open before any traffic flows.
            barrier.wait();
            for round in 0..rounds {
                for (i, client) in clients.iter_mut().enumerate() {
                    let req = (w * per_worker + i) as u64 * 10 + round;
                    let resp: u64 = client.call(&req).expect("call");
                    assert_eq!(resp, req.wrapping_mul(31) ^ 0xd15);
                }
            }
        }));
    }
    for j in joins {
        j.join().expect("worker panicked");
    }
    server.shutdown();
}

#[test]
fn update_during_traffic_is_atomic() {
    // Clients calling during an update see either v1 or v2 behaviour,
    // never an error from a half-applied update; afterwards all domains
    // converge on v2.
    use distrust::core::abi::{AppHost, HANDLE_EXPORT, OUTBOX_ADDR};
    use distrust::core::{AppSpec, NoImports};
    use distrust::sandbox::{FuncBuilder, Limits, Module, ModuleBuilder};

    fn versioned(version: u64) -> Module {
        let mut mb = ModuleBuilder::new(1, 1);
        let mut f = FuncBuilder::new(3, 0, 1);
        f.constant(OUTBOX_ADDR)
            .constant(version)
            .store8(0)
            .constant(1)
            .ret();
        let idx = mb.function(f.build().unwrap());
        mb.export(HANDLE_EXPORT, idx);
        mb.build()
    }

    let spec = AppSpec {
        name: "atomic".into(),
        module: versioned(1),
        notes: "v1".into(),
        hosts: (0..2)
            .map(|_| Box::new(NoImports) as Box<dyn AppHost>)
            .collect(),
        limits: Limits::default(),
    };
    let deployment = Arc::new(Deployment::launch(spec, b"atomic seed").expect("launch"));

    let mut joins = Vec::new();
    // Callers hammer both domains.
    for t in 0..4 {
        let deployment = Arc::clone(&deployment);
        joins.push(std::thread::spawn(move || {
            let mut client = deployment.client(format!("caller {t}").as_bytes());
            for i in 0..50 {
                let out = client.call(i % 2, 1, b"").expect("call never errors");
                assert!(out == vec![1] || out == vec![2], "saw {out:?}");
            }
        }));
    }
    // The developer pushes v2 mid-traffic.
    {
        let deployment = Arc::clone(&deployment);
        joins.push(std::thread::spawn(move || {
            let release = deployment.sign_release(2, "v2", &versioned(2));
            let mut client = deployment.client(b"developer");
            for r in client.push_update(&release) {
                r.expect("update accepted");
            }
        }));
    }
    for j in joins {
        j.join().expect("thread panicked");
    }
    // Convergence.
    let mut client = deployment.client(b"final check");
    for d in 0..2 {
        assert_eq!(client.call(d, 1, b"").unwrap(), vec![2]);
    }
}
