//! Protocol robustness: trust domains face the open network, so the
//! request decoder and the framework dispatcher must survive arbitrary
//! bytes — answering with error frames, never crashing or hanging.

use distrust::core::abi::{NoImports, HANDLE_EXPORT, OUTBOX_ADDR};
use distrust::core::framework::{EnclaveFramework, FrameworkConfig, FrameworkService};
use distrust::core::protocol::{Request, Response};
use distrust::core::SignedRelease;
use distrust::crypto::drbg::HmacDrbg;
use distrust::crypto::schnorr::SigningKey;
use distrust::log::StorageConfig;
use distrust::sandbox::guests::counter_module;
use distrust::sandbox::{FuncBuilder, Instr, Limits, Module, ModuleBuilder};
use distrust::tee::host::EnclaveService;
use distrust::tee::{Vendor, VendorKind};
use distrust::wire::{Decode, Encode};
use proptest::prelude::*;

fn service() -> FrameworkService {
    let dev = SigningKey::derive(b"protocol fuzz", b"dev");
    FrameworkService::new(
        EnclaveFramework::open(
            FrameworkConfig {
                domain_index: 0,
                app_name: "fuzzed".into(),
                developer_key: dev.verifying_key(),
                log_id: [1; 32],
                limits: Limits::default(),
                log_shards: 1,
                storage: StorageConfig::Ephemeral,
            },
            None,
            SigningKey::derive(b"protocol fuzz", b"cp"),
            Box::new(NoImports),
        )
        .unwrap(),
    )
}

/// A service with three installed releases, so batched audit responses
/// carry real multi-checkpoint bundles with consistency steps.
fn service_with_history() -> FrameworkService {
    let dev = SigningKey::derive(b"protocol fuzz", b"dev");
    let mut svc = service();
    for v in 1..=3u64 {
        let release = SignedRelease::create("fuzzed", v, "", &counter_module(v), &dev);
        svc.framework_mut().apply_update(&release).expect("applies");
    }
    svc
}

/// A 4-shard service with three installed releases, so batched audits are
/// answered with the sharded bundle shape (`Response::ShardAuditBundle`).
fn sharded_service_with_history() -> FrameworkService {
    let dev = SigningKey::derive(b"protocol fuzz", b"dev");
    let mut svc = FrameworkService::new(
        EnclaveFramework::open(
            FrameworkConfig {
                domain_index: 0,
                app_name: "fuzzed".into(),
                developer_key: dev.verifying_key(),
                log_id: [2; 32],
                limits: Limits::default(),
                log_shards: 4,
                storage: StorageConfig::Ephemeral,
            },
            None,
            SigningKey::derive(b"protocol fuzz", b"cp-sharded"),
            Box::new(NoImports),
        )
        .unwrap(),
    );
    for v in 1..=3u64 {
        let release = SignedRelease::create("fuzzed", v, "", &counter_module(v), &dev);
        svc.framework_mut().apply_update(&release).expect("applies");
    }
    svc
}

/// A TEE-backed service (simulated vendor + provisioned device):
/// `Request::Attest` is answered with a real `Response::Quote` instead of
/// the unattested fallback.
fn attested_service() -> FrameworkService {
    let dev = SigningKey::derive(b"protocol fuzz", b"dev");
    let vendor = Vendor::new(VendorKind::ALL[0], b"protocol fuzz vendor");
    let mut rng = HmacDrbg::new(b"protocol fuzz", b"device-rng");
    let device = vendor.provision_device(&mut rng);
    let enclave = device.launch([3; 32]);
    let checkpoint_key = enclave.derive_signing_key(b"checkpoint");
    FrameworkService::new(
        EnclaveFramework::open(
            FrameworkConfig {
                domain_index: 1,
                app_name: "fuzzed".into(),
                developer_key: dev.verifying_key(),
                log_id: [3; 32],
                limits: Limits::default(),
                log_shards: 1,
                storage: StorageConfig::Ephemeral,
            },
            Some(enclave),
            checkpoint_key,
            Box::new(NoImports),
        )
        .unwrap(),
    )
}

/// An ABI-speaking echo app: its `handle` export copies the inbox to the
/// outbox, so a successful `AppCall` is answered with a real
/// `Response::AppResult` carrying the request payload back.
fn echo_app_module() -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    // handle(method, addr, len) -> len ; copy byte-by-byte (local 3 = i)
    let mut f = FuncBuilder::new(3, 1, 1);
    f.constant(0).lset(3);
    f.label("loop")
        .lget(3)
        .lget(2)
        .op(Instr::GeU)
        .jnz("done")
        // outbox[i] = inbox[addr + i]
        .constant(OUTBOX_ADDR)
        .lget(3)
        .add()
        .lget(1)
        .lget(3)
        .add()
        .load8(0)
        .store8(0)
        .lget(3)
        .constant(1)
        .add()
        .lset(3)
        .jmp("loop")
        .label("done")
        .lget(2)
        .ret();
    let idx = mb.function(f.build().expect("echo builds"));
    mb.export(HANDLE_EXPORT, idx);
    mb.build()
}

/// A real server-produced `ShardAuditBundle` response frame, cached for
/// verified sizes 0..=5 like its single-tree sibling below.
fn shard_audit_response_frame(verified_size: u64) -> Vec<u8> {
    use std::sync::OnceLock;
    static FRAMES: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    let frames = FRAMES.get_or_init(|| {
        let mut svc = sharded_service_with_history();
        (0..=5u64)
            .map(|vs| {
                let frame = svc.handle(
                    Request::BatchAudit {
                        request_id: 77,
                        nonce: [7; 32],
                        verified_size: vs,
                    }
                    .to_wire(),
                );
                assert!(matches!(
                    Response::from_wire(&frame),
                    Ok(Response::ShardAuditBundle(_))
                ));
                frame
            })
            .collect()
    });
    frames[verified_size as usize].clone()
}

/// A real server-produced `AuditBundle` response frame. Built once per
/// process (release signing is expensive in debug builds) and cached for
/// verified sizes 0..=5.
fn batch_audit_response_frame(verified_size: u64) -> Vec<u8> {
    use std::sync::OnceLock;
    static FRAMES: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    let frames = FRAMES.get_or_init(|| {
        let mut svc = service_with_history();
        (0..=5u64)
            .map(|vs| {
                let frame = svc.handle(
                    Request::BatchAudit {
                        request_id: 99,
                        nonce: [9; 32],
                        verified_size: vs,
                    }
                    .to_wire(),
                );
                assert!(matches!(
                    Response::from_wire(&frame),
                    Ok(Response::AuditBundle(_))
                ));
                frame
            })
            .collect()
    });
    frames[verified_size as usize].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary request bytes always produce a decodable response frame.
    #[test]
    fn garbage_requests_get_error_responses(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut svc = service();
        let response_bytes = svc.handle(bytes);
        let response = Response::from_wire(&response_bytes).expect("response always decodes");
        // With no app installed, everything either errors or reports
        // benign state — but never panics.
        let _ = response;
    }

    /// Request decode/encode round-trips (the framework and the client
    /// must agree byte-for-byte, since responses are hashed into quotes).
    #[test]
    fn structured_requests_round_trip(
        tag in 0u8..10,
        nonce in any::<[u8; 32]>(),
        method in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        number in any::<u64>(),
    ) {
        let request = match tag {
            0 => Request::Attest { nonce },
            1 => Request::GetStatus,
            2 => Request::AppCall { method, payload: payload.clone() },
            3 => Request::GetCheckpoint,
            4 => Request::GetConsistency { old_size: number },
            5 => Request::GetLogEntries { from: number },
            6 => Request::GetNotices { since: number },
            7 => Request::BatchAudit {
                request_id: method,
                nonce,
                verified_size: number,
            },
            _ => Request::GetShardEntries {
                shard: method as u32,
                from: number,
            },
        };
        let wire = request.to_wire();
        prop_assert_eq!(Request::from_wire(&wire), Ok(request));
    }

    /// Truncating a valid request at any point yields a decode error (or a
    /// shorter valid request), never a panic; the service still answers.
    #[test]
    fn truncated_requests_are_handled(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        cut in 0usize..64,
    ) {
        let request = Request::AppCall { method: 1, payload };
        let mut wire = request.to_wire();
        wire.truncate(cut.min(wire.len()));
        let mut svc = service();
        let response_bytes = svc.handle(wire);
        prop_assert!(Response::from_wire(&response_bytes).is_ok());
    }

    /// Truncating a real AuditBundle response at any point must error —
    /// never panic, never decode to a different value.
    #[test]
    fn truncated_audit_bundle_rejected(verified_size in 0u64..5, cut_seed in any::<u64>()) {
        let frame = batch_audit_response_frame(verified_size);
        let cut = (cut_seed as usize) % frame.len();
        prop_assert!(Response::from_wire(&frame[..cut]).is_err());
    }

    /// Flipping any single bit of an AuditBundle response either fails to
    /// decode or decodes to a *different* value — a mutated frame can
    /// never misparse back into the original (canonical encoding), so a
    /// tampered bundle always reaches the verifier visibly changed.
    #[test]
    fn bit_flipped_audit_bundle_never_misparses(
        verified_size in 0u64..5,
        flip_seed in any::<u64>(),
    ) {
        let frame = batch_audit_response_frame(verified_size);
        let original = Response::from_wire(&frame).expect("valid frame decodes");
        let mut mutated = frame.clone();
        let bit = (flip_seed as usize) % (frame.len() * 8);
        mutated[bit / 8] ^= 1 << (bit % 8);
        match Response::from_wire(&mutated) {
            Err(_) => {}
            Ok(decoded) => {
                prop_assert_ne!(decoded, original);
            }
        }
    }

    /// Oversized trailing garbage after a complete AuditBundle is
    /// rejected, not silently dropped.
    #[test]
    fn audit_bundle_with_trailing_bytes_rejected(
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut frame = batch_audit_response_frame(0);
        frame.extend_from_slice(&garbage);
        prop_assert!(Response::from_wire(&frame).is_err());
    }

    /// Truncating a real sharded audit response at any point must error —
    /// never panic, never decode to a different value.
    #[test]
    fn truncated_shard_audit_bundle_rejected(verified_size in 0u64..5, cut_seed in any::<u64>()) {
        let frame = shard_audit_response_frame(verified_size);
        let cut = (cut_seed as usize) % frame.len();
        prop_assert!(Response::from_wire(&frame[..cut]).is_err());
    }

    /// Flipping any single bit of a sharded audit response either fails to
    /// decode or decodes to a *different* value (canonical encoding): a
    /// tampered shard bundle always reaches the verifier visibly changed.
    #[test]
    fn bit_flipped_shard_audit_bundle_never_misparses(
        verified_size in 0u64..5,
        flip_seed in any::<u64>(),
    ) {
        let frame = shard_audit_response_frame(verified_size);
        let original = Response::from_wire(&frame).expect("valid frame decodes");
        let mut mutated = frame.clone();
        let bit = (flip_seed as usize) % (frame.len() * 8);
        mutated[bit / 8] ^= 1 << (bit % 8);
        match Response::from_wire(&mutated) {
            Err(_) => {}
            Ok(decoded) => {
                prop_assert_ne!(decoded, original);
            }
        }
    }

    /// Trailing garbage after a complete sharded audit response is
    /// rejected, not silently dropped.
    #[test]
    fn shard_audit_bundle_with_trailing_bytes_rejected(
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut frame = shard_audit_response_frame(0);
        frame.extend_from_slice(&garbage);
        prop_assert!(Response::from_wire(&frame).is_err());
    }

    /// Arbitrary GetShardEntries parameters — shard indices and offsets
    /// far out of range included — always get a decodable answer back,
    /// never a panic or a hang.
    #[test]
    fn arbitrary_shard_entry_requests_answered(
        shard in any::<u32>(),
        from in any::<u64>(),
        sharded in any::<bool>(),
    ) {
        let mut svc = if sharded { sharded_service_with_history() } else { service() };
        let response_bytes = svc.handle(Request::GetShardEntries { shard, from }.to_wire());
        prop_assert!(Response::from_wire(&response_bytes).is_ok());
    }
}

proptest! {
    // Each case pays release-signing cost; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary BatchAudit parameters — including verified sizes far past
    /// the log head — always get a decodable AuditBundle back, and the
    /// request id is echoed faithfully.
    #[test]
    fn arbitrary_batch_audit_parameters_answered(
        request_id in any::<u64>(),
        nonce in any::<[u8; 32]>(),
        verified_size in any::<u64>(),
        with_history in any::<bool>(),
    ) {
        let mut svc = if with_history { service_with_history() } else { service() };
        let response_bytes = svc.handle(Request::BatchAudit { request_id, nonce, verified_size }.to_wire());
        match Response::from_wire(&response_bytes) {
            Ok(Response::AuditBundle(b)) => {
                prop_assert_eq!(b.request_id, request_id);
                prop_assert!(!b.bundle.checkpoints.is_empty());
            }
            other => prop_assert!(false, "expected audit bundle, got {:?}", other),
        }
    }

    /// The full update-then-call flow over the wire: `Request::Update` is
    /// acknowledged with `Response::UpdateAck`, a stale replay is refused
    /// with `Response::UpdateRejected`, and an `AppCall` into the freshly
    /// installed echo app answers `Response::AppResult` with the request
    /// payload echoed back byte-for-byte.
    #[test]
    fn update_then_app_call_round_trips(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let dev = SigningKey::derive(b"protocol fuzz", b"dev");
        let mut svc = service();
        let release = SignedRelease::create("fuzzed", 1, "", &echo_app_module(), &dev);
        let update = Request::Update { release: release.clone() };
        let wire = update.to_wire();
        // The fan-out fast path stays in lockstep with the Encode impl.
        prop_assert_eq!(&wire, &Request::encode_update(&release));
        let ack = Response::from_wire(&svc.handle(wire.clone()));
        prop_assert!(
            matches!(ack, Ok(Response::UpdateAck { log_size: 1, .. })),
            "expected ack at log size 1, got {:?}",
            ack
        );
        // The same version again is stale; the rejection decodes cleanly.
        let replay = Response::from_wire(&svc.handle(wire));
        prop_assert!(
            matches!(replay, Ok(Response::UpdateRejected(_))),
            "expected rejection, got {:?}",
            replay
        );
        let call = Request::AppCall { method: 0, payload: payload.clone() };
        match Response::from_wire(&svc.handle(call.to_wire())) {
            Ok(Response::AppResult { payload: echoed }) => prop_assert_eq!(echoed, payload),
            other => prop_assert!(false, "expected echoed app result, got {:?}", other),
        }
    }

    /// Truncating an update frame at any point never panics the service —
    /// it always answers with a frame that decodes.
    #[test]
    fn truncated_update_requests_are_handled(cut_seed in any::<u64>()) {
        let dev = SigningKey::derive(b"protocol fuzz", b"dev");
        let release = SignedRelease::create("fuzzed", 1, "", &counter_module(1), &dev);
        let wire = Request::encode_update(&release);
        let cut = (cut_seed as usize) % wire.len();
        let mut svc = service();
        let response_bytes = svc.handle(wire[..cut].to_vec());
        prop_assert!(Response::from_wire(&response_bytes).is_ok());
    }
}

#[test]
fn attest_on_a_tee_domain_answers_with_a_quote() {
    let mut svc = attested_service();
    let frame = svc.handle(Request::Attest { nonce: [5; 32] }.to_wire());
    let response = Response::from_wire(&frame).expect("decodes");
    assert!(
        matches!(response, Response::Quote(_)),
        "expected a quote, got {response:?}"
    );
    // Canonical encoding: re-encoding the decoded quote reproduces the
    // server's exact bytes.
    assert_eq!(response.to_wire(), frame);
}

#[test]
fn consistency_proofs_between_installed_epochs_decode_and_verify() {
    let mut svc = service_with_history(); // log size 3
    let frame = svc.handle(Request::GetConsistency { old_size: 1 }.to_wire());
    match Response::from_wire(&frame).expect("decodes") {
        Response::Consistency(p) => {
            assert_eq!((p.old_size, p.new_size), (1, 3));
            // Canonical encoding: the decoded proof re-encodes to the
            // server's exact bytes.
            assert_eq!(Response::Consistency(p).to_wire(), frame);
        }
        other => panic!("expected consistency proof, got {other:?}"),
    }
    // Past the head: an error frame, still decodable.
    let frame = svc.handle(Request::GetConsistency { old_size: 99 }.to_wire());
    assert!(matches!(
        Response::from_wire(&frame),
        Ok(Response::Error(_))
    ));
}

#[test]
fn audit_bundle_length_bombs_rejected_before_allocation() {
    // A frame claiming a ludicrous checkpoint count must fail fast on the
    // length guard, not attempt the allocation.
    let frame = batch_audit_response_frame(0);
    // The checkpoint sequence length prefix sits right after the tag(1) +
    // request_id(8) + attestation tag(1) + DomainStatus(88) prefix of an
    // unattested bundle; overwrite it with u32::MAX.
    let status_len = distrust::core::DomainStatus {
        domain_index: 0,
        app_digest: [0; 32],
        app_version: 0,
        log_size: 0,
        log_head: [0; 32],
        framework_measurement: [0; 32],
    }
    .to_wire()
    .len();
    let off = 1 + 8 + 1 + status_len;
    let mut bomb = frame.clone();
    bomb[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(Response::from_wire(&bomb).is_err());
    // Sanity: patching the same bytes back decodes again.
    let mut intact = bomb;
    intact[off..off + 4].copy_from_slice(&frame[off..off + 4]);
    assert!(Response::from_wire(&intact).is_ok());
}

#[test]
fn shard_audit_bundle_length_bombs_rejected_before_allocation() {
    // Same layout as the single-tree bundle up to the sequence length
    // prefix: tag(1) + request_id(8) + attestation tag(1) + DomainStatus,
    // then the epoch sequence length. A ludicrous epoch count must fail
    // fast on the length guard, not attempt the allocation.
    let frame = shard_audit_response_frame(0);
    let status_len = distrust::core::DomainStatus {
        domain_index: 0,
        app_digest: [0; 32],
        app_version: 0,
        log_size: 0,
        log_head: [0; 32],
        framework_measurement: [0; 32],
    }
    .to_wire()
    .len();
    let off = 1 + 8 + 1 + status_len;
    let mut bomb = frame.clone();
    bomb[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(Response::from_wire(&bomb).is_err());
    // Sanity: patching the same bytes back decodes again.
    let mut intact = bomb;
    intact[off..off + 4].copy_from_slice(&frame[off..off + 4]);
    assert!(Response::from_wire(&intact).is_ok());
}

#[test]
fn every_request_variant_gets_a_sensible_answer_without_an_app() {
    type ResponseCheck = fn(&Response) -> bool;
    let mut svc = service();
    let cases: Vec<(Request, ResponseCheck)> = vec![
        (Request::GetStatus, |r| matches!(r, Response::Status(_))),
        (Request::Attest { nonce: [0; 32] }, |r| {
            matches!(r, Response::Unattested(_))
        }),
        (
            Request::AppCall {
                method: 1,
                payload: vec![],
            },
            |r| matches!(r, Response::AppError(_)),
        ),
        (Request::GetCheckpoint, |r| {
            matches!(r, Response::Checkpoint(_))
        }),
        (Request::GetConsistency { old_size: 99 }, |r| {
            matches!(r, Response::Error(_))
        }),
        (Request::GetLogEntries { from: 0 }, |r| {
            matches!(r, Response::LogEntries(_))
        }),
        (Request::GetNotices { since: 0 }, |r| {
            matches!(r, Response::Notices(_))
        }),
        (Request::GetShardEntries { shard: 0, from: 0 }, |r| {
            matches!(r, Response::LogEntries(_))
        }),
        (Request::GetShardEntries { shard: 9, from: 0 }, |r| {
            matches!(r, Response::Error(_))
        }),
    ];
    for (request, check) in cases {
        let resp_bytes = svc.handle(request.to_wire());
        let response = Response::from_wire(&resp_bytes).expect("decodes");
        assert!(check(&response), "unexpected response {response:?}");
    }
}

// --- Gossip / witness-head wire surface (epidemic checkpoint exchange) ---
//
// Every encoding added by the gossip subsystem gets the same treatment as
// the audit bundles above: truncation at every cut must error, a single
// flipped bit must never misparse back to the original value, and length
// bombs must die on the guard instead of allocating.

use distrust::gossip::envelope::{GossipEnvelope, GossipHead};
use distrust::gossip::evidence::EvidenceBundle;
use distrust::gossip::witness::{cosign_signing_bytes, CosignedHeads};
use distrust::log::checkpoint::{log_id, CheckpointBody, EquivocationProof, SignedCheckpoint};

fn gossip_checkpoint(domain: u32, head: u8, size: u64) -> SignedCheckpoint {
    let sk = SigningKey::derive(b"protocol fuzz", b"gossip domain");
    SignedCheckpoint::sign(
        CheckpointBody {
            log_id: log_id(b"protocol fuzz", domain),
            size,
            head: [head; 32],
            logical_time: size,
        },
        &sk,
    )
}

fn fuzz_gossip_envelope() -> GossipEnvelope {
    GossipEnvelope {
        heads: vec![
            GossipHead {
                domain: 0,
                checkpoint: gossip_checkpoint(0, 0x11, 4),
            },
            GossipHead {
                domain: 1,
                checkpoint: gossip_checkpoint(1, 0x22, 7),
            },
        ],
        evidence: vec![EvidenceBundle {
            domain: 2,
            proof: EquivocationProof {
                a: gossip_checkpoint(2, 0x33, 5),
                b: gossip_checkpoint(2, 0x44, 5),
            },
        }],
    }
}

fn fuzz_cosigned_heads() -> CosignedHeads {
    let mut rng = HmacDrbg::new(b"protocol fuzz", b"witness quorum");
    let quorum = distrust::crypto::threshold::generate(1, 1, &mut rng).expect("keygen");
    let heads = vec![
        gossip_checkpoint(0, 0x55, 3).body,
        gossip_checkpoint(1, 0x66, 6).body,
    ];
    // With t = 1 a single partial IS the group signature.
    let partial =
        distrust::crypto::threshold::partial_sign(&quorum.shares[0], &cosign_signing_bytes(&heads));
    CosignedHeads {
        heads,
        signature: partial.value,
    }
}

/// Every frame shape the gossip surface puts on the wire: `Gossip` and
/// `WitnessHead` requests, `Gossip` and `WitnessHead` (Some and None)
/// responses. Paired with whether the frame is a request, so the fuzz
/// cases decode each against the right type.
fn gossip_surface_frames() -> Vec<(bool, Vec<u8>)> {
    vec![
        (
            true,
            Request::Gossip {
                envelope: fuzz_gossip_envelope(),
            }
            .to_wire(),
        ),
        (true, Request::WitnessHead.to_wire()),
        (
            false,
            Response::Gossip {
                envelope: fuzz_gossip_envelope(),
            }
            .to_wire(),
        ),
        (
            false,
            Response::WitnessHead {
                cosigned: Some(fuzz_cosigned_heads()),
            }
            .to_wire(),
        ),
        (false, Response::WitnessHead { cosigned: None }.to_wire()),
    ]
}

#[test]
fn gossip_surface_frames_round_trip() {
    for (is_request, frame) in gossip_surface_frames() {
        if is_request {
            let decoded = Request::from_wire(&frame).expect("request decodes");
            assert_eq!(decoded.to_wire(), frame, "canonical request encoding");
        } else {
            let decoded = Response::from_wire(&frame).expect("response decodes");
            assert_eq!(decoded.to_wire(), frame, "canonical response encoding");
        }
    }
}

#[test]
fn gossip_surface_truncation_rejected_at_every_cut() {
    for (is_request, frame) in gossip_surface_frames() {
        for cut in 0..frame.len() {
            let prefix = &frame[..cut];
            let rejected = if is_request {
                Request::from_wire(prefix).is_err()
            } else {
                Response::from_wire(prefix).is_err()
            };
            assert!(
                rejected,
                "prefix of {cut}/{} bytes must not parse",
                frame.len()
            );
        }
    }
}

#[test]
fn gossip_surface_length_bombs_rejected() {
    // A Gossip request claiming u32::MAX heads must die on the length
    // guard without allocating.
    let mut bomb = vec![10u8];
    u32::MAX.encode(&mut bomb);
    assert!(Request::from_wire(&bomb).is_err());
    // Same for the response side.
    bomb[0] = 14;
    assert!(Response::from_wire(&bomb).is_err());
    // A WitnessHead response claiming u32::MAX cosigned heads likewise.
    let mut bomb = vec![15u8, 1u8];
    u32::MAX.encode(&mut bomb);
    assert!(Response::from_wire(&bomb).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Flipping any single bit of any gossip-surface frame either fails
    /// to decode or decodes to a *different* value — canonical encodings
    /// mean a tampered frame can never impersonate the original.
    #[test]
    fn bit_flipped_gossip_frames_never_misparse(
        frame_seed in any::<u64>(),
        flip_seed in any::<u64>(),
    ) {
        let frames = gossip_surface_frames();
        let (is_request, frame) = &frames[(frame_seed as usize) % frames.len()];
        let bit = (flip_seed as usize) % (frame.len() * 8);
        let mut mutated = frame.clone();
        mutated[bit / 8] ^= 1 << (bit % 8);
        if *is_request {
            let original = Request::from_wire(frame).expect("valid frame decodes");
            if let Ok(decoded) = Request::from_wire(&mutated) {
                prop_assert_ne!(decoded, original);
            }
        } else {
            let original = Response::from_wire(frame).expect("valid frame decodes");
            if let Ok(decoded) = Response::from_wire(&mutated) {
                prop_assert_ne!(decoded, original);
            }
        }
    }

    /// Trailing garbage after any complete gossip-surface frame is
    /// rejected, not silently dropped.
    #[test]
    fn gossip_frames_with_trailing_bytes_rejected(
        frame_seed in any::<u64>(),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let frames = gossip_surface_frames();
        let (is_request, frame) = &frames[(frame_seed as usize) % frames.len()];
        let mut extended = frame.clone();
        extended.extend_from_slice(&garbage);
        if *is_request {
            prop_assert!(Request::from_wire(&extended).is_err());
        } else {
            prop_assert!(Response::from_wire(&extended).is_err());
        }
    }

    /// A live framework answers arbitrary gossip envelopes (including
    /// ones full of unverifiable heads) with a decodable Gossip response,
    /// and WitnessHead requests with a decodable answer — never a panic.
    #[test]
    fn framework_answers_gossip_and_witness_head(
        domain in any::<u32>(),
        head in any::<u8>(),
        size in any::<u64>(),
    ) {
        let mut svc = service();
        let envelope = GossipEnvelope {
            heads: vec![GossipHead {
                domain,
                checkpoint: gossip_checkpoint(domain, head, size),
            }],
            evidence: Vec::new(),
        };
        let frame = svc.handle(Request::Gossip { envelope }.to_wire());
        let gossip_answered = matches!(
            Response::from_wire(&frame),
            Ok(Response::Gossip { .. })
        );
        prop_assert!(gossip_answered);
        let frame = svc.handle(Request::WitnessHead.to_wire());
        let witness_head_answered = matches!(
            Response::from_wire(&frame),
            Ok(Response::WitnessHead { cosigned: None })
        );
        prop_assert!(witness_head_answered);
    }
}
