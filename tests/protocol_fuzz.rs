//! Protocol robustness: trust domains face the open network, so the
//! request decoder and the framework dispatcher must survive arbitrary
//! bytes — answering with error frames, never crashing or hanging.

use distrust::core::abi::NoImports;
use distrust::core::framework::{EnclaveFramework, FrameworkConfig, FrameworkService};
use distrust::core::protocol::{Request, Response};
use distrust::crypto::schnorr::SigningKey;
use distrust::sandbox::Limits;
use distrust::tee::host::EnclaveService;
use distrust::wire::{Decode, Encode};
use proptest::prelude::*;

fn service() -> FrameworkService {
    let dev = SigningKey::derive(b"protocol fuzz", b"dev");
    FrameworkService::new(EnclaveFramework::new(
        FrameworkConfig {
            domain_index: 0,
            app_name: "fuzzed".into(),
            developer_key: dev.verifying_key(),
            log_id: [1; 32],
            limits: Limits::default(),
        },
        None,
        SigningKey::derive(b"protocol fuzz", b"cp"),
        Box::new(NoImports),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary request bytes always produce a decodable response frame.
    #[test]
    fn garbage_requests_get_error_responses(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut svc = service();
        let response_bytes = svc.handle(bytes);
        let response = Response::from_wire(&response_bytes).expect("response always decodes");
        // With no app installed, everything either errors or reports
        // benign state — but never panics.
        let _ = response;
    }

    /// Request decode/encode round-trips (the framework and the client
    /// must agree byte-for-byte, since responses are hashed into quotes).
    #[test]
    fn structured_requests_round_trip(
        tag in 0u8..8,
        nonce in any::<[u8; 32]>(),
        method in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        number in any::<u64>(),
    ) {
        let request = match tag {
            0 => Request::Attest { nonce },
            1 => Request::GetStatus,
            2 => Request::AppCall { method, payload: payload.clone() },
            3 => Request::GetCheckpoint,
            4 => Request::GetConsistency { old_size: number },
            5 => Request::GetLogEntries { from: number },
            _ => Request::GetNotices { since: number },
        };
        let wire = request.to_wire();
        prop_assert_eq!(Request::from_wire(&wire), Ok(request));
    }

    /// Truncating a valid request at any point yields a decode error (or a
    /// shorter valid request), never a panic; the service still answers.
    #[test]
    fn truncated_requests_are_handled(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        cut in 0usize..64,
    ) {
        let request = Request::AppCall { method: 1, payload };
        let mut wire = request.to_wire();
        wire.truncate(cut.min(wire.len()));
        let mut svc = service();
        let response_bytes = svc.handle(wire);
        prop_assert!(Response::from_wire(&response_bytes).is_ok());
    }
}

#[test]
fn every_request_variant_gets_a_sensible_answer_without_an_app() {
    type ResponseCheck = fn(&Response) -> bool;
    let mut svc = service();
    let cases: Vec<(Request, ResponseCheck)> = vec![
        (Request::GetStatus, |r| matches!(r, Response::Status(_))),
        (Request::Attest { nonce: [0; 32] }, |r| {
            matches!(r, Response::Unattested(_))
        }),
        (
            Request::AppCall {
                method: 1,
                payload: vec![],
            },
            |r| matches!(r, Response::AppError(_)),
        ),
        (Request::GetCheckpoint, |r| {
            matches!(r, Response::Checkpoint(_))
        }),
        (Request::GetConsistency { old_size: 99 }, |r| {
            matches!(r, Response::Error(_))
        }),
        (Request::GetLogEntries { from: 0 }, |r| {
            matches!(r, Response::LogEntries(_))
        }),
        (Request::GetNotices { since: 0 }, |r| {
            matches!(r, Response::Notices(_))
        }),
    ];
    for (request, check) in cases {
        let resp_bytes = svc.handle(request.to_wire());
        let response = Response::from_wire(&resp_bytes).expect("decodes");
        assert!(check(&response), "unexpected response {response:?}");
    }
}
