//! End-to-end: the paper's prototype application on a full deployment.
//!
//! Deploys BLS threshold signing across n = 5 trust domains (t = 3) with
//! heterogeneous simulated TEEs, audits the deployment as a client would,
//! signs through the framework, and verifies the aggregate under the group
//! public key.

use distrust::apps::threshold_signer::{self, ThresholdSigningClient};
use distrust::core::{Deployment, TrustPolicy};
use distrust::crypto::drbg::HmacDrbg;

#[test]
fn five_domain_threshold_signing() {
    let mut rng = HmacDrbg::new(b"e2e threshold", b"dealer");
    let (spec, public) = threshold_signer::setup(3, 5, &mut rng).expect("setup");
    let mut deployment = Deployment::launch(spec, b"e2e threshold seed").expect("launch");
    assert_eq!(deployment.domain_count(), 5);

    let mut client = deployment.client(b"client-1");
    // The audit must be clean before the client trusts the deployment —
    // the session runs it before the first sign request.
    let mut session = client.session(TrustPolicy::pinned(deployment.initial_app_digest));

    // Sign (a Threshold(3) fan-out across all 5 domains).
    let signer = ThresholdSigningClient::new(public.clone());
    let msg = b"transfer 10 tokens to alice";
    let sig = signer.sign(&mut session, msg).expect("signing");
    assert!(public.public_key.verify(msg, &sig));
    // Not valid for another message.
    assert!(!public
        .public_key
        .verify(b"transfer 1000 tokens to mallory", &sig));

    let report = session.last_audit().expect("gating audit ran");
    assert!(report.is_clean(), "audit failed: {report:?}");
    // Domain 0 is the developer's (unattested); the other four attested.
    assert!(!report.domains[0].attested);
    for d in &report.domains[1..] {
        assert!(d.attested, "domain {} not attested", d.index);
    }

    // Deterministic: BLS signatures are unique, so signing twice over any
    // t-subset yields the identical signature — even though the quorum
    // race may collect partials from a different subset each time.
    let sig2 = signer.sign(&mut session, msg).expect("signing again");
    assert_eq!(sig, sig2);

    drop(session);
    deployment.shutdown();
}

#[test]
fn signing_survives_minority_domain_failure() {
    let mut rng = HmacDrbg::new(b"e2e tolerance", b"dealer");
    let (spec, public) = threshold_signer::setup(2, 4, &mut rng).expect("setup");
    let deployment = Deployment::launch(spec, b"e2e tolerance seed").expect("launch");
    // Corrupt the descriptor so two domains are unreachable — the client
    // must still collect t = 2 valid partials from the remaining two. The
    // session's gating audit marks the dead domains untrusted; the
    // Threshold(2) fan-out succeeds from the survivors.
    {
        // Rebuild a client whose descriptor points two domains at dead
        // addresses.
        let mut descriptor = deployment.descriptor.clone();
        descriptor.domains[1].addr = "127.0.0.1:1".parse().unwrap();
        descriptor.domains[3].addr = "127.0.0.1:1".parse().unwrap();
        let mut degraded = distrust::core::DeploymentClient::new(
            descriptor,
            Box::new(HmacDrbg::new(b"degraded", b"")),
        );
        let mut session = degraded.session(TrustPolicy::audited());
        let signer = ThresholdSigningClient::new(public.clone());
        let msg = b"resilient signing";
        let sig = signer.sign(&mut session, msg).expect("t-of-n resilience");
        assert!(public.public_key.verify(msg, &sig));
        assert_eq!(session.trusted_domains(), vec![0, 2]);
    }

    // Below threshold, signing must fail: three domains dead.
    {
        let mut descriptor = deployment.descriptor.clone();
        for d in [0usize, 1, 3] {
            descriptor.domains[d].addr = "127.0.0.1:1".parse().unwrap();
        }
        let mut starved = distrust::core::DeploymentClient::new(
            descriptor,
            Box::new(HmacDrbg::new(b"starved", b"")),
        );
        let mut session = starved.session(TrustPolicy::audited());
        let signer = ThresholdSigningClient::new(public.clone());
        let err = signer.sign(&mut session, b"no quorum").unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("partial"), "unexpected error: {msg}");
    }
}

#[test]
fn partial_signatures_verify_against_feldman_commitments() {
    let mut rng = HmacDrbg::new(b"e2e partials", b"dealer");
    let (spec, public) = threshold_signer::setup(2, 3, &mut rng).expect("setup");
    let deployment = Deployment::launch(spec, b"e2e partials seed").expect("launch");
    let mut client = deployment.client(b"client-3");
    let mut session = client.session(TrustPolicy::audited());
    let signer = ThresholdSigningClient::new(public.clone());

    let msg = b"audited partial";
    for domain in 0..3 {
        let partial = signer
            .partial_from_domain(&mut session, domain, msg)
            .expect("partial");
        assert_eq!(partial.index, (domain + 1) as u8);
        assert!(distrust::crypto::threshold::verify_partial(
            &public.commitments,
            msg,
            &partial
        ));
        // And it is NOT a valid partial for a different message.
        assert!(!distrust::crypto::threshold::verify_partial(
            &public.commitments,
            b"other message",
            &partial
        ));
    }
}

#[test]
fn share_index_served_through_deployment() {
    let mut rng = HmacDrbg::new(b"e2e index", b"dealer");
    let (spec, _public) = threshold_signer::setup(1, 2, &mut rng).expect("setup");
    let deployment = Deployment::launch(spec, b"e2e index seed").expect("launch");
    let mut client = deployment.client(b"client-4");
    for domain in 0..2u32 {
        let out = client
            .call(domain, threshold_signer::METHOD_INDEX, b"")
            .expect("index call");
        assert_eq!(out, vec![(domain + 1) as u8]);
    }
}
