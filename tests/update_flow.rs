//! The Figure 2 scenario: auditable code updates.
//!
//! Deploys v1 of an application, pushes a developer-signed v2, and checks
//! every §4.1 guarantee: clients learn about the update (notices), the
//! digest history is in every domain's append-only log, audits stay clean,
//! and unauthorized updates are rejected everywhere.

use distrust::core::abi::{AppHost, HANDLE_EXPORT, OUTBOX_ADDR};
use distrust::core::{AppSpec, Deployment, NoImports, Request, Response};
use distrust::sandbox::{FuncBuilder, Limits, Module, ModuleBuilder};

/// A tiny versioned app: method 1 returns `base + input[0]`.
/// v1 uses base = 100, v2 uses base = 200 — behaviour observably changes.
fn adder_module(base: u64) -> Module {
    let mut mb = ModuleBuilder::new(1, 1);
    let mut f = FuncBuilder::new(3, 0, 1);
    // out[0] = base + inbox[0]; return 1
    f.constant(OUTBOX_ADDR)
        .lget(1)
        .load8(0)
        .constant(base)
        .add()
        .store8(0)
        .constant(1)
        .ret();
    let idx = mb.function(f.build().unwrap());
    mb.export(HANDLE_EXPORT, idx);
    mb.build()
}

fn launch(seed: &[u8], n: usize) -> Deployment {
    let spec = AppSpec {
        name: "adder".into(),
        module: adder_module(100),
        notes: "v1".into(),
        hosts: (0..n)
            .map(|_| Box::new(NoImports) as Box<dyn AppHost>)
            .collect(),
        limits: Limits::default(),
    };
    Deployment::launch(spec, seed).expect("launch")
}

#[test]
fn signed_update_flows_to_all_domains() {
    let deployment = launch(b"update flow", 4);
    let mut client = deployment.client(b"auditor");

    // v1 behaviour.
    assert_eq!(client.call(1, 1, &[5]).unwrap(), vec![105u8]);

    // First audit pins state.
    let report = client.audit(Some(&deployment.initial_app_digest));
    assert!(report.is_clean(), "{report:?}");

    // Developer pushes v2.
    let v2 = adder_module(200);
    let release = deployment.sign_release(2, "v2: new base", &v2);
    let v2_digest = release.digest();
    for result in client.push_update(&release) {
        let (log_size, digest) = result.expect("update accepted");
        assert_eq!(log_size, 2);
        assert_eq!(digest, v2_digest);
    }

    // Behaviour changed everywhere.
    for d in 0..4 {
        assert_eq!(client.call(d, 1, &[5]).unwrap(), vec![205u8]);
    }

    // Clients learn about the update: notices reference log index 1.
    for d in 0..4 {
        let notices = client.notices(d, 0).unwrap();
        assert_eq!(notices.len(), 2, "v1 install + v2 update");
        assert_eq!(notices[1].manifest.version, 2);
        assert_eq!(notices[1].log_index, 1);
        assert_eq!(notices[1].manifest.code_digest, v2_digest);
    }

    // The log now has both digests, and the post-update audit is clean —
    // including consistency proofs from the pre-update checkpoint.
    let report = client.audit(Some(&v2_digest));
    assert!(report.is_clean(), "{report:?}");
    for d in 0..4 {
        let leaves = client.log_entries(d, 0).unwrap();
        assert_eq!(leaves.len(), 2);
    }
}

#[test]
fn unsigned_update_rejected_everywhere() {
    let deployment = launch(b"unauthorized update", 3);
    let mut client = deployment.client(b"mallory");

    // Mallory signs with her own key.
    let mallory = distrust::crypto::schnorr::SigningKey::derive(b"mallory", b"key");
    let evil = distrust::core::SignedRelease::create(
        "adder",
        2,
        "totally legit",
        &adder_module(66),
        &mallory,
    );
    for result in client.push_update(&evil) {
        match result {
            Err(distrust::core::ClientError::UpdateRejected(msg)) => {
                assert!(msg.contains("signature"), "unexpected: {msg}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }
    // Behaviour unchanged; logs unchanged.
    assert_eq!(client.call(0, 1, &[1]).unwrap(), vec![101u8]);
    for d in 0..3 {
        assert_eq!(client.log_entries(d, 0).unwrap().len(), 1);
    }
}

#[test]
fn replayed_and_downgraded_updates_rejected() {
    let deployment = launch(b"replay update", 2);
    let mut client = deployment.client(b"auditor");

    let v2 = deployment.sign_release(2, "v2", &adder_module(200));
    for r in client.push_update(&v2) {
        r.expect("v2 accepted");
    }
    // Replay of v2 rejected (stale version).
    for r in client.push_update(&v2) {
        assert!(matches!(
            r,
            Err(distrust::core::ClientError::UpdateRejected(_))
        ));
    }
    // Downgrade to "v1 again" (signed!) also rejected — the version in the
    // manifest is what orders releases, preventing rollback attacks even
    // with a valid developer signature.
    let downgrade = deployment.sign_release(1, "rollback", &adder_module(100));
    for r in client.push_update(&downgrade) {
        assert!(matches!(
            r,
            Err(distrust::core::ClientError::UpdateRejected(_))
        ));
    }
}

#[test]
fn update_notice_precedes_new_code_serving() {
    // The §4.1 ordering guarantee, observed through the protocol: after an
    // UpdateAck, the notice must already be queryable — there is no window
    // where new code runs unannounced.
    let deployment = launch(b"notice ordering", 2);
    let mut client = deployment.client(b"auditor");
    let release = deployment.sign_release(2, "v2", &adder_module(200));

    // Push to domain 0 only, then immediately check its notices before
    // touching the app.
    match client
        .exchange(0, &Request::Update { release })
        .expect("exchange")
    {
        Response::UpdateAck { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
    let notices = client.notices(0, 0).unwrap();
    assert_eq!(notices.last().unwrap().manifest.version, 2);
    // Only now exercise the new code.
    assert_eq!(client.call(0, 1, &[1]).unwrap(), vec![201u8]);
}

#[test]
fn malicious_but_signed_update_is_contained_and_evidenced() {
    // A signed hostile module activates (the framework cannot judge
    // semantics) but cannot escape the sandbox, and its digest is burned
    // into every log — the evidence trail the paper promises.
    let deployment = launch(b"hostile update", 3);
    let mut client = deployment.client(b"auditor");
    let hostile = distrust::sandbox::guests::hostile_module();
    let release = deployment.sign_release(2, "innocuous-looking", &hostile);
    let hostile_digest = release.digest();
    for r in client.push_update(&release) {
        r.expect("signed update accepted");
    }
    // The hostile module doesn't export `handle`: every call errors, the
    // framework survives, and audits still work.
    for d in 0..3 {
        assert!(client.call(d, 1, &[1]).is_err());
    }
    let report = client.audit(Some(&hostile_digest));
    assert!(report.is_clean(), "{report:?}");
    // Third-party auditors can download the leaf history and find the
    // hostile digest at index 1 on every domain.
    for d in 0..3 {
        let leaves = client.log_entries(d, 0).unwrap();
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0], client.log_entries((d + 1) % 3, 0).unwrap()[0]);
    }
}
