//! Heterogeneous secure hardware (§3.2): domains run on distinct simulated
//! TEE ecosystems with genuinely different attestation evidence, and the
//! client verifies each along its own vendor path.

use distrust::apps::analytics;
use distrust::core::protocol::{Request, Response};
use distrust::core::Deployment;
use distrust::tee::attest::PlatformEvidence;
use distrust::tee::vendor::VendorKind;
use distrust::wire::Decode;

#[test]
fn domains_attest_with_vendor_specific_evidence() {
    // 4 domains: 0 unattested, 1..3 on SGX-sim, Nitro-sim, Keystone-sim.
    let deployment = Deployment::launch(analytics::app_spec(4), b"hetero seed").expect("launch");
    let mut client = deployment.client(b"auditor");

    let mut seen = Vec::new();
    for d in 1..4u32 {
        let resp = client
            .exchange(
                d,
                &Request::Attest {
                    nonce: [d as u8; 32],
                },
            )
            .expect("attest");
        let quote = match resp {
            Response::Quote(q) => q,
            other => panic!("domain {d}: expected quote, got {other:?}"),
        };
        // Evidence shape matches the pinned vendor for this domain.
        let pinned = deployment.descriptor.domains[d as usize].vendor.unwrap();
        assert_eq!(quote.document.vendor, pinned);
        match (&quote.document.evidence, pinned) {
            (PlatformEvidence::Sgx { mr_enclave, .. }, VendorKind::SgxSim) => {
                assert_eq!(*mr_enclave, quote.document.measurement);
            }
            (PlatformEvidence::Nitro { pcrs, .. }, VendorKind::NitroSim) => {
                assert_eq!(pcrs[0], quote.document.measurement);
                assert_eq!(pcrs.len(), 3);
            }
            (PlatformEvidence::Keystone { runtime_hash, .. }, VendorKind::KeystoneSim) => {
                assert_eq!(*runtime_hash, quote.document.measurement);
            }
            (evidence, vendor) => {
                panic!("domain {d}: evidence {evidence:?} does not match vendor {vendor:?}")
            }
        }
        // Full verification along the vendor-specific path.
        quote
            .verify(
                &deployment.descriptor.vendor_roots,
                Some(&deployment.descriptor.expected_measurement()),
                None,
            )
            .expect("quote verifies");
        seen.push(pinned);
    }
    // All three ecosystems are in play.
    let unique: std::collections::HashSet<_> = seen.into_iter().collect();
    assert_eq!(unique.len(), 3);
}

#[test]
fn nonce_prevents_quote_replay() {
    let deployment = Deployment::launch(analytics::app_spec(2), b"replay seed").expect("launch");
    let mut client = deployment.client(b"auditor");

    // Capture a quote for nonce A.
    let resp = client
        .exchange(1, &Request::Attest { nonce: [0xaa; 32] })
        .expect("attest");
    let quote_a = match resp {
        Response::Quote(q) => q,
        other => panic!("{other:?}"),
    };
    // The quote itself verifies (it is genuine)…
    quote_a
        .verify(&deployment.descriptor.vendor_roots, None, None)
        .expect("genuine quote");
    // …but it binds nonce A inside user_data: a client challenging with
    // nonce B must reject it. (The DeploymentClient does this check; here
    // we assert the binding is present for external verifiers too.)
    let binding =
        distrust::core::protocol::AttestationBinding::from_wire(&quote_a.document.user_data)
            .expect("binding decodes");
    assert_eq!(binding.nonce, [0xaa; 32]);
    assert_ne!(binding.nonce, [0xbb; 32]);
}

#[test]
fn audit_rejects_vendor_substitution() {
    // If a domain suddenly attests under a different vendor than pinned
    // (e.g. the host migrated the service to other hardware without
    // redeployment), the audit flags it.
    let deployment =
        Deployment::launch(analytics::app_spec(4), b"substitution seed").expect("launch");
    let mut tampered = deployment.descriptor.clone();
    // Pin domain 1 to the wrong vendor.
    let wrong = match tampered.domains[1].vendor.unwrap() {
        VendorKind::SgxSim => VendorKind::NitroSim,
        _ => VendorKind::SgxSim,
    };
    tampered.domains[1].vendor = Some(wrong);
    let mut client = distrust::core::DeploymentClient::new(
        tampered,
        Box::new(distrust::crypto::drbg::HmacDrbg::new(b"auditor", b"")),
    );
    let report = client.audit(None);
    assert!(!report.is_clean());
    let failure = report.domains[1].failure.as_ref().expect("flagged");
    assert!(failure.contains("vendor"), "{failure}");
}

#[test]
fn unattested_domain_zero_is_audited_as_such() {
    let deployment = Deployment::launch(analytics::app_spec(3), b"domain0 seed").expect("launch");
    let mut client = deployment.client(b"auditor");
    let report = client.audit(Some(&deployment.initial_app_digest));
    assert!(report.is_clean());
    assert!(!report.domains[0].attested, "domain 0 has no TEE");
    assert!(report.domains[0].status.is_some(), "but it reports status");
    // And if domain 0 suddenly claims to have a TEE-backed quote, the
    // client treats that as suspicious (covered in client.rs logic) —
    // asserted here via the descriptor invariant.
    assert!(deployment.descriptor.domains[0].vendor.is_none());
}
