//! Smoke test: all examples must build, and the quickstart — the first
//! thing README points a new user at — must run to completion and exit 0.
//!
//! Invokes the same cargo binary that is running this test, against this
//! workspace. Everything is already compiled by the time the test suite
//! runs, so the inner invocations are cheap cache hits plus one example
//! execution.

use std::process::Command;

fn cargo(args: &[&str]) -> std::process::ExitStatus {
    Command::new(env!("CARGO"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .status()
        .unwrap_or_else(|e| panic!("failed to spawn cargo {args:?}: {e}"))
}

#[test]
fn examples_build_and_quickstart_runs() {
    assert!(
        cargo(&["build", "--examples", "--quiet"]).success(),
        "cargo build --examples failed"
    );
    assert!(
        cargo(&["run", "--example", "quickstart", "--quiet"]).success(),
        "cargo run --example quickstart exited nonzero"
    );
}
